# Sanitizer build matrix.
#
#   cmake -B build-asan -DPILOTE_SANITIZE=address,undefined
#   cmake -B build-tsan -DPILOTE_SANITIZE=thread
#
# Flags are applied at directory scope from the top-level list file, so every
# target in src/, tests/, bench/, and examples/ is instrumented. Tests built
# under a sanitizer are additionally labeled (asan/ubsan/tsan) so CI can
# select them with `ctest -L <label>`.
#
# Exports:
#   PILOTE_SANITIZER_LABELS - list of ctest labels for the active sanitizers
#   PILOTE_SANITIZER_ENV    - default runtime options for instrumented tests

set(PILOTE_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers to instrument with: address, undefined, thread")

set(PILOTE_SANITIZER_LABELS "")
set(PILOTE_SANITIZER_ENV "")

if(PILOTE_SANITIZE)
  string(REPLACE "," ";" _pilote_sanitizers "${PILOTE_SANITIZE}")
  set(_pilote_sanitizer_flags "")
  foreach(_san IN LISTS _pilote_sanitizers)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _pilote_sanitizer_flags -fsanitize=address)
      list(APPEND PILOTE_SANITIZER_LABELS asan)
    elseif(_san STREQUAL "undefined")
      # Recoverable UB would only print a warning; make every report fatal so
      # ctest fails on the first genuine finding.
      list(APPEND _pilote_sanitizer_flags
           -fsanitize=undefined -fno-sanitize-recover=all)
      list(APPEND PILOTE_SANITIZER_LABELS ubsan)
    elseif(_san STREQUAL "thread")
      list(APPEND _pilote_sanitizer_flags -fsanitize=thread)
      list(APPEND PILOTE_SANITIZER_LABELS tsan)
    else()
      message(FATAL_ERROR
          "PILOTE_SANITIZE: unknown sanitizer '${_san}' "
          "(expected address, undefined, or thread)")
    endif()
  endforeach()

  if("tsan" IN_LIST PILOTE_SANITIZER_LABELS AND
     "asan" IN_LIST PILOTE_SANITIZER_LABELS)
    message(FATAL_ERROR
        "PILOTE_SANITIZE: thread and address sanitizers cannot be combined")
  endif()

  # Frame pointers and debug info keep sanitizer reports symbolized even in
  # the default Release configuration.
  list(APPEND _pilote_sanitizer_flags -fno-omit-frame-pointer -g)

  add_compile_options(${_pilote_sanitizer_flags})
  add_link_options(${_pilote_sanitizer_flags})

  if("asan" IN_LIST PILOTE_SANITIZER_LABELS)
    list(APPEND PILOTE_SANITIZER_ENV
         "ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1:check_initialization_order=1")
  endif()
  if("ubsan" IN_LIST PILOTE_SANITIZER_LABELS)
    list(APPEND PILOTE_SANITIZER_ENV "UBSAN_OPTIONS=print_stacktrace=1")
  endif()
  if("tsan" IN_LIST PILOTE_SANITIZER_LABELS)
    list(APPEND PILOTE_SANITIZER_ENV "TSAN_OPTIONS=halt_on_error=1")
  endif()

  message(STATUS "PILOTE sanitizers: ${PILOTE_SANITIZER_LABELS}")
endif()
