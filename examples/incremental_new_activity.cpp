// The paper's headline scenario in one program: compare the three edge
// strategies (pre-trained / re-trained / PILOTE) when a new activity
// ('Run') must be learned on the device from limited samples, and show
// what each one forgets (per-class accuracy + confusion matrix).
//
// Build & run:  ./build/examples/incremental_new_activity
#include <cstdio>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "eval/metrics.h"
#include "har/har_dataset.h"

namespace {

using pilote::core::CloudPretrainer;
using pilote::core::EdgeLearner;
using pilote::core::MakeEdgeLearner;
using pilote::core::PiloteConfig;
using pilote::har::Activity;
using pilote::har::ActivityLabel;
using pilote::har::ActivityName;

void Report(const char* name, EdgeLearner& learner,
            const pilote::data::Dataset& test) {
  std::vector<int> predictions = learner.Predict(test.features());
  std::vector<int> classes;
  std::vector<std::string> names;
  for (Activity activity : pilote::har::AllActivities()) {
    classes.push_back(ActivityLabel(activity));
    names.emplace_back(ActivityName(activity));
  }
  pilote::eval::ConfusionMatrix cm(classes);
  cm.AddAll(test.labels(), predictions);
  std::printf("=== %s: accuracy %.4f ===\n%s\n", name, cm.OverallAccuracy(),
              cm.ToString(names).c_str());
}

}  // namespace

int main() {
  PiloteConfig config = PiloteConfig::Small();
  config.exemplars_per_class = 100;

  pilote::har::HarDataGenerator generator(2023);
  pilote::data::Dataset d_old = generator.GenerateBalanced(
      400, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
            Activity::kWalk});
  pilote::data::Dataset d_new = generator.Generate(Activity::kRun, 80);
  pilote::data::Dataset test = generator.GenerateBalanced(80);

  std::printf("cloud pre-training on 4 activities (%lld rows)...\n",
              static_cast<long long>(d_old.size()));
  CloudPretrainer pretrainer(config);
  pilote::Result<pilote::core::CloudPretrainResult> pretrain =
      pretrainer.Run(d_old);
  PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
  pilote::core::CloudPretrainResult cloud = std::move(pretrain).value();

  for (const char* strategy : {"pretrained", "retrained", "pilote"}) {
    pilote::Result<std::unique_ptr<EdgeLearner>> made =
        MakeEdgeLearner(strategy, cloud.artifact, config);
    PILOTE_CHECK(made.ok()) << made.status().ToString();
    std::unique_ptr<EdgeLearner> learner = std::move(made).value();
    pilote::Result<pilote::core::TrainReport> learned =
        learner->LearnNewClasses(d_new);
    PILOTE_CHECK(learned.ok()) << learned.status().ToString();
    Report(strategy, *learner, test);
  }

  std::printf(
      "Things to look for: the pre-trained model misses most 'Run'\n"
      "windows (it never saw them); the re-trained model gains 'Run' but\n"
      "bleeds 'Walk' into it; PILOTE gains 'Run' while the distillation\n"
      "constraint protects the old classes.\n");
  return 0;
}
