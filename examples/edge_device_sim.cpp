// Simulates deploying PILOTE onto a storage-constrained edge device:
// the cloud artifact is transferred as bytes, the exemplar cache must fit
// a device budget (Algo 1's cache size K, with optional int8 compression),
// and the device reports its storage/latency profile before and after an
// incremental update (the paper's Q2).
//
// Build & run:  ./build/examples/edge_device_sim
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/edge_profile.h"
#include "har/har_dataset.h"
#include "serialize/quantize.h"

using pilote::core::CloudPretrainer;
using pilote::core::PiloteConfig;
using pilote::core::PiloteLearner;
using pilote::har::Activity;
using pilote::serialize::QuantMode;

int main() {
  PiloteConfig config = PiloteConfig::Small();
  config.exemplars_per_class = 150;

  pilote::har::HarDataGenerator generator(99);
  pilote::data::Dataset d_old = generator.GenerateBalanced(
      300, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
            Activity::kWalk});
  pilote::data::Dataset test = generator.GenerateBalanced(60);

  CloudPretrainer pretrainer(config);
  pilote::Result<pilote::core::CloudPretrainResult> pretrain =
      pretrainer.Run(d_old);
  PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
  pilote::core::CloudPretrainResult cloud = std::move(pretrain).value();
  std::printf("cloud -> edge transfer: %lld bytes (model %zu B + support)\n\n",
              static_cast<long long>(cloud.artifact.TransferBytes()),
              cloud.artifact.model_payload.size());

  // ---- The device enforces a cache budget: K = 240 exemplars total ----
  PiloteLearner learner(cloud.artifact, config);
  std::printf("support set as shipped: %lld exemplars, %lld B fp32\n",
              static_cast<long long>(learner.support().TotalExemplars()),
              static_cast<long long>(
                  learner.support().StorageBytes(QuantMode::kFloat32)));
  learner.EnforceSupportBudget(240);  // m = 240 / 4 = 60
  std::printf("after EnforceCacheSize(240): %lld exemplars (%lld/class)\n",
              static_cast<long long>(learner.support().TotalExemplars()),
              static_cast<long long>(learner.support().CountForClass(0)));

  // ---- Store the cache compressed (int8), as the paper's device does ----
  const int64_t fp32 = learner.support().StorageBytes(QuantMode::kFloat32);
  const int64_t int8 = learner.support().StorageBytes(QuantMode::kInt8);
  std::printf("cache storage: %lld B fp32 -> %lld B int8 (%.1fx smaller)\n",
              static_cast<long long>(fp32), static_cast<long long>(int8),
              static_cast<double>(fp32) / static_cast<double>(int8));
  pilote::Status applied = learner.ApplySupportSetUpdate(
      learner.support().QuantizeRoundTrip(QuantMode::kInt8));
  PILOTE_CHECK(applied.ok()) << applied.ToString();
  std::printf("accuracy with compressed cache (4 classes): %.4f\n\n",
              learner.Evaluate(test.FilterByClasses({0, 1, 3, 4})));

  // ---- A new activity arrives; profile the device afterwards ----
  pilote::data::Dataset d_new = generator.Generate(Activity::kRun, 50);
  pilote::Result<pilote::core::TrainReport> learned =
      learner.LearnNewClasses(d_new);
  PILOTE_CHECK(learned.ok()) << learned.status().ToString();
  pilote::core::TrainReport report = std::move(learned).value();
  std::printf("incremental update: %d epochs, %.3f s/epoch\n\n",
              report.epochs_completed, report.mean_epoch_seconds);

  pilote::core::EdgeProfileReport profile =
      pilote::core::ProfileEdge(learner, test.features(), &report);
  std::printf("device profile after update:\n%s\n\n",
              profile.ToString().c_str());
  std::printf("5-class accuracy: %.4f\n", learner.Evaluate(test));
  return 0;
}
