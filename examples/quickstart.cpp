// Quickstart: the smallest end-to-end PILOTE pipeline.
//
//   1. Generate simulated HAR feature data (the stand-in for the paper's
//      collected corpus).
//   2. Pre-train the siamese embedding model on four activities ("cloud").
//   3. Hand the artifact to a PiloteLearner and integrate the fifth
//      activity from a handful of samples ("edge").
//   4. Classify fresh windows with the NCM classifier.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "har/har_dataset.h"

using pilote::core::CloudPretrainer;
using pilote::core::PiloteConfig;
using pilote::core::PiloteLearner;
using pilote::har::Activity;
using pilote::har::ActivityName;
using pilote::har::HarDataGenerator;

int main() {
  // Small configuration so the example runs in seconds on one core; use
  // PiloteConfig::Paper() for the paper's [1024,512,128,64]->128 backbone.
  PiloteConfig config = PiloteConfig::Small();
  config.exemplars_per_class = 60;

  // ---- Cloud: pre-train on Drive / E-scooter / Still / Walk ----
  HarDataGenerator generator(/*seed=*/7);
  pilote::data::Dataset d_old = generator.GenerateBalanced(
      200, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
            Activity::kWalk});
  CloudPretrainer pretrainer(config);
  pilote::Result<pilote::core::CloudPretrainResult> pretrain =
      pretrainer.Run(d_old);
  PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
  pilote::core::CloudPretrainResult cloud = std::move(pretrain).value();
  std::printf("pre-trained in %d epochs (val loss %.4f), transfer %lld B\n",
              cloud.report.epochs_completed, cloud.report.final_val_loss,
              static_cast<long long>(cloud.artifact.TransferBytes()));

  // ---- Edge: a new activity ('Run') arrives with 60 samples ----
  PiloteLearner learner(cloud.artifact, config);
  pilote::data::Dataset d_new = generator.Generate(Activity::kRun, 60);
  pilote::Result<pilote::core::TrainReport> learned =
      learner.LearnNewClasses(d_new);
  PILOTE_CHECK(learned.ok()) << learned.status().ToString();
  pilote::core::TrainReport report = std::move(learned).value();
  std::printf("incremental update: %d epochs, %.3f s/epoch\n",
              report.epochs_completed, report.mean_epoch_seconds);

  // ---- Inference on fresh windows of every activity ----
  pilote::data::Dataset probe = generator.GenerateBalanced(4);
  std::vector<int> predictions = learner.Predict(probe.features());
  int correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == probe.label(static_cast<int64_t>(i))) ++correct;
  }
  std::printf("\nfresh windows (true -> predicted):\n");
  for (size_t i = 0; i < predictions.size(); ++i) {
    std::printf("  %-10s -> %s\n",
                std::string(ActivityName(pilote::har::ActivityFromLabel(
                                probe.label(static_cast<int64_t>(i)))))
                    .c_str(),
                std::string(ActivityName(pilote::har::ActivityFromLabel(
                                predictions[i])))
                    .c_str());
  }
  std::printf("\naccuracy on %zu probes: %.2f\n", predictions.size(),
              static_cast<double>(correct) / predictions.size());
  return 0;
}
