// Inspects the HAR feature pipeline: prints the 80 statistical features
// the paper extracts from each 1-second window (Sec 6.1.1) and shows
// which of them separate the five activities, using per-class means of
// the most discriminative features. Useful when adapting the pipeline to
// a different sensor suite.
//
// Build & run:  ./build/examples/feature_inspection
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "har/feature_extractor.h"
#include "har/har_dataset.h"
#include "tensor/tensor_ops.h"

using pilote::Tensor;
using pilote::har::Activity;
using pilote::har::ActivityName;
using pilote::har::AllActivities;
using pilote::har::FeatureNames;
using pilote::har::kNumFeatures;

int main() {
  std::printf("feature vector: %d features per 1 s window "
              "(%d channels x {mean, var} + %d tri-axis channels x "
              "{jerk mean, jerk var})\n\n",
              kNumFeatures, pilote::har::kNumChannels,
              pilote::har::kNumTriAxisChannels);

  // Per-activity feature means and stddevs over a sample of windows.
  pilote::har::HarDataGenerator generator(4);
  const int per_class = 60;
  std::vector<Tensor> means;
  std::vector<Tensor> vars;
  for (Activity activity : AllActivities()) {
    pilote::data::Dataset ds = generator.Generate(activity, per_class);
    Tensor mean = pilote::ColumnMean(ds.features());
    vars.push_back(pilote::ColumnVariance(ds.features(), mean));
    means.push_back(std::move(mean));
  }

  // Rank features by a crude Fisher score: variance of class means over
  // mean within-class variance.
  std::vector<std::pair<double, int>> scored;
  for (int f = 0; f < kNumFeatures; ++f) {
    double mean_of_means = 0.0;
    for (const Tensor& m : means) mean_of_means += m[f];
    mean_of_means /= means.size();
    double between = 0.0;
    double within = 0.0;
    for (size_t c = 0; c < means.size(); ++c) {
      between += (means[c][f] - mean_of_means) * (means[c][f] - mean_of_means);
      within += vars[c][f];
    }
    between /= means.size();
    within /= vars.size();
    scored.emplace_back(within > 1e-12 ? between / within : 0.0, f);
  }
  std::sort(scored.rbegin(), scored.rend());

  std::printf("top 10 most class-discriminative features (Fisher score):\n");
  std::printf("%-22s %-10s", "feature", "score");
  for (Activity activity : AllActivities()) {
    std::printf(" %-10.9s", std::string(ActivityName(activity)).c_str());
  }
  std::printf("\n");
  for (int rank = 0; rank < 10; ++rank) {
    const int f = scored[static_cast<size_t>(rank)].second;
    std::printf("%-22s %-10.2f",
                FeatureNames()[static_cast<size_t>(f)].c_str(),
                scored[static_cast<size_t>(rank)].first);
    for (size_t c = 0; c < means.size(); ++c) {
      std::printf(" %-10.3f", means[c][f]);
    }
    std::printf("\n");
  }

  std::printf("\nbottom 5 (near-noise) features:\n");
  for (size_t rank = scored.size() - 5; rank < scored.size(); ++rank) {
    std::printf("  %-22s score %.4f\n",
                FeatureNames()[static_cast<size_t>(scored[rank].second)].c_str(),
                scored[rank].first);
  }
  std::printf(
      "\nNote how no single feature separates Run from Walk cleanly —\n"
      "that is the gap the learned embedding closes.\n");
  return 0;
}
