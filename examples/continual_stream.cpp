// Class-incremental learning over a stream: the device starts with three
// activities, then meets two new ones, one after the other. Each new
// activity arrives as a CONTINUOUS sensor recording that goes through the
// on-device preprocessing pipeline (denoise -> 1 s segmentation ->
// 80-feature extraction) before PILOTE integrates it. After every step
// the program reports accuracy over all classes known so far.
//
// Build & run:  ./build/examples/continual_stream
#include <cstdio>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "eval/metrics.h"
#include "har/har_dataset.h"
#include "har/preprocessing.h"

using pilote::core::CloudPretrainer;
using pilote::core::PiloteConfig;
using pilote::core::PiloteLearner;
using pilote::har::Activity;
using pilote::har::ActivityLabel;
using pilote::har::ActivityName;

namespace {

// Records `seconds` of the activity and runs the on-device preprocessing.
pilote::data::Dataset CaptureActivity(pilote::har::SensorSimulator& simulator,
                                      Activity activity, int seconds) {
  pilote::har::Recording recording =
      pilote::har::RecordContinuous(simulator, activity, seconds);
  pilote::har::PreprocessOptions options;
  pilote::Result<pilote::Tensor> features =
      pilote::har::PreprocessRecording(recording.samples, options);
  PILOTE_CHECK(features.ok()) << features.status();
  std::vector<int> labels(static_cast<size_t>(features->rows()),
                          ActivityLabel(activity));
  return pilote::data::Dataset(std::move(features).value(),
                               std::move(labels));
}

void ReportKnownClasses(PiloteLearner& learner,
                        const pilote::data::Dataset& test) {
  pilote::data::Dataset known = test.FilterByClasses(learner.known_classes());
  std::vector<int> predictions = learner.Predict(known.features());
  auto per_class = pilote::eval::PerClassAccuracy(predictions, known.labels());
  std::printf("  overall %.4f |",
              pilote::eval::Accuracy(predictions, known.labels()));
  for (const auto& [label, accuracy] : per_class) {
    std::printf(" %s %.2f",
                std::string(ActivityName(pilote::har::ActivityFromLabel(label)))
                    .c_str(),
                accuracy);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PiloteConfig config = PiloteConfig::Small();
  config.exemplars_per_class = 80;

  // The same preprocessing (denoise -> segment -> features) runs on the
  // cloud and on the edge — the paper's Sec 5 requirement — so the cloud
  // corpus and the test stream go through CaptureActivity too.
  pilote::har::SensorSimulator cloud_sensors(31337);
  pilote::har::SensorSimulator stream(4242);  // the device's live sensors

  // ---- Cloud phase: Drive / Still / Walk ----
  std::vector<pilote::data::Dataset> old_parts;
  for (Activity activity :
       {Activity::kDrive, Activity::kStill, Activity::kWalk}) {
    old_parts.push_back(CaptureActivity(cloud_sensors, activity, 300));
  }
  pilote::data::Dataset d_old = pilote::data::Dataset::Concat(old_parts);
  CloudPretrainer pretrainer(config);
  pilote::Result<pilote::core::CloudPretrainResult> pretrain =
      pretrainer.Run(d_old);
  PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
  pilote::core::CloudPretrainResult cloud = std::move(pretrain).value();
  PiloteLearner learner(cloud.artifact, config);

  std::vector<pilote::data::Dataset> test_parts;
  for (Activity activity : pilote::har::AllActivities()) {
    test_parts.push_back(CaptureActivity(cloud_sensors, activity, 60));
  }
  pilote::data::Dataset test = pilote::data::Dataset::Concat(test_parts);
  std::printf("step 0: shipped with 3 activities\n");
  ReportKnownClasses(learner, test);

  // ---- The user buys an e-scooter (90 s of riding recorded) ----
  std::printf("\nstep 1: 90 s of 'E-scooter' recorded on the device\n");
  pilote::data::Dataset scooter =
      CaptureActivity(stream, Activity::kEscooter, 90);
  pilote::Result<pilote::core::TrainReport> learned1 =
      learner.LearnNewClasses(scooter);
  PILOTE_CHECK(learned1.ok()) << learned1.status().ToString();
  pilote::core::TrainReport r1 = std::move(learned1).value();
  std::printf("  learned in %d epochs (%.3f s/epoch)\n",
              r1.epochs_completed, r1.mean_epoch_seconds);
  ReportKnownClasses(learner, test);

  // ---- The user takes up jogging (60 s recorded) ----
  std::printf("\nstep 2: 60 s of 'Run' recorded on the device\n");
  pilote::data::Dataset run = CaptureActivity(stream, Activity::kRun, 60);
  pilote::Result<pilote::core::TrainReport> learned2 =
      learner.LearnNewClasses(run);
  PILOTE_CHECK(learned2.ok()) << learned2.status().ToString();
  pilote::core::TrainReport r2 = std::move(learned2).value();
  std::printf("  learned in %d epochs (%.3f s/epoch)\n",
              r2.epochs_completed, r2.mean_epoch_seconds);
  ReportKnownClasses(learner, test);

  std::printf(
      "\nThe support set now holds %lld exemplars across %lld classes;\n"
      "each step distilled from the previous model, so the early classes\n"
      "survive two rounds of incremental learning.\n",
      static_cast<long long>(learner.support().TotalExemplars()),
      static_cast<long long>(learner.support().NumClasses()));
  return 0;
}
