#!/usr/bin/env python3
"""Repo-invariant linter and analyzer for pilote.

Four stages, selected with --stage (default: all).

`--stage style` enforces project conventions that the compiler cannot:

  * include guards named PILOTE_<PATH>_H_ (path relative to src/, or the
    literal directory for tests/, bench/, examples/)
  * no `using namespace` at namespace/global scope in headers
  * no raw assert()/abort() in src/ -- invariants use PILOTE_CHECK so
    failures are reported with file/line and a streamed message
  * no <iostream> in headers (it drags in static init and bloats every TU;
    logging.h is the sanctioned output path)
  * headers are self-contained (each compiles as its own translation unit)
  * metric names at registration sites (PILOTE_METRIC_* macros and the
    registry Get{Counter,Gauge,Histogram}[Family] calls) follow the
    telemetry naming convention: a lowercase `subsystem/name` path, time
    unit suffixes (_ms/_us/_ns/_seconds) only on histograms, and the
    Prometheus-style `_total` suffix only on counters

`--stage concurrency` enforces the repo side of the Clang thread-safety
contract (src/common/thread_annotations.h) -- invariants that even
-Wthread-safety cannot see:

  * raw std::mutex / std::shared_mutex / std::condition_variable outside
    thread_annotations.h are rejected (everything goes through the
    annotated Mutex/SharedMutex/CondVar capability wrappers)
  * in a class owning a Mutex/SharedMutex, every data member must carry
    PILOTE_GUARDED_BY / PILOTE_PT_GUARDED_BY or be const, std::atomic,
    std::thread, a lock/condvar, or carry a `// unguarded: <reason>` marker
  * a Result<T>-returning call used as a bare expression statement is a
    discarded error (complements [[nodiscard]], which (void)-casts and
    non-Werror builds can silence)
  * std::atomic operations must state an explicit std::memory_order (the
    relaxed-counter policy is a reviewable decision at every site, never an
    accidental seq_cst default)

`--stage hotpath` enforces the hot-path discipline contract
(src/common/hot_path.h): it builds a lightweight intra-repo call graph
(function definitions by brace scan, call sites by identifier matching —
the same deliberately name-based precision as the concurrency stage),
takes the transitive closure of every function marked PILOTE_HOT_PATH,
and rejects, anywhere in that closure:

  * heap allocation: `new`, std::make_unique/make_shared, growing
    container calls (push_back/emplace/resize/reserve/insert/assign),
    construction of local Tensor/std::vector/std::string/... values
  * string building: std::to_string, stringstreams
  * writer-lock acquisition: MutexLock / WriterLock (ReaderLock is the
    sanctioned steady-state lock)
  * exceptions: `throw`
  * blocking I/O: fstreams, PILOTE_LOG, printf-family, std::cout/cerr,
    std::this_thread::sleep_for/until

PILOTE_CHECK / PILOTE_DCHECK statements are exempt (their streamed
message only materializes on the abort path). `// hotpath-ok: <reason>`
on a line (or the comment line directly above) exempts one statement; on
a function's definition head it exempts the whole body and prunes the
function from the closure (for name-collision pulls that are not on the
steady-state path, and for leaf kernels whose output allocation is the
documented per-call budget). Accessor-ish names (size, rows, data, ...)
do not propagate the closure — by repo convention those are trivial
inline accessors, and following every `size(` would pull in the world.

`--stage lifetime` flags the dangling-reference bug class — views and
captures that outlive the buffer or object they point into. Four checks,
same name-based precision as the other stages:

  * ref-capture: a lambda with a by-reference capture (`[&]`, `[&x]`,
    `[this]`) passed to a deferred-execution sink (std::thread/jthread/
    async construction, pool Submit, queue Push/TryPush, emplace_back of
    workers, callback/failpoint registration) — the lambda runs after the
    enclosing frame may be gone. Bare `this` handed to a std::thread
    constructor counts too (member-fn thread entry points).
  * return-local: a function whose return type is a reference, pointer,
    string_view, or Span returning (a view into) a function-local owner
    (std::string/vector/Tensor/... local or by-value parameter), or the
    `.c_str()`/`.data()` of a temporary (`return std::string{...}.c_str()`).
  * stored-view: assigning `&container[i]`, `.data()`, `.c_str()`,
    `.begin()`/`.end()` of a known growable container (vector, string,
    deque, Tensor — contiguous storage that reallocates) into a member or
    outliving struct field; the next growth invalidates the stored view.
  * iter-invalidation: mutating a container (push_back/erase/resize/
    ResizeRows/...) inside a range-for over that same container.

`// lifetime-ok: <reason>` on the flagged statement's first line (or the
comment line directly above) records an audited suppression. The runtime
complement is src/common/span.h: Span/ConstSpan views that bounds- and
generation-check accesses in debug builds (Tensor bumps its generation
on reallocation) and compile down to pointer+size in release.

Run directly, via the `lint` CMake target, or as the `repo_lint` /
`repo_analyzer` / `repo_hotpath` / `repo_lifetime` ctest tests:

  python3 tools/pilote_lint.py --root . [--stage STAGE] [--compiler g++]
                               [--no-self-contained] [--json-out PATH]

Exit status is 0 when clean, 1 when any invariant is violated.
`--json-out` additionally writes the findings as a JSON artifact
(file/line/message records) for CI upload.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

HEADER_DIRS = ("src", "tests", "bench", "examples")
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to call abort()/assert directly (the CHECK machinery itself).
ABORT_ALLOWLIST = {
    "src/common/macros.h",
    "src/common/numerics_guard.cc",
}

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
ABORT_RE = re.compile(r"(?<![\w.:])(?:std::)?abort\s*\(\s*\)")
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*<iostream>')
INCLUDE_GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)\s*$")


def find_files(root, dirs, extensions):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


def expected_guard(rel_path):
    """src/common/macros.h -> PILOTE_COMMON_MACROS_H_ ; tests/test_util.h ->
    PILOTE_TESTS_TEST_UTIL_H_ (the src/ prefix is dropped, others kept)."""
    parts = rel_path.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "PILOTE_" + stem.upper() + "_H_"


def strip_comments_and_strings(line, state):
    """Removes // and /* */ comments and string/char literals from a line so
    pattern checks don't fire inside them. `state` carries the in-block-comment
    flag across lines; returns (stripped_line, state)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if state["in_block_comment"]:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), state
            state["in_block_comment"] = False
            i = end + 2
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            state["in_block_comment"] = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), state


def check_header_guard(root, rel_path, errors):
    want = expected_guard(rel_path)
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        lines = f.read().splitlines()
    guard = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = INCLUDE_GUARD_IFNDEF_RE.match(line)
        if m:
            guard = m.group(1)
        break
    if guard is None:
        errors.append(f"{rel_path}:1: missing include guard (expected {want})")
    elif guard != want:
        errors.append(
            f"{rel_path}:1: include guard {guard} does not match convention "
            f"{want}")


def check_file_contents(root, rel_path, errors):
    is_header = rel_path.endswith(HEADER_EXTENSIONS)
    in_src = rel_path.split(os.sep)[0] == "src"
    state = {"in_block_comment": False}
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line, state = strip_comments_and_strings(raw.rstrip("\n"), state)
            if is_header and USING_NAMESPACE_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: `using namespace` in a header "
                    "leaks into every includer; use explicit qualification "
                    "or a namespace alias in a function body")
            if is_header and IOSTREAM_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: <iostream> in a header; include "
                    "it in the .cc or use logging.h")
            if in_src and rel_path not in ABORT_ALLOWLIST:
                if ASSERT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw assert(); use "
                        "PILOTE_CHECK / PILOTE_DCHECK so the failure is "
                        "attributed and active in release builds")
                if ABORT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw abort(); use "
                        "PILOTE_CHECK(false) << ... so the failure carries "
                        "file/line and a message")


# ---------------------------------------------------------------------------
# Metric-name convention check
# ---------------------------------------------------------------------------

# Registration sites where a metric name appears as a string literal. The
# Family variants are listed before their prefixes so the alternation
# prefers the longer identifier.
METRIC_SITE_RE = re.compile(
    r"\b(PILOTE_METRIC_COUNT|PILOTE_METRIC_GAUGE_SET|"
    r"PILOTE_METRIC_HISTOGRAM|GetCounterFamily|GetGaugeFamily|"
    r"GetHistogramFamily|GetCounter|GetGauge|GetHistogram)\s*\(\s*\"([^\"]*)\"")

METRIC_KIND = {
    "PILOTE_METRIC_COUNT": "counter",
    "GetCounter": "counter",
    "GetCounterFamily": "counter",
    "PILOTE_METRIC_GAUGE_SET": "gauge",
    "GetGauge": "gauge",
    "GetGaugeFamily": "gauge",
    "PILOTE_METRIC_HISTOGRAM": "histogram",
    "GetHistogram": "histogram",
    "GetHistogramFamily": "histogram",
}

# subsystem/name: at least one slash, lowercase [a-z0-9_] segments.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(/[a-z][a-z0-9_]*)+$")

# Durations are distributions: a scalar counter or gauge named *_ms hides
# the tail that the windowed quantiles exist to expose.
METRIC_TIME_SUFFIXES = ("_ms", "_us", "_ns", "_seconds")


def strip_comments_keep_strings(text):
    """Removes // and /* */ comments from a whole file while preserving
    string literal contents and line structure (newlines inside block
    comments are kept so match positions map back to line numbers). The
    per-line stripper empties string literals, so metric names -- which
    live inside the literals -- need this variant."""
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        c = text[i]
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                if c == "\n":
                    out.append("\n")
                i += 1
            continue
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i:i + 2])
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def check_metric_names(root, rel_path, errors):
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        text = strip_comments_keep_strings(f.read())
    for m in METRIC_SITE_RE.finditer(text):
        site, name = m.group(1), m.group(2)
        kind = METRIC_KIND[site]
        lineno = text.count("\n", 0, m.start(2)) + 1
        where = f"{rel_path}:{lineno}"
        if not METRIC_NAME_RE.match(name):
            errors.append(
                f"{where}: metric name \"{name}\" does not follow the "
                "subsystem/name convention (lowercase [a-z0-9_] segments "
                "joined by '/', e.g. \"serve/request_ms\")")
            continue
        time_suffix = next(
            (s for s in METRIC_TIME_SUFFIXES if name.endswith(s)), None)
        if time_suffix is not None and kind != "histogram":
            errors.append(
                f"{where}: {kind} \"{name}\" carries the duration suffix "
                f"{time_suffix}; durations are distributions -- record "
                "them through a histogram (or drop the unit suffix)")
        if name.endswith("_total") and kind != "counter":
            errors.append(
                f"{where}: {kind} \"{name}\" uses the _total suffix, "
                "which the Prometheus exposition reserves for counters")


def check_self_contained(root, headers, compiler, errors):
    """Each header must compile on its own: generate `#include "x.h"` TUs and
    run the compiler in syntax-only mode."""
    with tempfile.TemporaryDirectory() as tmp:
        for rel_path in headers:
            stub = os.path.join(tmp, re.sub(r"[^A-Za-z0-9]", "_", rel_path) + ".cc")
            with open(stub, "w", encoding="utf-8") as f:
                f.write(f'#include "{os.path.abspath(os.path.join(root, rel_path))}"\n')
            cmd = [
                compiler, "-std=c++20", "-fsyntax-only",
                "-I", os.path.join(root, "src"),
                "-I", root,
                stub,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "")
                errors.append(
                    f"{rel_path}:1: header is not self-contained: {first_error}")


# ---------------------------------------------------------------------------
# Concurrency analyzer stage
# ---------------------------------------------------------------------------

# The capability wrapper layer is the only file allowed to touch the raw
# standard-library synchronization types it wraps.
RAW_SYNC_ALLOWLIST = {
    os.path.join("src", "common", "thread_annotations.h"),
}

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable|condition_variable_any|"
    r"lock_guard|scoped_lock|unique_lock|shared_lock)\b")

GUARD_ANNOTATION_RE = re.compile(r"\bPILOTE_(?:PT_)?GUARDED_BY\s*\(")
# A member whose declared type is one of the capability wrappers (a lock the
# class owns, or a condvar which is internally synchronized by contract).
LOCK_MEMBER_RE = re.compile(
    r"\b(?:pilote::)?(?:Mutex|SharedMutex)\s+[A-Za-z_]\w*")
LOCK_TYPE_RE = re.compile(r"\b(?:pilote::)?(?:Mutex|SharedMutex|CondVar)\b")
UNGUARDED_MARKER_RE = re.compile(r"//\s*unguarded\s*:")
SELF_SYNC_MEMBER_RE = re.compile(
    r"\bstd::(?:atomic\b|atomic_flag\b|thread\b|jthread\b|once_flag\b)")
CONST_MEMBER_RE = re.compile(r"^(?:mutable\s+)?(?:static\s+)?const\b")
# `Foo* const ptr_;` — the member itself is immutable after construction
# (the pointee's thread-safety is its own concern), same as leading const.
PTR_CONST_MEMBER_RE = re.compile(r"\*\s*const\s+[A-Za-z_]\w*")
MEMBER_SKIP_RE = re.compile(
    r"^(?:static\b|constexpr\b|using\b|typedef\b|friend\b|enum\b|"
    r"template\b|struct\b|class\b|union\b|explicit\b|virtual\b|operator\b|"
    r"~|PILOTE_|[A-Z_]+\()")
CLASS_HEAD_RE = re.compile(r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
                           r"([A-Za-z_]\w*)(?:\s*final)?(?:\s*:[^;{]*)?$")
ENUM_HEAD_RE = re.compile(r"\benum\s+(class|struct)\b")

# Only member names that are unique to std::atomic in practice; `clear`
# and `wait` exist on containers/condvars and would drown in noise.
ATOMIC_OP_RE = re.compile(
    r"[.\->]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag)?\s*<[^;=]*?>\s+([A-Za-z_]\w*)"
                            r"|\bstd::atomic_flag\s+([A-Za-z_]\w*)")

RESULT_FN_DECL_RE = re.compile(
    r"\bResult<.+?>\s+(?:\*\s*)?(?:[A-Za-z_]\w*(?:<[^<>]*>)?::)*"
    r"([A-Za-z_]\w*)\s*\(")
# A declaration of the same name with a NON-Result return type makes the
# name ambiguous for a token-level lint (e.g. EdgeLearner::LearnNewClasses
# returns TrainReport while SessionManager::LearnNewClasses returns
# Result<TrainReport>); ambiguous names are excluded rather than guessed.
ANY_FN_DECL_RE = re.compile(
    r"\b([A-Za-z_][\w:]*(?:<[^<>]*>)?[&*]?)\s+"
    r"(?:[A-Za-z_]\w*(?:<[^<>]*>)?::)*([A-Za-z_]\w*)\s*\(")
NOT_A_RETURN_TYPE = {
    "return", "co_return", "co_yield", "co_await", "new", "delete", "throw",
    "else", "case", "goto", "using", "typedef", "sizeof", "if", "while",
    "for", "switch", "do", "not", "and", "or", "const", "constexpr",
    "static", "inline", "virtual", "explicit", "friend", "template",
}
BARE_CALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:<[^<>]*>)?\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\(")
STMT_KEYWORD_RE = re.compile(
    r"^\s*(?:return|co_return|co_await|co_yield|if|else|while|for|do|switch|"
    r"case|goto|new|delete|throw|sizeof|static_assert|using|typedef)\b")

# PILOTE_FAILPOINT(...) expands to a Status; a bare statement silently
# swallows the injected fault and defeats the whole chaos suite. The name
# argument is a string literal, which stripping reduces to empty quotes.
BARE_FAILPOINT_RE = re.compile(r'^\s*PILOTE_FAILPOINT\s*\(\s*(?:"")?\s*\)\s*;')


def stripped_lines_of(path):
    """The file's lines with comments and string/char literals removed, plus
    the raw lines (for `// unguarded:` marker detection, which lives in
    comments on purpose)."""
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    state = {"in_block_comment": False}
    stripped = []
    for line in raw:
        s, state = strip_comments_and_strings(line, state)
        # Preprocessor directives never contribute declarations and their
        # unterminated bodies (macro definitions) confuse the scanners.
        if s.lstrip().startswith("#") or s.rstrip().endswith("\\"):
            s = ""
        stripped.append(s)
    return stripped, raw


def check_raw_sync_types(root, rel_path, stripped, errors):
    if rel_path in RAW_SYNC_ALLOWLIST:
        return
    for lineno, line in enumerate(stripped, start=1):
        m = RAW_SYNC_RE.search(line)
        if m:
            errors.append(
                f"{rel_path}:{lineno}: raw std::{m.group(1)}; use the "
                "annotated Mutex/SharedMutex/CondVar/MutexLock wrappers from "
                "common/thread_annotations.h so Clang -Wthread-safety sees "
                "the capability")


def collect_classes(stripped):
    """Char-level scan producing, for each class/struct definition, its name
    and the member-declaration statements at class scope (function bodies and
    nested scopes are skipped). Each member is (first_line, last_line, text).
    """
    classes = []
    ctx = []          # open scopes: dicts with kind 'class'/'other'
    buf = []          # current statement text, accumulated across lines
    buf_line = None   # first line of the current statement
    pending = None    # (buf, buf_line) saved across a just-closed `}` so a
                      # brace-or-equals initialized member keeps its head
    for lineno, line in enumerate(stripped, start=1):
        for ch in line:
            if pending is not None and not ch.isspace():
                if ch in ";,":
                    buf, buf_line = pending  # `T m_{x};` — restore the head
                else:
                    buf, buf_line = [], None  # it was a function body
                pending = None
            if ch == "{":
                head = "".join(buf).strip()
                m = CLASS_HEAD_RE.search(head)
                if m and not ENUM_HEAD_RE.search(head):
                    ctx.append({"kind": "class", "name": m.group(2),
                                "members": []})
                else:
                    ctx.append({"kind": "other", "saved": buf,
                                "saved_line": buf_line})
                buf, buf_line = [], None
            elif ch == "}":
                top = ctx.pop() if ctx else None
                if top and top["kind"] == "class":
                    classes.append(top)
                    pending = None
                    buf, buf_line = [], None
                elif top:
                    pending = (top["saved"], top["saved_line"])
            elif ch == ";":
                if ctx and ctx[-1]["kind"] == "class":
                    text = "".join(buf).strip()
                    text = re.sub(
                        r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                        text).strip()
                    if text:
                        ctx[-1]["members"].append(
                            (buf_line or lineno, lineno, text))
                buf, buf_line = [], None
            else:
                if buf or not ch.isspace():
                    buf.append(ch)
                    if buf_line is None:
                        buf_line = lineno
        if buf:
            buf.append(" ")
    return classes


def statement_has_unguarded_marker(raw, first_line, last_line):
    """True if any source line of the statement, or a comment-only line
    immediately above it, carries `// unguarded: <reason>`."""
    for ln in range(first_line, min(last_line, len(raw)) + 1):
        if UNGUARDED_MARKER_RE.search(raw[ln - 1]):
            return True
    ln = first_line - 1
    while ln >= 1 and raw[ln - 1].strip().startswith("//"):
        if UNGUARDED_MARKER_RE.search(raw[ln - 1]):
            return True
        ln -= 1
    return False


def check_guarded_members(root, rel_path, stripped, raw, errors):
    if rel_path in RAW_SYNC_ALLOWLIST:
        return
    for cls in collect_classes(stripped):
        owns_lock = any(LOCK_MEMBER_RE.search(text)
                        for _, _, text in cls["members"])
        if not owns_lock:
            continue
        for first, last, text in cls["members"]:
            if MEMBER_SKIP_RE.match(text):
                continue
            if GUARD_ANNOTATION_RE.search(text):
                continue
            if LOCK_TYPE_RE.search(text):
                continue
            if SELF_SYNC_MEMBER_RE.search(text):
                continue
            if CONST_MEMBER_RE.match(text):
                continue
            if PTR_CONST_MEMBER_RE.search(text):
                continue
            if "(" in text:   # method / ctor declaration, not a data member
                continue
            if "=" not in text and "{" not in text and " " not in text:
                continue      # stray token, not a declaration
            if statement_has_unguarded_marker(raw, first, last):
                continue
            name_m = re.search(
                r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=[^=].*|\{.*\})?$",
                text)
            name = name_m.group(1) if name_m else text
            errors.append(
                f"{rel_path}:{first}: member '{name}' of lock-owning "
                f"{cls['name']} has no PILOTE_GUARDED_BY; annotate it, make "
                "it const/std::atomic, or mark it `// unguarded: <reason>`")


def find_matching_paren(text, open_pos):
    """Index of the `)` matching text[open_pos] == `(`, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def check_atomic_memory_order(root, rel_path, stripped, errors):
    text = "\n".join(stripped)
    line_of = []
    ln = 1
    for ch in text:
        line_of.append(ln)
        if ch == "\n":
            ln += 1
    # Names declared std::atomic in this file, for the operator check below.
    atomic_names = set()
    for m in ATOMIC_DECL_RE.finditer(text):
        atomic_names.add(m.group(1) or m.group(2))
    for m in ATOMIC_OP_RE.finditer(text):
        open_pos = text.index("(", m.end(1))
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        if "memory_order" in text[open_pos:close_pos]:
            continue
        lineno = line_of[m.start(1)]
        errors.append(
            f"{rel_path}:{lineno}: atomic {m.group(1)}() without an explicit "
            "std::memory_order; state the ordering (memory_order_relaxed for "
            "independent counters) so it is a reviewed decision, not an "
            "accidental seq_cst")
    # `++x` / `x += d` / `x = v` on atomics are implicit seq_cst operations.
    for name in atomic_names:
        for m in re.finditer(
                r"(?:\+\+|--)\s*" + re.escape(name) + r"\b|"
                r"\b" + re.escape(name) +
                r"\s*(?:\+\+|--|[+\-|&^]=|=(?![=]))", text):
            span = text[m.start():m.end()]
            if "=" in span and "std::atomic" in stripped[line_of[m.start()] - 1]:
                continue  # the declaration's initializer
            lineno = line_of[m.start()]
            errors.append(
                f"{rel_path}:{lineno}: operator on std::atomic '{name}' is "
                "an implicit seq_cst op; use load/store/fetch_* with an "
                "explicit std::memory_order")


def collect_result_function_names(root, files):
    names = set()
    non_result = set()
    for rel_path in files:
        stripped, _ = stripped_lines_of(os.path.join(root, rel_path))
        for line in stripped:
            for m in RESULT_FN_DECL_RE.finditer(line):
                names.add(m.group(1))
            for m in ANY_FN_DECL_RE.finditer(line):
                ret = m.group(1)
                if ret.startswith("Result<") or ret.endswith("Result") \
                        or ret in NOT_A_RETURN_TYPE:
                    continue
                non_result.add(m.group(2))
    names.discard("operator")
    return names - non_result


def check_discarded_results(root, rel_path, stripped, result_fns, errors):
    if not result_fns:
        return
    text = "\n".join(stripped)
    offset = 0
    offsets = []
    for line in stripped:
        offsets.append(offset)
        offset += len(line) + 1
    prev_sig = ""  # last non-empty stripped line seen before the current one
    for idx, line in enumerate(stripped):
        here = line.strip()
        if not here:
            continue
        m = BARE_CALL_RE.match(line)
        starts_statement = prev_sig == "" or prev_sig[-1] in ";{}:)"
        prev_sig = here
        if not m or not starts_statement:
            continue
        if m.group(1) not in result_fns or STMT_KEYWORD_RE.match(line):
            continue
        open_pos = text.index("(", offsets[idx] + m.end(1))
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        rest = text[close_pos + 1:close_pos + 64].lstrip()
        if not rest.startswith(";"):
            continue  # chained (.ok(), ->value()), assigned, or an operand
        errors.append(
            f"{rel_path}:{idx + 1}: result of Result-returning "
            f"'{m.group(1)}(...)' is discarded; check .ok() / use "
            "PILOTE_ASSIGN_OR_RETURN, or cast through a named status if the "
            "failure is truly ignorable")


def check_discarded_failpoints(root, rel_path, stripped, errors):
    for idx, line in enumerate(stripped):
        if BARE_FAILPOINT_RE.match(line):
            errors.append(
                f"{rel_path}:{idx + 1}: the Status of PILOTE_FAILPOINT(...) "
                "is discarded, so the injected fault would be swallowed; "
                "wrap it in PILOTE_RETURN_IF_ERROR or handle the Status")


# ---------------------------------------------------------------------------
# Hot-path analyzer stage
# ---------------------------------------------------------------------------

HOT_PATH_MARKER = "PILOTE_HOT_PATH"
HOTPATH_OK_RE = re.compile(r"//\s*hotpath-ok\s*:")

# Heads starting with these never open a function body.
NON_FUNCTION_HEAD_RE = re.compile(
    r"^\s*(?:class|struct|union|enum|namespace|extern)\b")
CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "switch", "catch", "do", "return",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "throw", "co_await", "co_return", "co_yield",
}
# Call-site names that never propagate the closure: by repo convention
# these are trivial inline accessors (Tensor::rows, BoundedQueue::size,
# ...), and resolving them by bare name would pull in the entire repo.
ACCESSOR_NAMES = {
    "size", "empty", "data", "begin", "end", "front", "back", "rows",
    "cols", "dim", "rank", "numel", "shape", "vec", "row", "get", "at",
    "ok", "value", "status", "code", "count", "bytes", "name", "id",
    "learner", "options", "capacity", "pending", "window_length", "dims",
    "distance", "label",
}

HOTPATH_CHECKS = [
    ("heap-new", re.compile(r"(?<![\w.])new\b"),
     "operator new"),
    ("heap-new", re.compile(r"\bstd::make_(?:unique|shared)\b"),
     "std::make_unique/make_shared"),
    ("container-growth",
     re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|insert|"
                r"resize|reserve|assign|append)\s*\("),
     "growing container call"),
    ("local-alloc",
     re.compile(r"^\s*(?:const\s+)?(?:pilote::)?(?:Tensor|std::vector|"
                r"std::string|std::deque|std::map|std::unordered_map|"
                r"std::set|std::unordered_set|std::function|std::list)"
                r"\s*(?:<[^;=()]*>)?\s+[A-Za-z_]\w*\s*[({=;]"),
     "allocating local object"),
    ("local-alloc", re.compile(r"(?<![\w:])(?:pilote::)?Tensor\s*\("),
     "Tensor construction"),
    ("string-build",
     re.compile(r"\bstd::to_string\s*\(|\bstd::o?i?stringstream\b"),
     "string building"),
    ("writer-lock",
     re.compile(r"\b(?:MutexLock|WriterLock)\s+[A-Za-z_]\w*\s*[({]"),
     "exclusive lock acquisition"),
    ("throw", re.compile(r"(?<![\w.])throw\b"),
     "exception throw"),
    ("blocking-io",
     re.compile(r"\bstd::o?i?fstream\b|\bPILOTE_LOG\s*\(|\bstd::cout\b|"
                r"\bstd::cerr\b|(?<![\w.])f?printf\s*\(|"
                r"\bstd::this_thread::sleep_(?:for|until)\b"),
     "blocking I/O"),
]

CHECK_STMT_RE = re.compile(r"^\s*PILOTE_D?CHECK")
CALL_SITE_RE = re.compile(r"(?:^|[^\w.>:])([A-Za-z_]\w*)\s*\(")
METHOD_CALL_RE = re.compile(r"(?:\.|->|::)\s*([A-Za-z_]\w*)\s*\(")


def parse_function_head(head):
    """(bare_name, display_name) when `head{` opens a function body, else
    None. `head` is the accumulated statement text before the brace."""
    head = head.strip()
    if not head or "(" not in head or NON_FUNCTION_HEAD_RE.match(head):
        return None
    head = re.sub(r"^template\s*<[^>]*>\s*", "", head)
    p = head.find("(")
    if "=" in head[:p]:
        return None  # lambda assignment or initializer
    m = re.search(r"([A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*)\s*$", head[:p])
    if not m:
        return None  # lambda or operator overload
    qual = m.group(1)
    bare = qual.rsplit("::", 1)[-1]
    if bare in CONTROL_KEYWORDS or bare == "operator":
        return None
    close = find_matching_paren(head, p)
    if close == -1:
        return None
    tail = head[close + 1:]
    if ";" in tail or "=" in tail:
        return None  # member with brace-init, `= default`, ...
    return bare, qual


def collect_functions(stripped):
    """Brace-tracking scan yielding every function definition: bare name,
    qualified display name, head/open/close line numbers."""
    functions = []
    buf, buf_line = [], None
    depth = 0
    current = None
    for lineno, line in enumerate(stripped, start=1):
        for ch in line:
            if ch == "{":
                if current is None:
                    head_text = "".join(buf)
                    parsed = parse_function_head(head_text)
                    if parsed:
                        current = {
                            "name": parsed[0], "qual": parsed[1],
                            "head": head_text.strip(),
                            "head_line": buf_line or lineno,
                            "open_line": lineno, "close_line": None,
                            "fn_depth": depth,
                        }
                buf, buf_line = [], None
                depth += 1
            elif ch == "}":
                depth -= 1
                if current is not None and depth == current["fn_depth"]:
                    current["close_line"] = lineno
                    functions.append(current)
                    current = None
                buf, buf_line = [], None
            elif ch == ";":
                buf, buf_line = [], None
            else:
                if buf or not ch.isspace():
                    buf.append(ch)
                    if buf_line is None:
                        buf_line = lineno
        if buf:
            buf.append(" ")
    return functions


def body_lines(fn, stripped):
    """(lineno, text) for the function's body, with the head fragment on
    the opening line and the trailing fragment on the closing line cut so
    signatures are not mistaken for local declarations."""
    out = []
    for ln in range(fn["open_line"], (fn["close_line"] or 0) + 1):
        text = stripped[ln - 1]
        if ln == fn["open_line"]:
            brace = text.find("{")
            if brace != -1:
                text = text[brace + 1:]
        if ln == fn["close_line"]:
            brace = text.rfind("}")
            if brace != -1:
                text = text[:brace]
        out.append((ln, text))
    return out


def non_check_body_lines(fn, stripped):
    """body_lines() minus PILOTE_CHECK/PILOTE_DCHECK statements (including
    their continuation lines). The fatal-check path may format messages and
    allocate; it fires at most once per process, so neither its calls nor
    its allocations count against the hot path."""
    in_check = False
    for lineno, text in body_lines(fn, stripped):
        if in_check:
            if text.rstrip().endswith(";"):
                in_check = False
            continue
        if CHECK_STMT_RE.match(text):
            if not text.rstrip().endswith(";"):
                in_check = True
            continue
        yield lineno, text


def call_sites(fn, stripped):
    names = set()
    for _, text in non_check_body_lines(fn, stripped):
        for m in CALL_SITE_RE.finditer(text):
            names.add(m.group(1))
        for m in METHOD_CALL_RE.finditer(text):
            names.add(m.group(1))
    return {n for n in names
            if n not in CONTROL_KEYWORDS and n not in ACCESSOR_NAMES}


def statement_has_hotpath_ok(raw, first_line, last_line=None):
    """True if the raw line range, or a comment-only line immediately above
    it, carries `// hotpath-ok: <reason>`."""
    last_line = last_line or first_line
    for ln in range(first_line, min(last_line, len(raw)) + 1):
        if HOTPATH_OK_RE.search(raw[ln - 1]):
            return True
    ln = first_line - 1
    while ln >= 1 and raw[ln - 1].strip().startswith("//"):
        if HOTPATH_OK_RE.search(raw[ln - 1]):
            return True
        ln -= 1
    return False


def find_hot_path_roots(stripped):
    """Bare names of functions declared or defined with PILOTE_HOT_PATH.
    The marker and the declarator may be split across lines, so a few
    following lines are joined before parsing."""
    roots = set()
    for idx, line in enumerate(stripped):
        if HOT_PATH_MARKER not in line:
            continue
        joined = " ".join(stripped[idx:idx + 4])
        joined = joined.split(HOT_PATH_MARKER, 1)[1]
        p = joined.find("(")
        if p == -1:
            continue
        m = re.search(r"([A-Za-z_]\w*)\s*$", joined[:p].strip())
        if m:
            roots.add(m.group(1))
    return roots


def run_hotpath_stage(root, errors):
    src_files = find_files(root, ("src",), SOURCE_EXTENSIONS)
    files = {}
    index = {}   # bare name -> [(rel_path, fn)]
    roots = set()
    for rel_path in src_files:
        stripped, raw = stripped_lines_of(os.path.join(root, rel_path))
        files[rel_path] = (stripped, raw)
        for fn in collect_functions(stripped):
            index.setdefault(fn["name"], []).append((rel_path, fn))
        roots |= find_hot_path_roots(stripped)

    if not roots:
        return

    def head_exempt(rel_path, fn):
        _, raw = files[rel_path]
        return statement_has_hotpath_ok(raw, fn["head_line"],
                                        fn["open_line"])

    # BFS over bare names from the marked roots; a head-level hotpath-ok
    # prunes that definition (its body is neither checked nor traversed).
    via = {name: None for name in roots if name in index}
    queue = sorted(via)
    while queue:
        name = queue.pop(0)
        for rel_path, fn in index.get(name, ()):
            if head_exempt(rel_path, fn):
                continue
            stripped, _ = files[rel_path]
            for callee in sorted(call_sites(fn, stripped)):
                if callee in index and callee not in via:
                    via[callee] = name
                    queue.append(callee)

    def chain(name):
        parts = [name]
        while via.get(parts[-1]):
            parts.append(via[parts[-1]])
        return " <- ".join(parts)

    for name in sorted(via):
        for rel_path, fn in index.get(name, ()):
            if head_exempt(rel_path, fn):
                continue
            stripped, raw = files[rel_path]
            for lineno, text in non_check_body_lines(fn, stripped):
                if not text.strip():
                    continue
                for check_id, pattern, what in HOTPATH_CHECKS:
                    if not pattern.search(text):
                        continue
                    if statement_has_hotpath_ok(raw, lineno):
                        continue
                    errors.append(
                        f"{rel_path}:{lineno}: [hotpath:{check_id}] {what} "
                        f"in '{fn['qual']}' (hot via {chain(name)}); fix it "
                        "or mark the line `// hotpath-ok: <reason>`")
                    break


# ---------------------------------------------------------------------------
# Lifetime stage (--stage lifetime)
# ---------------------------------------------------------------------------

LIFETIME_OK_RE = re.compile(r"//\s*lifetime-ok\s*:")

# Call names whose argument lambdas execute after the calling frame may
# have returned: thread entry points, pool/queue submission, callback and
# failpoint registration. Name-based, like the hotpath call graph.
DEFERRED_SINK_RE = re.compile(
    r"(?<!\w)(thread|jthread|async|Submit|Push|TryPush|emplace_back|"
    r"push_back|SetCallback|RegisterCallback|RegisterFailpoint|Defer)\s*\(")
# `std::thread worker(...)` declaration form: the argument paren follows
# the variable name, not the type.
THREAD_DECL_SINK_RE = re.compile(
    r"(?<!\w)(thread|jthread)\s+[A-Za-z_]\w*\s*\(")
# Sinks where a bare `this` argument is itself a deferred escape (the
# `std::thread(&Class::Loop, this)` member-entry-point form).
THREAD_CTOR_SINKS = {"thread", "jthread", "async"}

# Owner types whose storage dies with the enclosing scope (for
# return-local) or reallocates on growth (for stored-view; the growable
# subset below).
OWNER_TYPE_PATTERN = (
    r"(?:std::(?:string|basic_string|vector|deque|list|map|unordered_map|"
    r"set|unordered_set|array|ostringstream|istringstream|stringstream)|"
    r"(?:pilote::)?Tensor)")
LOCAL_OWNER_RE = re.compile(
    r"^\s*(?:const\s+)?" + OWNER_TYPE_PATTERN +
    r"\s*(?:<[^;=()]*>)?\s+([A-Za-z_]\w*)\s*[({=;\[]")
# Contiguous-storage types that invalidate raw pointers/iterators on
# growth. (Node-based maps/sets keep element addresses stable, so they
# are owners above but not growables here.)
GROWABLE_TYPE_PATTERN = (
    r"(?:std::(?:string|basic_string|vector|deque)|(?:pilote::)?Tensor)")
GROWABLE_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?" + GROWABLE_TYPE_PATTERN +
    r"\s*(?:<[^;=()]*>)?\s+([A-Za-z_]\w*)\s*[({=;\[]?")

CONTAINER_MUTATORS = (
    r"(?:push_back|emplace_back|emplace|push_front|pop_front|pop_back|"
    r"insert|erase|resize|reserve|clear|assign|ResizeRows|shrink_to_fit)")


def statement_has_lifetime_ok(raw, first_line, last_line=None):
    """True if the raw line range, or a comment-only line immediately above
    it, carries `// lifetime-ok: <reason>`."""
    last_line = last_line or first_line
    for ln in range(first_line, min(last_line, len(raw)) + 1):
        if LIFETIME_OK_RE.search(raw[ln - 1]):
            return True
    ln = first_line - 1
    while ln >= 1 and raw[ln - 1].strip().startswith("//"):
        if LIFETIME_OK_RE.search(raw[ln - 1]):
            return True
        ln -= 1
    return False


def joined_with_line_map(stripped):
    """Joins stripped lines into one text blob plus a char-index -> 1-based
    line number map, so regexes can cross statement line breaks."""
    text = "\n".join(stripped)
    line_of = []
    ln = 1
    for ch in text:
        line_of.append(ln)
        if ch == "\n":
            ln += 1
    return text, line_of


def split_top_level_args(args_text):
    parts, depth, buf = [], 0, []
    for ch in args_text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return [p.strip() for p in parts]


def lambda_capture_lists(args_text):
    """Yields (offset, capture_list_text) for every lambda introducer in the
    argument text. A `[` is a lambda introducer (not a subscript or array
    bound) when the previous non-space char is not an identifier char,
    `]`, or `)`."""
    for m in re.finditer(r"\[", args_text):
        i = m.start()
        j = i - 1
        while j >= 0 and args_text[j].isspace():
            j -= 1
        if j >= 0 and (args_text[j].isalnum() or args_text[j] in "_])"):
            continue
        close = args_text.find("]", i)
        if close == -1:
            continue
        yield i, args_text[i + 1:close]


def risky_captures(capture_list):
    """Capture tokens that bind by reference: `&`, `&name`, `&name = expr`,
    `this`. `=`, by-value names, init-captures, and `*this` are safe."""
    risky = []
    for tok in split_top_level_args(capture_list):
        if not tok:
            continue
        if tok == "this" or tok.startswith("&"):
            risky.append(tok)
    return risky


def check_deferred_ref_captures(root, rel_path, stripped, raw, errors):
    text, line_of = joined_with_line_map(stripped)
    sites = [(m.start(), m.end() - 1, m.group(1))
             for m in DEFERRED_SINK_RE.finditer(text)]
    sites += [(m.start(), m.end() - 1, m.group(1))
              for m in THREAD_DECL_SINK_RE.finditer(text)]
    for start, open_pos, sink in sorted(sites):
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        args_text = text[open_pos + 1:close_pos]
        sink_line = line_of[start]
        findings = []
        for off, caps in lambda_capture_lists(args_text):
            for tok in risky_captures(caps):
                findings.append((
                    line_of[open_pos + 1 + off],
                    f"lambda captures `{tok}` by reference and is passed to "
                    f"deferred sink '{sink}'"))
        if sink in THREAD_CTOR_SINKS:
            for arg in split_top_level_args(args_text):
                if arg == "this":
                    findings.append((
                        sink_line,
                        f"`this` passed to '{sink}' outlives the "
                        "constructing frame"))
        for lineno, what in findings:
            if statement_has_lifetime_ok(raw, sink_line, lineno):
                continue
            errors.append(
                f"{rel_path}:{sink_line}: [lifetime:ref-capture] {what}; "
                "the callee runs after this frame may be gone -- capture by "
                "value or annotate `// lifetime-ok: <reason>`")


def return_kind(head):
    """Classifies a function head's return type: 'ref', 'ptr', 'view'
    (string_view/Span), or None for by-value / unparseable heads."""
    head = re.sub(r"^\s*template\s*<[^>]*>\s*", "", head.strip())
    p = head.find("(")
    if p == -1:
        return None
    decl = head[:p]
    m = re.search(r"((?:~\s*)?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*$",
                  decl)
    if not m:
        return None
    ret = decl[:m.start()].strip()
    if not ret:
        return None
    if "string_view" in ret or re.search(r"\b(?:Basic)?(?:Const)?Span\s*<",
                                         ret):
        return "view"
    if ret.endswith("&"):
        return "ref"
    if ret.endswith("*"):
        return "ptr"
    return None


def param_owner_names(head):
    """Names of by-value owner-typed parameters (their storage dies with
    the frame just like a local)."""
    p = head.find("(")
    if p == -1:
        return set()
    close = find_matching_paren(head, p)
    if close == -1:
        return set()
    names = set()
    for prm in split_top_level_args(head[p + 1:close]):
        if not prm or "&" in prm or "*" in prm:
            continue
        m = re.match(r"(?:const\s+)?" + OWNER_TYPE_PATTERN +
                     r"\s*(?:<[^;=]*>)?\s+([A-Za-z_]\w*)\s*$", prm)
        if m:
            names.add(m.group(1))
    return names


def return_statements(fn, stripped):
    """Yields (first_line, last_line, joined_statement) for every `return`
    statement in the function body."""
    acc = None
    first = None
    for ln, line_text in body_lines(fn, stripped):
        if acc is None:
            if not re.match(r"\s*return\b", line_text):
                continue
            acc, first = line_text.strip(), ln
        else:
            acc += " " + line_text.strip()
        if acc.rstrip().endswith(";"):
            yield first, ln, acc
            acc = None


TEMP_BUFFER_RETURN_RE = re.compile(r"[)}]\s*\.\s*(?:c_str|data)\s*\(")
VIEW_TEMP_STRING_RE = re.compile(r"^std::(?:string|to_string)\s*[({]")


def check_dangling_returns(root, rel_path, stripped, raw, errors):
    for fn in collect_functions(stripped):
        kind = return_kind(fn.get("head", ""))
        if kind is None:
            continue
        locals_set = param_owner_names(fn.get("head", ""))
        for _, line_text in body_lines(fn, stripped):
            if re.search(r"\bstatic\b", line_text):
                continue  # function-local statics outlive the frame
            dm = LOCAL_OWNER_RE.match(line_text)
            if dm:
                locals_set.add(dm.group(1))
        for first, last, stmt in return_statements(fn, stripped):
            expr = re.sub(r"^\s*return\b", "", stmt).strip()
            expr = expr.rstrip(";").strip()
            if not expr:
                continue
            if statement_has_lifetime_ok(raw, first, last):
                continue

            def fire(what):
                errors.append(
                    f"{rel_path}:{first}: [lifetime:return-local] "
                    f"'{fn['qual']}' returns a {kind} {what}; the storage "
                    "dies when this frame returns -- return by value or "
                    "annotate `// lifetime-ok: <reason>`")

            if kind in ("ptr", "view") and TEMP_BUFFER_RETURN_RE.search(expr):
                fire("into the internal buffer of a temporary")
                continue
            if kind == "view" and VIEW_TEMP_STRING_RE.match(expr):
                fire("over a temporary std::string")
                continue
            mb = re.match(r"(&)?\s*([A-Za-z_]\w*)", expr)
            if not mb:
                continue
            addr_of, name = mb.group(1), mb.group(2)
            if name not in locals_set:
                continue
            rest = expr[mb.end():].lstrip()
            if kind == "ref":
                fire(f"tied to local '{name}'")
            elif kind == "ptr" and (
                    addr_of or
                    re.match(r"\.\s*(?:data|c_str)\s*\(", rest)):
                fire(f"into local '{name}'")
            elif kind == "view" and not addr_of:
                fire(f"viewing local '{name}'")


STORE_STMT_RE = re.compile(
    r"^\s*((?:this\s*->\s*)?[A-Za-z_]\w*"
    r"(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*=(?![=])\s*(.+)$")


def member_growable_names(stripped):
    names = set()
    for cls in collect_classes(stripped):
        for _, _, member_text in cls["members"]:
            m = GROWABLE_DECL_RE.match(member_text)
            if m:
                names.add(m.group(1))
    return names


def check_stored_container_views(root, rel_path, stripped, raw, errors):
    growables = member_growable_names(stripped)
    for fn in collect_functions(stripped):
        for _, line_text in body_lines(fn, stripped):
            dm = GROWABLE_DECL_RE.match(line_text)
            if dm and not re.search(r"\bstatic\b", line_text):
                growables.add(dm.group(1))
    if not growables:
        return
    names_alt = "|".join(sorted(re.escape(n) for n in growables))
    view_of_growable_re = re.compile(
        r"(?:&\s*(?:" + names_alt + r")\s*(?:\[|\.\s*(?:front|back)\s*\())|"
        r"(?:(?<![\w.])(?:" + names_alt +
        r")\s*\.\s*(?:data|c_str|begin|end|cbegin|cend)\s*\(\s*\))")
    for lineno, line_text in enumerate(stripped, start=1):
        # Split into statement fragments so a store sharing its line with a
        # function head or another statement is still anchored at its start.
        for fragment in re.split(r"[;{}]", line_text):
            m = STORE_STMT_RE.match(fragment)
            if not m:
                continue
            report_stored_view(rel_path, raw, errors, lineno, m,
                               view_of_growable_re)


def report_stored_view(rel_path, raw, errors, lineno, m, view_of_growable_re):
    lhs, rhs = m.group(1), m.group(2)
    last = re.split(r"\.|->", lhs)[-1].strip()
    member_ish = (last.endswith("_") or "." in lhs or "->" in lhs)
    if not member_ish:
        return
    vm = view_of_growable_re.search(rhs)
    if not vm:
        return
    if statement_has_lifetime_ok(raw, lineno):
        return
    errors.append(
        f"{rel_path}:{lineno}: [lifetime:stored-view] `{lhs.strip()}` "
        f"stores a pointer/iterator into growable container storage "
        f"(`{vm.group(0).strip()}`); the next growth reallocates and "
        "leaves it dangling -- store an index/Span re-derived per use "
        "or annotate `// lifetime-ok: <reason>`")


def find_matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


RANGE_FOR_CONTAINER_RE = re.compile(
    r"^[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*$")


def check_range_for_mutation(root, rel_path, stripped, raw, errors):
    text, line_of = joined_with_line_map(stripped)
    for m in re.finditer(r"\bfor\s*\(", text):
        open_pos = m.end() - 1
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        head = text[open_pos + 1:close_pos]
        # Find the range-for ':' at top nesting level (not '::').
        colon = -1
        depth = 0
        for i, ch in enumerate(head):
            if ch in "([{<":
                depth += 1
            elif ch in ")]}>":
                depth -= 1
            elif (ch == ":" and depth == 0 and
                  head[i - 1:i] != ":" and head[i + 1:i + 2] != ":"):
                colon = i
                break
        if colon == -1:
            continue
        container = head[colon + 1:].strip()
        if not RANGE_FOR_CONTAINER_RE.match(container):
            continue
        # Loop body: braced block or single statement.
        i = close_pos + 1
        while i < len(text) and text[i].isspace():
            i += 1
        if i < len(text) and text[i] == "{":
            body_end = find_matching_brace(text, i)
        else:
            body_end = text.find(";", i)
        if body_end == -1:
            continue
        body = text[i:body_end + 1]
        mut_re = re.compile(
            r"(?<![\w.>])" + re.escape(container) + r"\s*(?:\.|->)\s*" +
            CONTAINER_MUTATORS + r"\s*\(")
        for mm in mut_re.finditer(body):
            mut_line = line_of[i + mm.start()]
            if statement_has_lifetime_ok(raw, mut_line):
                continue
            errors.append(
                f"{rel_path}:{mut_line}: [lifetime:iter-invalidation] "
                f"`{container}` is mutated inside a range-for over itself "
                f"(loop at line {line_of[m.start()]}); the loop's hidden "
                "iterators are invalidated -- collect changes and apply "
                "after the loop, or annotate `// lifetime-ok: <reason>`")


def run_lifetime_stage(root, errors):
    src_files = find_files(root, ("src",), SOURCE_EXTENSIONS)
    for rel_path in src_files:
        stripped, raw = stripped_lines_of(os.path.join(root, rel_path))
        check_deferred_ref_captures(root, rel_path, stripped, raw, errors)
        check_dangling_returns(root, rel_path, stripped, raw, errors)
        check_stored_container_views(root, rel_path, stripped, raw, errors)
        check_range_for_mutation(root, rel_path, stripped, raw, errors)


def run_style_stage(root, args, headers, sources, errors):
    for h in headers:
        check_header_guard(root, h, errors)
    for f in sources:
        check_file_contents(root, f, errors)
        if f.endswith((".h", ".hpp", ".cc", ".cpp")) and \
                f.split(os.sep)[0] in HEADER_DIRS:
            check_metric_names(root, f, errors)
    if not args.no_self_contained:
        check_self_contained(root, headers, args.compiler, errors)


def run_concurrency_stage(root, errors):
    src_files = find_files(root, ("src",), SOURCE_EXTENSIONS)
    all_files = find_files(root, HEADER_DIRS, SOURCE_EXTENSIONS)
    result_fns = collect_result_function_names(root, all_files)
    for rel_path in src_files:
        stripped, raw = stripped_lines_of(os.path.join(root, rel_path))
        check_raw_sync_types(root, rel_path, stripped, errors)
        check_guarded_members(root, rel_path, stripped, raw, errors)
        check_atomic_memory_order(root, rel_path, stripped, errors)
    for rel_path in all_files:
        stripped, _ = stripped_lines_of(os.path.join(root, rel_path))
        check_discarded_results(root, rel_path, stripped, result_fns, errors)
        check_discarded_failpoints(root, rel_path, stripped, errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--stage",
                        choices=("style", "concurrency", "hotpath",
                                 "lifetime", "all"),
                        default="all", help="which invariant stage to run")
    parser.add_argument("--compiler", default="c++",
                        help="compiler used for the self-containedness check")
    parser.add_argument("--no-self-contained", action="store_true",
                        help="skip the (slower) header self-containedness check")
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="also write findings as a JSON artifact")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    headers = find_files(root, HEADER_DIRS, HEADER_EXTENSIONS)
    sources = find_files(root, SOURCE_DIRS, SOURCE_EXTENSIONS)

    errors = []
    if args.stage in ("style", "all"):
        run_style_stage(root, args, headers, sources, errors)
    if args.stage in ("concurrency", "all"):
        run_concurrency_stage(root, errors)
    if args.stage in ("hotpath", "all"):
        run_hotpath_stage(root, errors)
    if args.stage in ("lifetime", "all"):
        run_lifetime_stage(root, errors)

    if args.json_out:
        findings = []
        for e in errors:
            m = re.match(r"(.*?):(\d+): (.*)", e)
            if m:
                findings.append({"file": m.group(1),
                                 "line": int(m.group(2)),
                                 "message": m.group(3)})
            else:
                findings.append({"file": None, "line": None, "message": e})
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump({"stage": args.stage,
                       "violations": len(errors),
                       "findings": findings}, f, indent=2)
            f.write("\n")

    if errors:
        for e in errors:
            print(e)
        print(f"pilote_lint[{args.stage}]: {len(errors)} violation(s)")
        return 1
    print(f"pilote_lint[{args.stage}]: OK "
          f"({len(headers)} headers, {len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
