#!/usr/bin/env python3
"""Repo-invariant linter for pilote.

Enforces project conventions that the compiler cannot:

  * include guards named PILOTE_<PATH>_H_ (path relative to src/, or the
    literal directory for tests/, bench/, examples/)
  * no `using namespace` at namespace/global scope in headers
  * no raw assert()/abort() in src/ -- invariants use PILOTE_CHECK so
    failures are reported with file/line and a streamed message
  * no <iostream> in headers (it drags in static init and bloats every TU;
    logging.h is the sanctioned output path)
  * headers are self-contained (each compiles as its own translation unit)

Run directly, via the `lint` CMake target, or as the `repo_lint` ctest test:

  python3 tools/pilote_lint.py --root . [--compiler g++] [--no-self-contained]

Exit status is 0 when clean, 1 when any invariant is violated.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

HEADER_DIRS = ("src", "tests", "bench", "examples")
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to call abort()/assert directly (the CHECK machinery itself).
ABORT_ALLOWLIST = {
    "src/common/macros.h",
    "src/common/numerics_guard.cc",
}

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
ABORT_RE = re.compile(r"(?<![\w.:])(?:std::)?abort\s*\(\s*\)")
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*<iostream>')
INCLUDE_GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)\s*$")


def find_files(root, dirs, extensions):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


def expected_guard(rel_path):
    """src/common/macros.h -> PILOTE_COMMON_MACROS_H_ ; tests/test_util.h ->
    PILOTE_TESTS_TEST_UTIL_H_ (the src/ prefix is dropped, others kept)."""
    parts = rel_path.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "PILOTE_" + stem.upper() + "_H_"


def strip_comments_and_strings(line, state):
    """Removes // and /* */ comments and string/char literals from a line so
    pattern checks don't fire inside them. `state` carries the in-block-comment
    flag across lines; returns (stripped_line, state)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if state["in_block_comment"]:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), state
            state["in_block_comment"] = False
            i = end + 2
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            state["in_block_comment"] = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), state


def check_header_guard(root, rel_path, errors):
    want = expected_guard(rel_path)
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        lines = f.read().splitlines()
    guard = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = INCLUDE_GUARD_IFNDEF_RE.match(line)
        if m:
            guard = m.group(1)
        break
    if guard is None:
        errors.append(f"{rel_path}:1: missing include guard (expected {want})")
    elif guard != want:
        errors.append(
            f"{rel_path}:1: include guard {guard} does not match convention "
            f"{want}")


def check_file_contents(root, rel_path, errors):
    is_header = rel_path.endswith(HEADER_EXTENSIONS)
    in_src = rel_path.split(os.sep)[0] == "src"
    state = {"in_block_comment": False}
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line, state = strip_comments_and_strings(raw.rstrip("\n"), state)
            if is_header and USING_NAMESPACE_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: `using namespace` in a header "
                    "leaks into every includer; use explicit qualification "
                    "or a namespace alias in a function body")
            if is_header and IOSTREAM_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: <iostream> in a header; include "
                    "it in the .cc or use logging.h")
            if in_src and rel_path not in ABORT_ALLOWLIST:
                if ASSERT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw assert(); use "
                        "PILOTE_CHECK / PILOTE_DCHECK so the failure is "
                        "attributed and active in release builds")
                if ABORT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw abort(); use "
                        "PILOTE_CHECK(false) << ... so the failure carries "
                        "file/line and a message")


def check_self_contained(root, headers, compiler, errors):
    """Each header must compile on its own: generate `#include "x.h"` TUs and
    run the compiler in syntax-only mode."""
    with tempfile.TemporaryDirectory() as tmp:
        for rel_path in headers:
            stub = os.path.join(tmp, re.sub(r"[^A-Za-z0-9]", "_", rel_path) + ".cc")
            with open(stub, "w", encoding="utf-8") as f:
                f.write(f'#include "{os.path.abspath(os.path.join(root, rel_path))}"\n')
            cmd = [
                compiler, "-std=c++20", "-fsyntax-only",
                "-I", os.path.join(root, "src"),
                "-I", root,
                stub,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "")
                errors.append(
                    f"{rel_path}:1: header is not self-contained: {first_error}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--compiler", default="c++",
                        help="compiler used for the self-containedness check")
    parser.add_argument("--no-self-contained", action="store_true",
                        help="skip the (slower) header self-containedness check")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    headers = find_files(root, HEADER_DIRS, HEADER_EXTENSIONS)
    sources = find_files(root, SOURCE_DIRS, SOURCE_EXTENSIONS)

    errors = []
    for h in headers:
        check_header_guard(root, h, errors)
    for f in sources:
        check_file_contents(root, f, errors)
    if not args.no_self_contained:
        check_self_contained(root, headers, args.compiler, errors)

    if errors:
        for e in errors:
            print(e)
        print(f"pilote_lint: {len(errors)} violation(s)")
        return 1
    print(f"pilote_lint: OK ({len(headers)} headers, {len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
