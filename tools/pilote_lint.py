#!/usr/bin/env python3
"""Repo-invariant linter and analyzer for pilote.

Two stages, selected with --stage (default: all).

`--stage style` enforces project conventions that the compiler cannot:

  * include guards named PILOTE_<PATH>_H_ (path relative to src/, or the
    literal directory for tests/, bench/, examples/)
  * no `using namespace` at namespace/global scope in headers
  * no raw assert()/abort() in src/ -- invariants use PILOTE_CHECK so
    failures are reported with file/line and a streamed message
  * no <iostream> in headers (it drags in static init and bloats every TU;
    logging.h is the sanctioned output path)
  * headers are self-contained (each compiles as its own translation unit)

`--stage concurrency` enforces the repo side of the Clang thread-safety
contract (src/common/thread_annotations.h) -- invariants that even
-Wthread-safety cannot see:

  * raw std::mutex / std::shared_mutex / std::condition_variable outside
    thread_annotations.h are rejected (everything goes through the
    annotated Mutex/SharedMutex/CondVar capability wrappers)
  * in a class owning a Mutex/SharedMutex, every data member must carry
    PILOTE_GUARDED_BY / PILOTE_PT_GUARDED_BY or be const, std::atomic,
    std::thread, a lock/condvar, or carry a `// unguarded: <reason>` marker
  * a Result<T>-returning call used as a bare expression statement is a
    discarded error (complements [[nodiscard]], which (void)-casts and
    non-Werror builds can silence)
  * std::atomic operations must state an explicit std::memory_order (the
    relaxed-counter policy is a reviewable decision at every site, never an
    accidental seq_cst default)

Run directly, via the `lint` CMake target, or as the `repo_lint` /
`repo_analyzer` ctest tests:

  python3 tools/pilote_lint.py --root . [--stage STAGE] [--compiler g++]
                               [--no-self-contained]

Exit status is 0 when clean, 1 when any invariant is violated.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

HEADER_DIRS = ("src", "tests", "bench", "examples")
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to call abort()/assert directly (the CHECK machinery itself).
ABORT_ALLOWLIST = {
    "src/common/macros.h",
    "src/common/numerics_guard.cc",
}

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
ABORT_RE = re.compile(r"(?<![\w.:])(?:std::)?abort\s*\(\s*\)")
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*<iostream>')
INCLUDE_GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)\s*$")


def find_files(root, dirs, extensions):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


def expected_guard(rel_path):
    """src/common/macros.h -> PILOTE_COMMON_MACROS_H_ ; tests/test_util.h ->
    PILOTE_TESTS_TEST_UTIL_H_ (the src/ prefix is dropped, others kept)."""
    parts = rel_path.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "PILOTE_" + stem.upper() + "_H_"


def strip_comments_and_strings(line, state):
    """Removes // and /* */ comments and string/char literals from a line so
    pattern checks don't fire inside them. `state` carries the in-block-comment
    flag across lines; returns (stripped_line, state)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if state["in_block_comment"]:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), state
            state["in_block_comment"] = False
            i = end + 2
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            state["in_block_comment"] = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), state


def check_header_guard(root, rel_path, errors):
    want = expected_guard(rel_path)
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        lines = f.read().splitlines()
    guard = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = INCLUDE_GUARD_IFNDEF_RE.match(line)
        if m:
            guard = m.group(1)
        break
    if guard is None:
        errors.append(f"{rel_path}:1: missing include guard (expected {want})")
    elif guard != want:
        errors.append(
            f"{rel_path}:1: include guard {guard} does not match convention "
            f"{want}")


def check_file_contents(root, rel_path, errors):
    is_header = rel_path.endswith(HEADER_EXTENSIONS)
    in_src = rel_path.split(os.sep)[0] == "src"
    state = {"in_block_comment": False}
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line, state = strip_comments_and_strings(raw.rstrip("\n"), state)
            if is_header and USING_NAMESPACE_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: `using namespace` in a header "
                    "leaks into every includer; use explicit qualification "
                    "or a namespace alias in a function body")
            if is_header and IOSTREAM_RE.match(line):
                errors.append(
                    f"{rel_path}:{lineno}: <iostream> in a header; include "
                    "it in the .cc or use logging.h")
            if in_src and rel_path not in ABORT_ALLOWLIST:
                if ASSERT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw assert(); use "
                        "PILOTE_CHECK / PILOTE_DCHECK so the failure is "
                        "attributed and active in release builds")
                if ABORT_RE.search(line):
                    errors.append(
                        f"{rel_path}:{lineno}: raw abort(); use "
                        "PILOTE_CHECK(false) << ... so the failure carries "
                        "file/line and a message")


def check_self_contained(root, headers, compiler, errors):
    """Each header must compile on its own: generate `#include "x.h"` TUs and
    run the compiler in syntax-only mode."""
    with tempfile.TemporaryDirectory() as tmp:
        for rel_path in headers:
            stub = os.path.join(tmp, re.sub(r"[^A-Za-z0-9]", "_", rel_path) + ".cc")
            with open(stub, "w", encoding="utf-8") as f:
                f.write(f'#include "{os.path.abspath(os.path.join(root, rel_path))}"\n')
            cmd = [
                compiler, "-std=c++20", "-fsyntax-only",
                "-I", os.path.join(root, "src"),
                "-I", root,
                stub,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "")
                errors.append(
                    f"{rel_path}:1: header is not self-contained: {first_error}")


# ---------------------------------------------------------------------------
# Concurrency analyzer stage
# ---------------------------------------------------------------------------

# The capability wrapper layer is the only file allowed to touch the raw
# standard-library synchronization types it wraps.
RAW_SYNC_ALLOWLIST = {
    os.path.join("src", "common", "thread_annotations.h"),
}

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable|condition_variable_any|"
    r"lock_guard|scoped_lock|unique_lock|shared_lock)\b")

GUARD_ANNOTATION_RE = re.compile(r"\bPILOTE_(?:PT_)?GUARDED_BY\s*\(")
# A member whose declared type is one of the capability wrappers (a lock the
# class owns, or a condvar which is internally synchronized by contract).
LOCK_MEMBER_RE = re.compile(
    r"\b(?:pilote::)?(?:Mutex|SharedMutex)\s+[A-Za-z_]\w*")
LOCK_TYPE_RE = re.compile(r"\b(?:pilote::)?(?:Mutex|SharedMutex|CondVar)\b")
UNGUARDED_MARKER_RE = re.compile(r"//\s*unguarded\s*:")
SELF_SYNC_MEMBER_RE = re.compile(
    r"\bstd::(?:atomic\b|atomic_flag\b|thread\b|jthread\b|once_flag\b)")
CONST_MEMBER_RE = re.compile(r"^(?:mutable\s+)?(?:static\s+)?const\b")
MEMBER_SKIP_RE = re.compile(
    r"^(?:static\b|constexpr\b|using\b|typedef\b|friend\b|enum\b|"
    r"template\b|struct\b|class\b|union\b|explicit\b|virtual\b|operator\b|"
    r"~|PILOTE_|[A-Z_]+\()")
CLASS_HEAD_RE = re.compile(r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
                           r"([A-Za-z_]\w*)(?:\s*final)?(?:\s*:[^;{]*)?$")
ENUM_HEAD_RE = re.compile(r"\benum\s+(class|struct)\b")

# Only member names that are unique to std::atomic in practice; `clear`
# and `wait` exist on containers/condvars and would drown in noise.
ATOMIC_OP_RE = re.compile(
    r"[.\->]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag)?\s*<[^;=]*?>\s+([A-Za-z_]\w*)"
                            r"|\bstd::atomic_flag\s+([A-Za-z_]\w*)")

RESULT_FN_DECL_RE = re.compile(
    r"\bResult<.+?>\s+(?:\*\s*)?(?:[A-Za-z_]\w*(?:<[^<>]*>)?::)*"
    r"([A-Za-z_]\w*)\s*\(")
# A declaration of the same name with a NON-Result return type makes the
# name ambiguous for a token-level lint (e.g. EdgeLearner::LearnNewClasses
# returns TrainReport while SessionManager::LearnNewClasses returns
# Result<TrainReport>); ambiguous names are excluded rather than guessed.
ANY_FN_DECL_RE = re.compile(
    r"\b([A-Za-z_][\w:]*(?:<[^<>]*>)?[&*]?)\s+"
    r"(?:[A-Za-z_]\w*(?:<[^<>]*>)?::)*([A-Za-z_]\w*)\s*\(")
NOT_A_RETURN_TYPE = {
    "return", "co_return", "co_yield", "co_await", "new", "delete", "throw",
    "else", "case", "goto", "using", "typedef", "sizeof", "if", "while",
    "for", "switch", "do", "not", "and", "or", "const", "constexpr",
    "static", "inline", "virtual", "explicit", "friend", "template",
}
BARE_CALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:<[^<>]*>)?\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\(")
STMT_KEYWORD_RE = re.compile(
    r"^\s*(?:return|co_return|co_await|co_yield|if|else|while|for|do|switch|"
    r"case|goto|new|delete|throw|sizeof|static_assert|using|typedef)\b")

# PILOTE_FAILPOINT(...) expands to a Status; a bare statement silently
# swallows the injected fault and defeats the whole chaos suite. The name
# argument is a string literal, which stripping reduces to empty quotes.
BARE_FAILPOINT_RE = re.compile(r'^\s*PILOTE_FAILPOINT\s*\(\s*(?:"")?\s*\)\s*;')


def stripped_lines_of(path):
    """The file's lines with comments and string/char literals removed, plus
    the raw lines (for `// unguarded:` marker detection, which lives in
    comments on purpose)."""
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    state = {"in_block_comment": False}
    stripped = []
    for line in raw:
        s, state = strip_comments_and_strings(line, state)
        # Preprocessor directives never contribute declarations and their
        # unterminated bodies (macro definitions) confuse the scanners.
        if s.lstrip().startswith("#") or s.rstrip().endswith("\\"):
            s = ""
        stripped.append(s)
    return stripped, raw


def check_raw_sync_types(root, rel_path, stripped, errors):
    if rel_path in RAW_SYNC_ALLOWLIST:
        return
    for lineno, line in enumerate(stripped, start=1):
        m = RAW_SYNC_RE.search(line)
        if m:
            errors.append(
                f"{rel_path}:{lineno}: raw std::{m.group(1)}; use the "
                "annotated Mutex/SharedMutex/CondVar/MutexLock wrappers from "
                "common/thread_annotations.h so Clang -Wthread-safety sees "
                "the capability")


def collect_classes(stripped):
    """Char-level scan producing, for each class/struct definition, its name
    and the member-declaration statements at class scope (function bodies and
    nested scopes are skipped). Each member is (first_line, last_line, text).
    """
    classes = []
    ctx = []          # open scopes: dicts with kind 'class'/'other'
    buf = []          # current statement text, accumulated across lines
    buf_line = None   # first line of the current statement
    pending = None    # (buf, buf_line) saved across a just-closed `}` so a
                      # brace-or-equals initialized member keeps its head
    for lineno, line in enumerate(stripped, start=1):
        for ch in line:
            if pending is not None and not ch.isspace():
                if ch in ";,":
                    buf, buf_line = pending  # `T m_{x};` — restore the head
                else:
                    buf, buf_line = [], None  # it was a function body
                pending = None
            if ch == "{":
                head = "".join(buf).strip()
                m = CLASS_HEAD_RE.search(head)
                if m and not ENUM_HEAD_RE.search(head):
                    ctx.append({"kind": "class", "name": m.group(2),
                                "members": []})
                else:
                    ctx.append({"kind": "other", "saved": buf,
                                "saved_line": buf_line})
                buf, buf_line = [], None
            elif ch == "}":
                top = ctx.pop() if ctx else None
                if top and top["kind"] == "class":
                    classes.append(top)
                    pending = None
                    buf, buf_line = [], None
                elif top:
                    pending = (top["saved"], top["saved_line"])
            elif ch == ";":
                if ctx and ctx[-1]["kind"] == "class":
                    text = "".join(buf).strip()
                    text = re.sub(
                        r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                        text).strip()
                    if text:
                        ctx[-1]["members"].append(
                            (buf_line or lineno, lineno, text))
                buf, buf_line = [], None
            else:
                if buf or not ch.isspace():
                    buf.append(ch)
                    if buf_line is None:
                        buf_line = lineno
        if buf:
            buf.append(" ")
    return classes


def statement_has_unguarded_marker(raw, first_line, last_line):
    """True if any source line of the statement, or a comment-only line
    immediately above it, carries `// unguarded: <reason>`."""
    for ln in range(first_line, min(last_line, len(raw)) + 1):
        if UNGUARDED_MARKER_RE.search(raw[ln - 1]):
            return True
    ln = first_line - 1
    while ln >= 1 and raw[ln - 1].strip().startswith("//"):
        if UNGUARDED_MARKER_RE.search(raw[ln - 1]):
            return True
        ln -= 1
    return False


def check_guarded_members(root, rel_path, stripped, raw, errors):
    if rel_path in RAW_SYNC_ALLOWLIST:
        return
    for cls in collect_classes(stripped):
        owns_lock = any(LOCK_MEMBER_RE.search(text)
                        for _, _, text in cls["members"])
        if not owns_lock:
            continue
        for first, last, text in cls["members"]:
            if MEMBER_SKIP_RE.match(text):
                continue
            if GUARD_ANNOTATION_RE.search(text):
                continue
            if LOCK_TYPE_RE.search(text):
                continue
            if SELF_SYNC_MEMBER_RE.search(text):
                continue
            if CONST_MEMBER_RE.match(text):
                continue
            if "(" in text:   # method / ctor declaration, not a data member
                continue
            if "=" not in text and "{" not in text and " " not in text:
                continue      # stray token, not a declaration
            if statement_has_unguarded_marker(raw, first, last):
                continue
            name_m = re.search(
                r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=[^=].*|\{.*\})?$",
                text)
            name = name_m.group(1) if name_m else text
            errors.append(
                f"{rel_path}:{first}: member '{name}' of lock-owning "
                f"{cls['name']} has no PILOTE_GUARDED_BY; annotate it, make "
                "it const/std::atomic, or mark it `// unguarded: <reason>`")


def find_matching_paren(text, open_pos):
    """Index of the `)` matching text[open_pos] == `(`, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def check_atomic_memory_order(root, rel_path, stripped, errors):
    text = "\n".join(stripped)
    line_of = []
    ln = 1
    for ch in text:
        line_of.append(ln)
        if ch == "\n":
            ln += 1
    # Names declared std::atomic in this file, for the operator check below.
    atomic_names = set()
    for m in ATOMIC_DECL_RE.finditer(text):
        atomic_names.add(m.group(1) or m.group(2))
    for m in ATOMIC_OP_RE.finditer(text):
        open_pos = text.index("(", m.end(1))
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        if "memory_order" in text[open_pos:close_pos]:
            continue
        lineno = line_of[m.start(1)]
        errors.append(
            f"{rel_path}:{lineno}: atomic {m.group(1)}() without an explicit "
            "std::memory_order; state the ordering (memory_order_relaxed for "
            "independent counters) so it is a reviewed decision, not an "
            "accidental seq_cst")
    # `++x` / `x += d` / `x = v` on atomics are implicit seq_cst operations.
    for name in atomic_names:
        for m in re.finditer(
                r"(?:\+\+|--)\s*" + re.escape(name) + r"\b|"
                r"\b" + re.escape(name) +
                r"\s*(?:\+\+|--|[+\-|&^]=|=(?![=]))", text):
            span = text[m.start():m.end()]
            if "=" in span and "std::atomic" in stripped[line_of[m.start()] - 1]:
                continue  # the declaration's initializer
            lineno = line_of[m.start()]
            errors.append(
                f"{rel_path}:{lineno}: operator on std::atomic '{name}' is "
                "an implicit seq_cst op; use load/store/fetch_* with an "
                "explicit std::memory_order")


def collect_result_function_names(root, files):
    names = set()
    non_result = set()
    for rel_path in files:
        stripped, _ = stripped_lines_of(os.path.join(root, rel_path))
        for line in stripped:
            for m in RESULT_FN_DECL_RE.finditer(line):
                names.add(m.group(1))
            for m in ANY_FN_DECL_RE.finditer(line):
                ret = m.group(1)
                if ret.startswith("Result<") or ret.endswith("Result") \
                        or ret in NOT_A_RETURN_TYPE:
                    continue
                non_result.add(m.group(2))
    names.discard("operator")
    return names - non_result


def check_discarded_results(root, rel_path, stripped, result_fns, errors):
    if not result_fns:
        return
    text = "\n".join(stripped)
    offset = 0
    offsets = []
    for line in stripped:
        offsets.append(offset)
        offset += len(line) + 1
    prev_sig = ""  # last non-empty stripped line seen before the current one
    for idx, line in enumerate(stripped):
        here = line.strip()
        if not here:
            continue
        m = BARE_CALL_RE.match(line)
        starts_statement = prev_sig == "" or prev_sig[-1] in ";{}:)"
        prev_sig = here
        if not m or not starts_statement:
            continue
        if m.group(1) not in result_fns or STMT_KEYWORD_RE.match(line):
            continue
        open_pos = text.index("(", offsets[idx] + m.end(1))
        close_pos = find_matching_paren(text, open_pos)
        if close_pos == -1:
            continue
        rest = text[close_pos + 1:close_pos + 64].lstrip()
        if not rest.startswith(";"):
            continue  # chained (.ok(), ->value()), assigned, or an operand
        errors.append(
            f"{rel_path}:{idx + 1}: result of Result-returning "
            f"'{m.group(1)}(...)' is discarded; check .ok() / use "
            "PILOTE_ASSIGN_OR_RETURN, or cast through a named status if the "
            "failure is truly ignorable")


def check_discarded_failpoints(root, rel_path, stripped, errors):
    for idx, line in enumerate(stripped):
        if BARE_FAILPOINT_RE.match(line):
            errors.append(
                f"{rel_path}:{idx + 1}: the Status of PILOTE_FAILPOINT(...) "
                "is discarded, so the injected fault would be swallowed; "
                "wrap it in PILOTE_RETURN_IF_ERROR or handle the Status")


def run_style_stage(root, args, headers, sources, errors):
    for h in headers:
        check_header_guard(root, h, errors)
    for f in sources:
        check_file_contents(root, f, errors)
    if not args.no_self_contained:
        check_self_contained(root, headers, args.compiler, errors)


def run_concurrency_stage(root, errors):
    src_files = find_files(root, ("src",), SOURCE_EXTENSIONS)
    all_files = find_files(root, HEADER_DIRS, SOURCE_EXTENSIONS)
    result_fns = collect_result_function_names(root, all_files)
    for rel_path in src_files:
        stripped, raw = stripped_lines_of(os.path.join(root, rel_path))
        check_raw_sync_types(root, rel_path, stripped, errors)
        check_guarded_members(root, rel_path, stripped, raw, errors)
        check_atomic_memory_order(root, rel_path, stripped, errors)
    for rel_path in all_files:
        stripped, _ = stripped_lines_of(os.path.join(root, rel_path))
        check_discarded_results(root, rel_path, stripped, result_fns, errors)
        check_discarded_failpoints(root, rel_path, stripped, errors)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--stage", choices=("style", "concurrency", "all"),
                        default="all", help="which invariant stage to run")
    parser.add_argument("--compiler", default="c++",
                        help="compiler used for the self-containedness check")
    parser.add_argument("--no-self-contained", action="store_true",
                        help="skip the (slower) header self-containedness check")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    headers = find_files(root, HEADER_DIRS, HEADER_EXTENSIONS)
    sources = find_files(root, SOURCE_DIRS, SOURCE_EXTENSIONS)

    errors = []
    if args.stage in ("style", "all"):
        run_style_stage(root, args, headers, sources, errors)
    if args.stage in ("concurrency", "all"):
        run_concurrency_stage(root, errors)

    if errors:
        for e in errors:
            print(e)
        print(f"pilote_lint[{args.stage}]: {len(errors)} violation(s)")
        return 1
    print(f"pilote_lint[{args.stage}]: OK "
          f"({len(headers)} headers, {len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
