#!/usr/bin/env python3
"""Compares a bench JSON result against its committed baseline.

Usage:
  python3 tools/check_bench_regression.py BASELINE.json CURRENT.json \
      [--tolerance=0.15] [--quality-tolerance=0.05]

Keys are classified by name:
  * counted quantities (substring "allocs" or "calls"): deterministic
    per-window accounting. The current value must not exceed
    baseline * (1 + tolerance); lower is always fine (an improvement —
    the message suggests refreshing the baseline).
  * accuracy quantities (substring "_acc"): model-quality measures in
    [0, 1] from the seeded scenario matrix. Gated from BELOW: the current
    value must not fall under baseline - quality_tolerance (an absolute
    delta — these are already normalized). Higher is always fine.
  * forgetting quantities (substring "forgetting"): lower is better;
    gated from ABOVE at baseline + quality_tolerance.
  * tail-latency quantities (substring "_p99" or "_p999"): windowed
    request-latency percentiles from the telemetry plane. Printed with a
    "tail" marker so CI logs surface latency drift, but machine-dependent
    and never failed on.
  * everything else (throughput, speedups): machine-dependent, printed
    for information only and never failed on.

Exits 1 when any counted or quality quantity regressed, 0 otherwise.
Keys present in only one file are reported (missing baseline keys fail: the baseline must
be refreshed deliberately, not silently skipped).
"""

import argparse
import json
import sys


def is_counted(key):
    return "allocs" in key or "calls" in key


def is_accuracy(key):
    return "_acc" in key


def is_forgetting(key):
    return "forgetting" in key


def is_tail_latency(key):
    return "_p99" in key or "_p999" in key


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench JSON against a committed baseline.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative growth for counted "
                             "quantities (default 0.15)")
    parser.add_argument("--quality-tolerance", type=float, default=0.05,
                        help="allowed absolute drop (rise) for accuracy "
                             "(forgetting) quantities (default 0.05)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.current, encoding="utf-8") as f:
        current = json.load(f)

    failures = []
    for key in sorted(set(baseline) | set(current)):
        if key not in current:
            failures.append(f"{key}: present in baseline but not produced "
                            "by the bench (stale baseline?)")
            continue
        if key not in baseline:
            failures.append(f"{key}: produced by the bench but missing "
                            f"from {args.baseline}; add it to the baseline")
            continue
        base, cur = float(baseline[key]), float(current[key])
        if is_accuracy(key):
            floor = base - args.quality_tolerance
            if cur < floor:
                failures.append(
                    f"{key}: {cur:g} below baseline {base:g} "
                    f"(floor {floor:g}, quality tolerance "
                    f"{args.quality_tolerance:g})")
            else:
                note = ""
                if cur > base + args.quality_tolerance:
                    note = "  <- improved; consider refreshing the baseline"
                print(f"  ok    {key}: {cur:g} (baseline {base:g}){note}")
            continue
        if is_forgetting(key):
            ceiling = base + args.quality_tolerance
            if cur > ceiling:
                failures.append(
                    f"{key}: {cur:g} above baseline {base:g} "
                    f"(ceiling {ceiling:g}, quality tolerance "
                    f"{args.quality_tolerance:g})")
            else:
                note = ""
                if cur < base - args.quality_tolerance:
                    note = "  <- improved; consider refreshing the baseline"
                print(f"  ok    {key}: {cur:g} (baseline {base:g}){note}")
            continue
        if not is_counted(key):
            marker = "tail" if is_tail_latency(key) else "info"
            print(f"  {marker}  {key}: baseline {base:g}, current {cur:g} "
                  "(machine-dependent, not gated)")
            continue
        limit = base * (1.0 + args.tolerance)
        if cur > limit:
            failures.append(
                f"{key}: {cur:g} exceeds baseline {base:g} "
                f"(+{(cur / base - 1.0) * 100.0:.1f}%, limit "
                f"+{args.tolerance * 100.0:.0f}%)")
        else:
            note = ""
            if base > 0 and cur < base * (1.0 - args.tolerance):
                note = "  <- improved; consider refreshing the baseline"
            print(f"  ok    {key}: {cur:g} (baseline {base:g}){note}")

    if failures:
        print(f"check_bench_regression: {len(failures)} regression(s) "
              f"vs {args.baseline}:")
        for failure in failures:
            print(f"  FAIL  {failure}")
        return 1
    print(f"check_bench_regression: OK ({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
