#!/usr/bin/env python3
"""Self-test for pilote_lint.py.

Feeds known-bad C++ snippets through every analyzer check and asserts the
check fires (and that the matching clean snippet passes). This is the
lint's own regression gate: a refactor of the scanners that silently stops
detecting a violation class fails here, not in review.

Runs under plain unittest (no third-party test deps):

  python3 tools/pilote_lint_test.py
"""

import os
import subprocess
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pilote_lint  # noqa: E402  (path bootstrap above)


def analyze(source, check, rel_path=os.path.join("src", "serve", "x.h")):
    """Writes `source` to a temp file, runs one check function over it, and
    returns the collected error strings."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "x.h")
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(source))
        stripped, raw = pilote_lint.stripped_lines_of(path)
        if check is pilote_lint.check_guarded_members:
            check(tmp, rel_path, stripped, raw, errors)
        else:
            check(tmp, rel_path, stripped, errors)
    return errors


class RawSyncTypesTest(unittest.TestCase):
    def test_raw_mutex_rejected(self):
        errors = analyze("std::mutex m_;", pilote_lint.check_raw_sync_types)
        self.assertEqual(len(errors), 1)
        self.assertIn("raw std::mutex", errors[0])

    def test_raw_shared_mutex_and_lock_guard_rejected(self):
        src = """
            std::shared_mutex rw_;
            std::lock_guard<std::mutex> lock(m_);
        """
        errors = analyze(src, pilote_lint.check_raw_sync_types)
        self.assertEqual(len(errors), 2)

    def test_wrapper_types_pass(self):
        src = """
            mutable Mutex mutex_;
            CondVar cv_;
            MutexLock lock(mutex_);
        """
        self.assertEqual(analyze(src, pilote_lint.check_raw_sync_types), [])

    def test_mention_in_comment_passes(self):
        src = "// std::mutex is banned here\nMutex mutex_;\n"
        self.assertEqual(analyze(src, pilote_lint.check_raw_sync_types), [])

    def test_thread_annotations_header_is_exempt(self):
        errors = analyze(
            "std::mutex m_;", pilote_lint.check_raw_sync_types,
            rel_path=os.path.join("src", "common", "thread_annotations.h"))
        self.assertEqual(errors, [])


class GuardedMembersTest(unittest.TestCase):
    def test_unguarded_member_in_lock_owning_class_fires(self):
        src = """
            class Engine {
             public:
              void Tick();
             private:
              Mutex mutex_;
              int ticks_;
            };
        """
        errors = analyze(src, pilote_lint.check_guarded_members)
        self.assertEqual(len(errors), 1)
        self.assertIn("'ticks_'", errors[0])
        self.assertIn("Engine", errors[0])

    def test_annotated_and_exempt_members_pass(self):
        src = """
            class Engine {
             private:
              mutable Mutex mutex_;
              CondVar cv_;
              int ticks_ PILOTE_GUARDED_BY(mutex_) = 0;
              std::vector<int> log_ PILOTE_GUARDED_BY(mutex_);
              std::unique_ptr<int> p_ PILOTE_PT_GUARDED_BY(mutex_);
              std::atomic<int> fast_{0};
              std::thread worker_;
              const int capacity_;
              Queue q_;  // unguarded: internally synchronized
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_marker_on_preceding_comment_line_passes(self):
        src = """
            struct S {
              SharedMutex mu;
              // unguarded: written once before the object is shared
              int seed;
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_pointer_const_member_passes(self):
        src = """
            class Watchdog {
              Mutex mutex_;
              Engine* const engine_;
              int depth_ PILOTE_GUARDED_BY(mutex_);
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_mutable_pointer_member_still_fires(self):
        src = """
            class Watchdog {
              Mutex mutex_;
              Engine* engine_;
            };
        """
        errors = analyze(src, pilote_lint.check_guarded_members)
        self.assertEqual(len(errors), 1)
        self.assertIn("engine_", errors[0])

    def test_class_without_lock_is_not_checked(self):
        src = """
            class Plain {
              int a_;
              std::string b_;
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_methods_and_nested_scopes_are_skipped(self):
        src = """
            class Engine {
             public:
              Engine() : n_(0) { int local; local = 1; }
              int n() const { return n_; }
              enum class Mode { kA, kB };
             private:
              Mutex mutex_;
              int n_ PILOTE_GUARDED_BY(mutex_);
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])


class AtomicMemoryOrderTest(unittest.TestCase):
    def test_implicit_order_fires(self):
        src = """
            std::atomic<int> hits_{0};
            void F() { hits_.fetch_add(1); }
        """
        errors = analyze(src, pilote_lint.check_atomic_memory_order)
        self.assertEqual(len(errors), 1)
        self.assertIn("fetch_add", errors[0])

    def test_explicit_order_passes(self):
        src = """
            std::atomic<int> hits_{0};
            void F() { hits_.fetch_add(1, std::memory_order_relaxed); }
            int G() { return hits_.load(std::memory_order_acquire); }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])

    def test_multiline_call_with_order_passes(self):
        src = """
            std::atomic<double> sum_{0.0};
            void F(double v) {
              double s = sum_.load(std::memory_order_relaxed);
              while (!sum_.compare_exchange_weak(s, s + v,
                                                 std::memory_order_relaxed)) {
              }
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])

    def test_operator_on_atomic_fires(self):
        src = """
            std::atomic<int> count_{0};
            void F() { ++count_; }
            void G() { count_ += 2; }
        """
        errors = analyze(src, pilote_lint.check_atomic_memory_order)
        self.assertEqual(len(errors), 2)
        self.assertIn("implicit seq_cst", errors[0])

    def test_container_clear_and_condvar_wait_pass(self):
        src = """
            void F() {
              buffer_.clear();
              cv_.wait(lock);
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])


class DiscardedResultTest(unittest.TestCase):
    DECLS = 'Result<int> Make(int x);\nResult<int> Helper::Get() const;\n'

    def run_check(self, call_site):
        errors = []
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            with open(os.path.join(tmp, "src", "api.h"), "w",
                      encoding="utf-8") as f:
                f.write(self.DECLS)
            with open(os.path.join(tmp, "src", "use.cc"), "w",
                      encoding="utf-8") as f:
                f.write(textwrap.dedent(call_site))
            files = [os.path.join("src", "api.h"),
                     os.path.join("src", "use.cc")]
            fns = pilote_lint.collect_result_function_names(tmp, files)
            stripped, _ = pilote_lint.stripped_lines_of(
                os.path.join(tmp, "src", "use.cc"))
            pilote_lint.check_discarded_results(
                tmp, os.path.join("src", "use.cc"), stripped, fns, errors)
        return errors

    def test_bare_call_fires(self):
        errors = self.run_check("void F() {\n  Make(1);\n}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'Make(...)'", errors[0])

    def test_bare_member_call_fires(self):
        errors = self.run_check("void F(Helper& h) {\n  h.Get();\n}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'Get(...)'", errors[0])

    def test_consumed_calls_pass(self):
        src = """
            void F(Helper& h) {
              auto r = Make(1);
              if (!Make(2).ok()) return;
              return Make(3);
            }
        """
        self.assertEqual(self.run_check(src), [])

    def test_argument_position_passes(self):
        src = """
            void F() {
              Consume(Make(1),
                      Make(2));
            }
        """
        self.assertEqual(self.run_check(src), [])

    def test_bare_failpoint_statement_fires(self):
        src = """
            Status Save() {
              PILOTE_FAILPOINT("core/artifact/save");
              return Status::Ok();
            }
        """
        errors = analyze(src, pilote_lint.check_discarded_failpoints)
        self.assertEqual(len(errors), 1)
        self.assertIn("swallowed", errors[0])

    def test_handled_failpoint_passes(self):
        src = """
            Status Save() {
              PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/artifact/save"));
              Status torn = PILOTE_FAILPOINT("serialize/atomic/torn");
              if (!torn.ok()) return torn;
              return PILOTE_FAILPOINT("core/artifact/load");
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_discarded_failpoints), [])

    def test_ambiguous_overload_is_not_flagged(self):
        errors = []
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            with open(os.path.join(tmp, "src", "api.h"), "w",
                      encoding="utf-8") as f:
                f.write("Result<int> Make(int x);\nvoid Make(double y);\n")
            with open(os.path.join(tmp, "src", "use.cc"), "w",
                      encoding="utf-8") as f:
                f.write("void F() {\n  Make(1.0);\n}\n")
            files = [os.path.join("src", "api.h"),
                     os.path.join("src", "use.cc")]
            fns = pilote_lint.collect_result_function_names(tmp, files)
            stripped, _ = pilote_lint.stripped_lines_of(
                os.path.join(tmp, "src", "use.cc"))
            pilote_lint.check_discarded_results(
                tmp, os.path.join("src", "use.cc"), stripped, fns, errors)
        self.assertEqual(errors, [])


def hotpath_errors(files):
    """Writes a src/ tree and runs the hotpath stage over it."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel, content in files.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(textwrap.dedent(content))
        pilote_lint.run_hotpath_stage(tmp, errors)
    return errors


def hot(body):
    """A marked hot root whose body is `body`."""
    return ("PILOTE_HOT_PATH void Serve();\n"
            "void Serve() {\n" + textwrap.dedent(body) + "}\n")


class HotpathChecksTest(unittest.TestCase):
    """Every hotpath check must fire on a known-bad body and stay silent
    once the line carries `// hotpath-ok: <reason>`."""

    CASES = [
        ("heap-new", "  int* p = new int(3);\n  Use(p);\n"),
        ("heap-new", "  auto p = std::make_unique<int>(3);\n"),
        ("container-growth", "  sink_.push_back(1);\n"),
        ("container-growth", "  sink_.resize(8);\n"),
        ("local-alloc", "  std::vector<int> tmp;\n"),
        ("local-alloc", "  Tensor t(shape_);\n"),
        ("string-build", "  Use(std::to_string(42));\n"),
        ("writer-lock", "  MutexLock lock(mutex_);\n"),
        ("throw", "  throw 42;\n"),
        ("blocking-io",
         "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"),
    ]

    def test_each_check_fires(self):
        for check_id, body in self.CASES:
            with self.subTest(check=check_id, body=body):
                errors = hotpath_errors(
                    {os.path.join("src", "a.cc"): hot(body)})
                self.assertEqual(len(errors), 1, errors)
                self.assertIn(f"[hotpath:{check_id}]", errors[0])
                self.assertIn("'Serve'", errors[0])

    def test_line_marker_suppresses(self):
        for check_id, body in self.CASES:
            with self.subTest(check=check_id):
                marked = "".join(
                    line + "  // hotpath-ok: test\n"
                    for line in body.rstrip("\n").split("\n"))
                errors = hotpath_errors(
                    {os.path.join("src", "a.cc"): hot(marked)})
                self.assertEqual(errors, [], errors)

    def test_comment_line_above_suppresses(self):
        body = "  // hotpath-ok: the per-call output\n  Tensor t(shape_);\n"
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): hot(body)}), [])

    def test_check_statements_are_exempt(self):
        body = ("  PILOTE_CHECK_EQ(a.rank(), 2)\n"
                "      << std::to_string(a.rank());\n"
                "  PILOTE_DCHECK(ok_);\n")
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): hot(body)}), [])

    def test_no_roots_no_errors(self):
        src = "void F() { int* p = new int(3); Use(p); }\n"
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): src}), [])


class HotpathClosureTest(unittest.TestCase):
    def test_violation_in_transitive_callee_fires_with_chain(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { Step(); }\n"
                "void Step() { Leaf(); }\n"),
            os.path.join("src", "b.cc"): (
                "void Leaf() {\n"
                "  std::vector<int> tmp;\n"
                "}\n"),
        }
        errors = hotpath_errors(files)
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("[hotpath:local-alloc]", errors[0])
        self.assertIn("hot via Leaf <- Step <- Serve", errors[0])

    def test_head_marker_prunes_subtree(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { Step(); }\n"
                "// hotpath-ok: cold by construction\n"
                "void Step() { Leaf(); }\n"
                "void Leaf() { int* p = new int(3); Use(p); }\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_head_marker_exempts_own_body(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "// hotpath-ok: setup, called once\n"
                "void Serve() { int* p = new int(3); Use(p); }\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_name_keyed_roots_catch_same_named_definitions(self):
        # Root discovery is name-keyed: marking exec::Executor::Run hot
        # makes every function whose bare name is `Run` a root, including
        # an unrelated cold driver in another file.
        files = {
            os.path.join("src", "exec", "executor.cc"): (
                "PILOTE_HOT_PATH void Run();\n"
                "void Run() { Replay(); }\n"
                "void Replay() { Use(arena_); }\n"),
            os.path.join("src", "core", "cloud.cc"): (
                "void Run() {\n"
                "  std::vector<int> epochs;\n"
                "}\n"),
        }
        errors = hotpath_errors(files)
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("[hotpath:local-alloc]", errors[0])
        self.assertIn("'Run'", errors[0])

    def test_head_marker_releases_name_collided_cold_function(self):
        # The escape for the collision above: a head-level hotpath-ok on
        # the cold same-named definition prunes it (and its callees) while
        # the genuinely hot definition stays checked.
        files = {
            os.path.join("src", "exec", "executor.cc"): (
                "PILOTE_HOT_PATH void Run();\n"
                "void Run() { Replay(); }\n"
                "void Replay() { Use(arena_); }\n"),
            os.path.join("src", "core", "cloud.cc"): (
                "// hotpath-ok: cold pre-training driver, shares the bare\n"
                "// name Run with the hot executor entry point\n"
                "void Run() {\n"
                "  std::vector<int> epochs;\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_accessor_names_do_not_propagate(self):
        # `size` is an accessor name: a same-named free function with a
        # violation must not be dragged into the closure.
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { int n = q.size(); Use(n); }\n"),
            os.path.join("src", "b.cc"): (
                "int size() {\n"
                "  std::vector<int> tmp;\n"
                "  return 0;\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_calls_inside_check_statements_do_not_propagate(self):
        # ToString is only reached from a fatal CHECK message; it must not
        # join the hot closure.
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() {\n"
                "  PILOTE_CHECK_EQ(a, b) << Describe(a);\n"
                "}\n"
                "std::string Describe(int a) {\n"
                "  std::ostringstream os;\n"
                "  return os.str();\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])


def metric_errors(source, rel_path=os.path.join("src", "serve", "x.cc")):
    """check_metric_names reads the file itself (it needs raw string
    literals, which the shared stripper empties), so this helper lays the
    snippet out under a temp root at its rel_path."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(source))
        pilote_lint.check_metric_names(tmp, rel_path, errors)
    return errors


class MetricNamesTest(unittest.TestCase):
    def test_conforming_names_pass(self):
        src = """
            PILOTE_METRIC_COUNT("serve/batches", 1);
            PILOTE_METRIC_HISTOGRAM("serve/request_ms", ms);
            PILOTE_METRIC_GAUGE_SET("serve/queue_depth", depth);
            registry.GetCounter("tensor/gemm_calls");
            registry.GetCounterFamily("serve/stalls_total", "reason", {"x"});
            registry.GetHistogramFamily("serve/stage_ms", "stage", {"a"});
        """
        self.assertEqual(metric_errors(src), [])

    def test_missing_subsystem_fires(self):
        errors = metric_errors('PILOTE_METRIC_COUNT("batches", 1);\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("subsystem/name", errors[0])

    def test_uppercase_and_bad_chars_fire(self):
        errors = metric_errors(
            'registry.GetGauge("Serve/QueueDepth");\n'
            'registry.GetCounter("serve/hit-rate");\n')
        self.assertEqual(len(errors), 2)

    def test_duration_suffix_on_counter_fires(self):
        errors = metric_errors('PILOTE_METRIC_COUNT("serve/wait_ms", 1);\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("histogram", errors[0])

    def test_duration_suffix_on_histogram_passes(self):
        self.assertEqual(
            metric_errors('PILOTE_METRIC_HISTOGRAM("serve/wait_ms", v);\n'),
            [])

    def test_total_suffix_on_non_counter_fires(self):
        errors = metric_errors(
            'registry.GetGaugeFamily("serve/depth_total", "k", {"v"});\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("_total", errors[0])

    def test_name_in_comment_is_ignored(self):
        src = """
            // Example: PILOTE_METRIC_COUNT("BadName", 1);
            /* registry.GetCounter("also_bad"); */
            PILOTE_METRIC_COUNT("serve/good_total", 1);
        """
        self.assertEqual(metric_errors(src), [])

    def test_name_on_continuation_line_is_found(self):
        src = (
            'stalls_(obs::FamilyRegistry::Global().GetCounterFamily(\n'
            '    "serve/Bad", "reason", {"a"}))\n')
        errors = metric_errors(src)
        self.assertEqual(len(errors), 1)
        self.assertIn("serve/Bad", errors[0])
        self.assertIn(":2:", errors[0])

    def test_non_literal_name_is_ignored(self):
        # The macro definition itself passes `name` through; no literal,
        # nothing to check.
        self.assertEqual(
            metric_errors("Global().GetCounter(name).Add(delta);\n"), [])


class StageWiringTest(unittest.TestCase):
    """End-to-end: the CLI catches a violation and passes a clean tree."""

    def run_cli(self, files, stage):
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(textwrap.dedent(content))
            proc = subprocess.run(
                [sys.executable,
                 os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "pilote_lint.py"),
                 "--root", tmp, "--stage", stage, "--no-self-contained"],
                capture_output=True, text=True)
        return proc

    def test_concurrency_stage_fails_on_raw_mutex(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"): "std::mutex m_;\n"},
            "concurrency")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("raw std::mutex", proc.stdout)

    def test_concurrency_stage_passes_clean_tree(self):
        clean = """
            #ifndef PILOTE_OK_H_
            #define PILOTE_OK_H_
            class C {
              mutable Mutex mutex_;
              int n_ PILOTE_GUARDED_BY(mutex_) = 0;
            };
            #endif  // PILOTE_OK_H_
        """
        proc = self.run_cli({os.path.join("src", "ok.h"): clean},
                            "concurrency")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_style_stage_still_catches_bad_guard(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.h"):
             "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"},
            "style")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("include guard", proc.stdout)

    def test_hotpath_stage_fails_on_hot_allocation(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"):
             "PILOTE_HOT_PATH void Serve();\n"
             "void Serve() { int* p = new int(3); Use(p); }\n"},
            "hotpath")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[hotpath:heap-new]", proc.stdout)

    def test_style_stage_catches_bad_metric_name(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"):
             'PILOTE_METRIC_COUNT("noslash", 1);\n'},
            "style")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("subsystem/name", proc.stdout)

    def test_hotpath_stage_passes_marked_tree(self):
        proc = self.run_cli(
            {os.path.join("src", "ok.cc"):
             "PILOTE_HOT_PATH void Serve();\n"
             "void Serve() {\n"
             "  int* p = new int(3);  // hotpath-ok: test\n"
             "  Use(p);\n"
             "}\n"},
            "hotpath")
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
