#!/usr/bin/env python3
"""Self-test for pilote_lint.py.

Feeds known-bad C++ snippets through every analyzer check and asserts the
check fires (and that the matching clean snippet passes). This is the
lint's own regression gate: a refactor of the scanners that silently stops
detecting a violation class fails here, not in review.

Runs under plain unittest (no third-party test deps):

  python3 tools/pilote_lint_test.py
"""

import os
import subprocess
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pilote_lint  # noqa: E402  (path bootstrap above)


def analyze(source, check, rel_path=os.path.join("src", "serve", "x.h")):
    """Writes `source` to a temp file, runs one check function over it, and
    returns the collected error strings."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "x.h")
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(source))
        stripped, raw = pilote_lint.stripped_lines_of(path)
        if check is pilote_lint.check_guarded_members:
            check(tmp, rel_path, stripped, raw, errors)
        else:
            check(tmp, rel_path, stripped, errors)
    return errors


class RawSyncTypesTest(unittest.TestCase):
    def test_raw_mutex_rejected(self):
        errors = analyze("std::mutex m_;", pilote_lint.check_raw_sync_types)
        self.assertEqual(len(errors), 1)
        self.assertIn("raw std::mutex", errors[0])

    def test_raw_shared_mutex_and_lock_guard_rejected(self):
        src = """
            std::shared_mutex rw_;
            std::lock_guard<std::mutex> lock(m_);
        """
        errors = analyze(src, pilote_lint.check_raw_sync_types)
        self.assertEqual(len(errors), 2)

    def test_wrapper_types_pass(self):
        src = """
            mutable Mutex mutex_;
            CondVar cv_;
            MutexLock lock(mutex_);
        """
        self.assertEqual(analyze(src, pilote_lint.check_raw_sync_types), [])

    def test_mention_in_comment_passes(self):
        src = "// std::mutex is banned here\nMutex mutex_;\n"
        self.assertEqual(analyze(src, pilote_lint.check_raw_sync_types), [])

    def test_thread_annotations_header_is_exempt(self):
        errors = analyze(
            "std::mutex m_;", pilote_lint.check_raw_sync_types,
            rel_path=os.path.join("src", "common", "thread_annotations.h"))
        self.assertEqual(errors, [])


class GuardedMembersTest(unittest.TestCase):
    def test_unguarded_member_in_lock_owning_class_fires(self):
        src = """
            class Engine {
             public:
              void Tick();
             private:
              Mutex mutex_;
              int ticks_;
            };
        """
        errors = analyze(src, pilote_lint.check_guarded_members)
        self.assertEqual(len(errors), 1)
        self.assertIn("'ticks_'", errors[0])
        self.assertIn("Engine", errors[0])

    def test_annotated_and_exempt_members_pass(self):
        src = """
            class Engine {
             private:
              mutable Mutex mutex_;
              CondVar cv_;
              int ticks_ PILOTE_GUARDED_BY(mutex_) = 0;
              std::vector<int> log_ PILOTE_GUARDED_BY(mutex_);
              std::unique_ptr<int> p_ PILOTE_PT_GUARDED_BY(mutex_);
              std::atomic<int> fast_{0};
              std::thread worker_;
              const int capacity_;
              Queue q_;  // unguarded: internally synchronized
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_marker_on_preceding_comment_line_passes(self):
        src = """
            struct S {
              SharedMutex mu;
              // unguarded: written once before the object is shared
              int seed;
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_pointer_const_member_passes(self):
        src = """
            class Watchdog {
              Mutex mutex_;
              Engine* const engine_;
              int depth_ PILOTE_GUARDED_BY(mutex_);
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_mutable_pointer_member_still_fires(self):
        src = """
            class Watchdog {
              Mutex mutex_;
              Engine* engine_;
            };
        """
        errors = analyze(src, pilote_lint.check_guarded_members)
        self.assertEqual(len(errors), 1)
        self.assertIn("engine_", errors[0])

    def test_class_without_lock_is_not_checked(self):
        src = """
            class Plain {
              int a_;
              std::string b_;
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])

    def test_methods_and_nested_scopes_are_skipped(self):
        src = """
            class Engine {
             public:
              Engine() : n_(0) { int local; local = 1; }
              int n() const { return n_; }
              enum class Mode { kA, kB };
             private:
              Mutex mutex_;
              int n_ PILOTE_GUARDED_BY(mutex_);
            };
        """
        self.assertEqual(analyze(src, pilote_lint.check_guarded_members), [])


class AtomicMemoryOrderTest(unittest.TestCase):
    def test_implicit_order_fires(self):
        src = """
            std::atomic<int> hits_{0};
            void F() { hits_.fetch_add(1); }
        """
        errors = analyze(src, pilote_lint.check_atomic_memory_order)
        self.assertEqual(len(errors), 1)
        self.assertIn("fetch_add", errors[0])

    def test_explicit_order_passes(self):
        src = """
            std::atomic<int> hits_{0};
            void F() { hits_.fetch_add(1, std::memory_order_relaxed); }
            int G() { return hits_.load(std::memory_order_acquire); }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])

    def test_multiline_call_with_order_passes(self):
        src = """
            std::atomic<double> sum_{0.0};
            void F(double v) {
              double s = sum_.load(std::memory_order_relaxed);
              while (!sum_.compare_exchange_weak(s, s + v,
                                                 std::memory_order_relaxed)) {
              }
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])

    def test_operator_on_atomic_fires(self):
        src = """
            std::atomic<int> count_{0};
            void F() { ++count_; }
            void G() { count_ += 2; }
        """
        errors = analyze(src, pilote_lint.check_atomic_memory_order)
        self.assertEqual(len(errors), 2)
        self.assertIn("implicit seq_cst", errors[0])

    def test_container_clear_and_condvar_wait_pass(self):
        src = """
            void F() {
              buffer_.clear();
              cv_.wait(lock);
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_atomic_memory_order), [])


class DiscardedResultTest(unittest.TestCase):
    DECLS = 'Result<int> Make(int x);\nResult<int> Helper::Get() const;\n'

    def run_check(self, call_site):
        errors = []
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            with open(os.path.join(tmp, "src", "api.h"), "w",
                      encoding="utf-8") as f:
                f.write(self.DECLS)
            with open(os.path.join(tmp, "src", "use.cc"), "w",
                      encoding="utf-8") as f:
                f.write(textwrap.dedent(call_site))
            files = [os.path.join("src", "api.h"),
                     os.path.join("src", "use.cc")]
            fns = pilote_lint.collect_result_function_names(tmp, files)
            stripped, _ = pilote_lint.stripped_lines_of(
                os.path.join(tmp, "src", "use.cc"))
            pilote_lint.check_discarded_results(
                tmp, os.path.join("src", "use.cc"), stripped, fns, errors)
        return errors

    def test_bare_call_fires(self):
        errors = self.run_check("void F() {\n  Make(1);\n}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'Make(...)'", errors[0])

    def test_bare_member_call_fires(self):
        errors = self.run_check("void F(Helper& h) {\n  h.Get();\n}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'Get(...)'", errors[0])

    def test_consumed_calls_pass(self):
        src = """
            void F(Helper& h) {
              auto r = Make(1);
              if (!Make(2).ok()) return;
              return Make(3);
            }
        """
        self.assertEqual(self.run_check(src), [])

    def test_argument_position_passes(self):
        src = """
            void F() {
              Consume(Make(1),
                      Make(2));
            }
        """
        self.assertEqual(self.run_check(src), [])

    def test_bare_failpoint_statement_fires(self):
        src = """
            Status Save() {
              PILOTE_FAILPOINT("core/artifact/save");
              return Status::Ok();
            }
        """
        errors = analyze(src, pilote_lint.check_discarded_failpoints)
        self.assertEqual(len(errors), 1)
        self.assertIn("swallowed", errors[0])

    def test_handled_failpoint_passes(self):
        src = """
            Status Save() {
              PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/artifact/save"));
              Status torn = PILOTE_FAILPOINT("serialize/atomic/torn");
              if (!torn.ok()) return torn;
              return PILOTE_FAILPOINT("core/artifact/load");
            }
        """
        self.assertEqual(
            analyze(src, pilote_lint.check_discarded_failpoints), [])

    def test_ambiguous_overload_is_not_flagged(self):
        errors = []
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            with open(os.path.join(tmp, "src", "api.h"), "w",
                      encoding="utf-8") as f:
                f.write("Result<int> Make(int x);\nvoid Make(double y);\n")
            with open(os.path.join(tmp, "src", "use.cc"), "w",
                      encoding="utf-8") as f:
                f.write("void F() {\n  Make(1.0);\n}\n")
            files = [os.path.join("src", "api.h"),
                     os.path.join("src", "use.cc")]
            fns = pilote_lint.collect_result_function_names(tmp, files)
            stripped, _ = pilote_lint.stripped_lines_of(
                os.path.join(tmp, "src", "use.cc"))
            pilote_lint.check_discarded_results(
                tmp, os.path.join("src", "use.cc"), stripped, fns, errors)
        self.assertEqual(errors, [])


def hotpath_errors(files):
    """Writes a src/ tree and runs the hotpath stage over it."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel, content in files.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(textwrap.dedent(content))
        pilote_lint.run_hotpath_stage(tmp, errors)
    return errors


def hot(body):
    """A marked hot root whose body is `body`."""
    return ("PILOTE_HOT_PATH void Serve();\n"
            "void Serve() {\n" + textwrap.dedent(body) + "}\n")


class HotpathChecksTest(unittest.TestCase):
    """Every hotpath check must fire on a known-bad body and stay silent
    once the line carries `// hotpath-ok: <reason>`."""

    CASES = [
        ("heap-new", "  int* p = new int(3);\n  Use(p);\n"),
        ("heap-new", "  auto p = std::make_unique<int>(3);\n"),
        ("container-growth", "  sink_.push_back(1);\n"),
        ("container-growth", "  sink_.resize(8);\n"),
        ("local-alloc", "  std::vector<int> tmp;\n"),
        ("local-alloc", "  Tensor t(shape_);\n"),
        ("string-build", "  Use(std::to_string(42));\n"),
        ("writer-lock", "  MutexLock lock(mutex_);\n"),
        ("throw", "  throw 42;\n"),
        ("blocking-io",
         "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"),
    ]

    def test_each_check_fires(self):
        for check_id, body in self.CASES:
            with self.subTest(check=check_id, body=body):
                errors = hotpath_errors(
                    {os.path.join("src", "a.cc"): hot(body)})
                self.assertEqual(len(errors), 1, errors)
                self.assertIn(f"[hotpath:{check_id}]", errors[0])
                self.assertIn("'Serve'", errors[0])

    def test_line_marker_suppresses(self):
        for check_id, body in self.CASES:
            with self.subTest(check=check_id):
                marked = "".join(
                    line + "  // hotpath-ok: test\n"
                    for line in body.rstrip("\n").split("\n"))
                errors = hotpath_errors(
                    {os.path.join("src", "a.cc"): hot(marked)})
                self.assertEqual(errors, [], errors)

    def test_comment_line_above_suppresses(self):
        body = "  // hotpath-ok: the per-call output\n  Tensor t(shape_);\n"
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): hot(body)}), [])

    def test_check_statements_are_exempt(self):
        body = ("  PILOTE_CHECK_EQ(a.rank(), 2)\n"
                "      << std::to_string(a.rank());\n"
                "  PILOTE_DCHECK(ok_);\n")
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): hot(body)}), [])

    def test_no_roots_no_errors(self):
        src = "void F() { int* p = new int(3); Use(p); }\n"
        self.assertEqual(
            hotpath_errors({os.path.join("src", "a.cc"): src}), [])


class HotpathClosureTest(unittest.TestCase):
    def test_violation_in_transitive_callee_fires_with_chain(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { Step(); }\n"
                "void Step() { Leaf(); }\n"),
            os.path.join("src", "b.cc"): (
                "void Leaf() {\n"
                "  std::vector<int> tmp;\n"
                "}\n"),
        }
        errors = hotpath_errors(files)
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("[hotpath:local-alloc]", errors[0])
        self.assertIn("hot via Leaf <- Step <- Serve", errors[0])

    def test_head_marker_prunes_subtree(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { Step(); }\n"
                "// hotpath-ok: cold by construction\n"
                "void Step() { Leaf(); }\n"
                "void Leaf() { int* p = new int(3); Use(p); }\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_head_marker_exempts_own_body(self):
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "// hotpath-ok: setup, called once\n"
                "void Serve() { int* p = new int(3); Use(p); }\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_name_keyed_roots_catch_same_named_definitions(self):
        # Root discovery is name-keyed: marking exec::Executor::Run hot
        # makes every function whose bare name is `Run` a root, including
        # an unrelated cold driver in another file.
        files = {
            os.path.join("src", "exec", "executor.cc"): (
                "PILOTE_HOT_PATH void Run();\n"
                "void Run() { Replay(); }\n"
                "void Replay() { Use(arena_); }\n"),
            os.path.join("src", "core", "cloud.cc"): (
                "void Run() {\n"
                "  std::vector<int> epochs;\n"
                "}\n"),
        }
        errors = hotpath_errors(files)
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("[hotpath:local-alloc]", errors[0])
        self.assertIn("'Run'", errors[0])

    def test_head_marker_releases_name_collided_cold_function(self):
        # The escape for the collision above: a head-level hotpath-ok on
        # the cold same-named definition prunes it (and its callees) while
        # the genuinely hot definition stays checked.
        files = {
            os.path.join("src", "exec", "executor.cc"): (
                "PILOTE_HOT_PATH void Run();\n"
                "void Run() { Replay(); }\n"
                "void Replay() { Use(arena_); }\n"),
            os.path.join("src", "core", "cloud.cc"): (
                "// hotpath-ok: cold pre-training driver, shares the bare\n"
                "// name Run with the hot executor entry point\n"
                "void Run() {\n"
                "  std::vector<int> epochs;\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_accessor_names_do_not_propagate(self):
        # `size` is an accessor name: a same-named free function with a
        # violation must not be dragged into the closure.
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() { int n = q.size(); Use(n); }\n"),
            os.path.join("src", "b.cc"): (
                "int size() {\n"
                "  std::vector<int> tmp;\n"
                "  return 0;\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])

    def test_calls_inside_check_statements_do_not_propagate(self):
        # ToString is only reached from a fatal CHECK message; it must not
        # join the hot closure.
        files = {
            os.path.join("src", "a.cc"): (
                "PILOTE_HOT_PATH void Serve();\n"
                "void Serve() {\n"
                "  PILOTE_CHECK_EQ(a, b) << Describe(a);\n"
                "}\n"
                "std::string Describe(int a) {\n"
                "  std::ostringstream os;\n"
                "  return os.str();\n"
                "}\n"),
        }
        self.assertEqual(hotpath_errors(files), [])


def metric_errors(source, rel_path=os.path.join("src", "serve", "x.cc")):
    """check_metric_names reads the file itself (it needs raw string
    literals, which the shared stripper empties), so this helper lays the
    snippet out under a temp root at its rel_path."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(source))
        pilote_lint.check_metric_names(tmp, rel_path, errors)
    return errors


class MetricNamesTest(unittest.TestCase):
    def test_conforming_names_pass(self):
        src = """
            PILOTE_METRIC_COUNT("serve/batches", 1);
            PILOTE_METRIC_HISTOGRAM("serve/request_ms", ms);
            PILOTE_METRIC_GAUGE_SET("serve/queue_depth", depth);
            registry.GetCounter("tensor/gemm_calls");
            registry.GetCounterFamily("serve/stalls_total", "reason", {"x"});
            registry.GetHistogramFamily("serve/stage_ms", "stage", {"a"});
        """
        self.assertEqual(metric_errors(src), [])

    def test_missing_subsystem_fires(self):
        errors = metric_errors('PILOTE_METRIC_COUNT("batches", 1);\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("subsystem/name", errors[0])

    def test_uppercase_and_bad_chars_fire(self):
        errors = metric_errors(
            'registry.GetGauge("Serve/QueueDepth");\n'
            'registry.GetCounter("serve/hit-rate");\n')
        self.assertEqual(len(errors), 2)

    def test_duration_suffix_on_counter_fires(self):
        errors = metric_errors('PILOTE_METRIC_COUNT("serve/wait_ms", 1);\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("histogram", errors[0])

    def test_duration_suffix_on_histogram_passes(self):
        self.assertEqual(
            metric_errors('PILOTE_METRIC_HISTOGRAM("serve/wait_ms", v);\n'),
            [])

    def test_total_suffix_on_non_counter_fires(self):
        errors = metric_errors(
            'registry.GetGaugeFamily("serve/depth_total", "k", {"v"});\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("_total", errors[0])

    def test_name_in_comment_is_ignored(self):
        src = """
            // Example: PILOTE_METRIC_COUNT("BadName", 1);
            /* registry.GetCounter("also_bad"); */
            PILOTE_METRIC_COUNT("serve/good_total", 1);
        """
        self.assertEqual(metric_errors(src), [])

    def test_name_on_continuation_line_is_found(self):
        src = (
            'stalls_(obs::FamilyRegistry::Global().GetCounterFamily(\n'
            '    "serve/Bad", "reason", {"a"}))\n')
        errors = metric_errors(src)
        self.assertEqual(len(errors), 1)
        self.assertIn("serve/Bad", errors[0])
        self.assertIn(":2:", errors[0])

    def test_non_literal_name_is_ignored(self):
        # The macro definition itself passes `name` through; no literal,
        # nothing to check.
        self.assertEqual(
            metric_errors("Global().GetCounter(name).Add(delta);\n"), [])


def lifetime_errors(files):
    """Writes a src/ tree and runs the lifetime stage over it."""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel, content in files.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(textwrap.dedent(content))
        pilote_lint.run_lifetime_stage(tmp, errors)
    return errors


def lifetime_src(source):
    return lifetime_errors({os.path.join("src", "a.cc"): source})


class LifetimeRefCaptureTest(unittest.TestCase):
    """check_deferred_ref_captures: by-reference lambda captures handed to
    deferred-execution sinks, and the lifetime-ok escape."""

    def test_default_ref_capture_to_thread_fires(self):
        errors = lifetime_src(
            "void F(int x) {\n"
            "  std::thread t([&] { Use(x); });\n"
            "  t.join();\n"
            "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("[lifetime:ref-capture]", errors[0])
        self.assertIn("'thread'", errors[0])

    def test_this_capture_to_submit_fires(self):
        errors = lifetime_src("void Engine::Go() {\n"
                              "  pool.Submit([this] { Tick(); });\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("`this`", errors[0])

    def test_named_ref_capture_to_queue_push_fires(self):
        errors = lifetime_src("void F() {\n"
                              "  int x = 0;\n"
                              "  queue.TryPush([&x] { Use(x); });\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("`&x`", errors[0])

    def test_bare_this_to_thread_ctor_fires(self):
        errors = lifetime_src(
            "void Engine::Start() {\n"
            "  thread_ = std::thread(&Engine::Loop, this);\n"
            "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("`this` passed to 'thread'", errors[0])

    def test_by_value_captures_pass(self):
        self.assertEqual(
            lifetime_src("void F(int x) {\n"
                         "  std::thread t([x] { Use(x); });\n"
                         "  pool.Submit([=] { Use(x); });\n"
                         "  queue.Push([*this] { Tick(); });\n"
                         "}\n"),
            [])

    def test_non_sink_call_with_ref_capture_passes(self):
        # std::sort runs the lambda before returning; not a deferred sink.
        self.assertEqual(
            lifetime_src("void F(std::vector<int>& v) {\n"
                         "  std::sort(v.begin(), v.end(),\n"
                         "            [&](int a, int b) { return a < b; });\n"
                         "}\n"),
            [])

    def test_subscript_bracket_is_not_a_capture_list(self):
        self.assertEqual(
            lifetime_src("void F() {\n"
                         "  queue.Push(items[0]);\n"
                         "  sink_.push_back(values[i]);\n"
                         "}\n"),
            [])

    def test_trailing_lifetime_ok_suppresses(self):
        self.assertEqual(
            lifetime_src(
                "void Engine::Start() {\n"
                "  // lifetime-ok: joined in Stop() before `this` dies\n"
                "  worker_ = std::thread([this] { Loop(); });\n"
                "}\n"),
            [])


class LifetimeReturnLocalTest(unittest.TestCase):
    """check_dangling_returns: references/pointers/views escaping a frame."""

    def test_ref_return_of_local_fires(self):
        errors = lifetime_src("const std::string& F() {\n"
                              "  std::string s;\n"
                              "  return s;\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("[lifetime:return-local]", errors[0])
        self.assertIn("'s'", errors[0])

    def test_ptr_return_of_local_c_str_fires(self):
        errors = lifetime_src("const char* F() {\n"
                              "  std::string msg(kText);\n"
                              "  return msg.c_str();\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'msg'", errors[0])

    def test_ptr_return_of_temporary_buffer_fires(self):
        errors = lifetime_src(
            "const char* Name(int code) {\n"
            "  return std::to_string(code).c_str();\n"
            "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("temporary", errors[0])

    def test_string_view_of_local_fires(self):
        errors = lifetime_src("std::string_view F() {\n"
                              "  std::string s = Build();\n"
                              "  return s;\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("viewing local", errors[0])

    def test_span_of_local_tensor_fires(self):
        errors = lifetime_src("Span<float> F(const Shape& shape) {\n"
                              "  Tensor t(shape);\n"
                              "  return t.span();\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("'t'", errors[0])

    def test_byvalue_param_counts_as_local(self):
        errors = lifetime_src("const char* F(std::string s) {\n"
                              "  return s.c_str();\n"
                              "}\n")
        self.assertEqual(len(errors), 1)

    def test_static_local_and_member_returns_pass(self):
        self.assertEqual(
            lifetime_src("const std::vector<int>& Table() {\n"
                         "  static std::vector<int> table = Build();\n"
                         "  return table;\n"
                         "}\n"
                         "const std::string& C::name() { return name_; }\n"),
            [])

    def test_value_return_of_local_passes(self):
        self.assertEqual(
            lifetime_src("std::string F() {\n"
                         "  std::string s;\n"
                         "  return s;\n"
                         "}\n"),
            [])

    def test_lifetime_ok_on_return_suppresses(self):
        self.assertEqual(
            lifetime_src(
                "const char* F() {\n"
                "  std::string s;\n"
                "  // lifetime-ok: consumed before the next statement\n"
                "  return s.c_str();\n"
                "}\n"),
            [])


class LifetimeStoredViewTest(unittest.TestCase):
    """check_stored_container_views: pointers/iterators into growable
    storage persisted past the next reallocation."""

    def test_member_stores_local_vector_data_fires(self):
        errors = lifetime_src("void C::F() {\n"
                              "  std::vector<float> buf(n);\n"
                              "  ptr_ = buf.data();\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("[lifetime:stored-view]", errors[0])
        self.assertIn("ptr_", errors[0])

    def test_member_stores_member_iterator_fires(self):
        errors = lifetime_src("class C {\n"
                              "  std::vector<int> items_;\n"
                              "  void F();\n"
                              "};\n"
                              "void C::F() { cursor_ = items_.begin(); }\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("items_", errors[0])

    def test_struct_field_stores_element_address_fires(self):
        errors = lifetime_src("void C::F(Request* req) {\n"
                              "  std::vector<float> row(d);\n"
                              "  req->features = &row[0];\n"
                              "}\n")
        self.assertEqual(len(errors), 1)

    def test_local_pointer_into_growable_passes(self):
        # A frame-local pointer dies with the frame; re-derived per use.
        self.assertEqual(
            lifetime_src("void F() {\n"
                         "  std::vector<float> buf(n);\n"
                         "  const float* p = buf.data();\n"
                         "  Use(p);\n"
                         "}\n"),
            [])

    def test_unknown_container_type_passes(self):
        # `items` is not a declared growable anywhere in the file.
        self.assertEqual(
            lifetime_src("void C::F() { ptr_ = items.data(); }\n"), [])

    def test_lifetime_ok_suppresses_store(self):
        self.assertEqual(
            lifetime_src(
                "void C::F() {\n"
                "  std::vector<float> buf(n);\n"
                "  ptr_ = buf.data();  // lifetime-ok: buf outlives C\n"
                "}\n"),
            [])


class LifetimeIterInvalidationTest(unittest.TestCase):
    """check_range_for_mutation: growing/erasing a container inside a
    range-for over the same container."""

    def test_push_back_in_range_for_fires(self):
        errors = lifetime_src("void F(std::vector<int>& v) {\n"
                              "  for (int x : v) {\n"
                              "    if (x > 0) v.push_back(-x);\n"
                              "  }\n"
                              "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("[lifetime:iter-invalidation]", errors[0])

    def test_member_container_erase_fires(self):
        errors = lifetime_src(
            "void C::Prune() {\n"
            "  for (const auto& s : sessions_) {\n"
            "    if (s.expired()) sessions_.erase(s.id());\n"
            "  }\n"
            "}\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("sessions_", errors[0])

    def test_mutating_other_container_passes(self):
        self.assertEqual(
            lifetime_src("void F() {\n"
                         "  for (int x : input) {\n"
                         "    output.push_back(x);\n"
                         "    summary.counters.push_back(x);\n"
                         "  }\n"
                         "}\n"),
            [])

    def test_mutation_after_loop_passes(self):
        self.assertEqual(
            lifetime_src("void F(std::vector<int>& v) {\n"
                         "  for (int x : v) Use(x);\n"
                         "  v.push_back(1);\n"
                         "}\n"),
            [])

    def test_classic_index_loop_passes(self):
        # Not a range-for: growth with an index is the sanctioned pattern.
        self.assertEqual(
            lifetime_src("void F(std::vector<int>& v) {\n"
                         "  for (size_t i = 0; i < v.size(); ++i) {\n"
                         "    if (v[i] > 0) v.push_back(-v[i]);\n"
                         "  }\n"
                         "}\n"),
            [])

    def test_lifetime_ok_suppresses_mutation(self):
        self.assertEqual(
            lifetime_src(
                "void F(std::vector<int>& v) {\n"
                "  for (int x : v) {\n"
                "    // lifetime-ok: loop breaks right after the push\n"
                "    if (x > 0) v.push_back(-x);\n"
                "  }\n"
                "}\n"),
            [])


class StageWiringTest(unittest.TestCase):
    """End-to-end: the CLI catches a violation and passes a clean tree."""

    def run_cli(self, files, stage, extra_args=()):
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(textwrap.dedent(content))
            proc = subprocess.run(
                [sys.executable,
                 os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "pilote_lint.py"),
                 "--root", tmp, "--stage", stage, "--no-self-contained",
                 *extra_args],
                capture_output=True, text=True)
        return proc

    def test_concurrency_stage_fails_on_raw_mutex(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"): "std::mutex m_;\n"},
            "concurrency")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("raw std::mutex", proc.stdout)

    def test_concurrency_stage_passes_clean_tree(self):
        clean = """
            #ifndef PILOTE_OK_H_
            #define PILOTE_OK_H_
            class C {
              mutable Mutex mutex_;
              int n_ PILOTE_GUARDED_BY(mutex_) = 0;
            };
            #endif  // PILOTE_OK_H_
        """
        proc = self.run_cli({os.path.join("src", "ok.h"): clean},
                            "concurrency")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_style_stage_still_catches_bad_guard(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.h"):
             "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"},
            "style")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("include guard", proc.stdout)

    def test_hotpath_stage_fails_on_hot_allocation(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"):
             "PILOTE_HOT_PATH void Serve();\n"
             "void Serve() { int* p = new int(3); Use(p); }\n"},
            "hotpath")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[hotpath:heap-new]", proc.stdout)

    def test_style_stage_catches_bad_metric_name(self):
        proc = self.run_cli(
            {os.path.join("src", "bad.cc"):
             'PILOTE_METRIC_COUNT("noslash", 1);\n'},
            "style")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("subsystem/name", proc.stdout)

    LIFETIME_BAD = {
        os.path.join("src", "bad.cc"):
        "void F(int x) {\n"
        "  std::thread t([&] { Use(x); });\n"
        "  t.join();\n"
        "}\n"}

    def test_lifetime_stage_fails_on_ref_capture(self):
        proc = self.run_cli(self.LIFETIME_BAD, "lifetime")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[lifetime:ref-capture]", proc.stdout)

    def test_all_stage_runs_lifetime(self):
        proc = self.run_cli(self.LIFETIME_BAD, "all")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[lifetime:ref-capture]", proc.stdout)

    def test_lifetime_stage_passes_annotated_tree(self):
        proc = self.run_cli(
            {os.path.join("src", "ok.cc"):
             "void Engine::Start() {\n"
             "  // lifetime-ok: joined in Stop()\n"
             "  worker_ = std::thread([this] { Loop(); });\n"
             "}\n"},
            "lifetime")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_json_out_writes_findings_artifact(self):
        import json
        with tempfile.TemporaryDirectory() as out_dir:
            out_path = os.path.join(out_dir, "findings.json")
            proc = self.run_cli(self.LIFETIME_BAD, "lifetime",
                                extra_args=("--json-out", out_path))
            self.assertEqual(proc.returncode, 1)
            with open(out_path, encoding="utf-8") as f:
                artifact = json.load(f)
        self.assertEqual(artifact["stage"], "lifetime")
        self.assertEqual(artifact["violations"], 1)
        self.assertEqual(len(artifact["findings"]), 1)
        self.assertEqual(artifact["findings"][0]["line"], 2)
        self.assertIn("ref-capture", artifact["findings"][0]["message"])

    def test_hotpath_stage_passes_marked_tree(self):
        proc = self.run_cli(
            {os.path.join("src", "ok.cc"):
             "PILOTE_HOT_PATH void Serve();\n"
             "void Serve() {\n"
             "  int* p = new int(3);  // hotpath-ok: test\n"
             "  Use(p);\n"
             "}\n"},
            "hotpath")
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
