// Extension beyond the paper: the paper's three strategies plus GDumb
// (Prabhu et al., 2020 — greedy balanced cache + retrain from scratch),
// which the related-work section cites as the "questioning" baseline.
// All four share the siamese/NCM pipeline, the same support budget and
// the same incremental sample stream, on the 'Run' scenario.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace pilote {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "Extension: strategy comparison incl. GDumb (new class 'Run', %d "
      "rounds)\n\n",
      config.rounds);
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  data::Dataset old_test = scenario.test.FilterByClasses(scenario.old_labels);
  data::Dataset new_test =
      scenario.test.FilterByClass(har::ActivityLabel(scenario.new_activity));

  std::printf("%-12s | %-19s | %-12s | %-12s | %-8s\n", "strategy",
              "overall acc", "old-class", "new recall", "epochs");
  for (const char* strategy :
       {"pretrained", "retrained", "gdumb", "pilote"}) {
    std::vector<double> overall;
    std::vector<double> old_acc;
    std::vector<double> new_recall;
    std::vector<double> epochs;
    const int rounds = std::string(strategy) == "pretrained" ? 1 : config.rounds;
    for (int round = 0; round < rounds; ++round) {
      const uint64_t seed = 6000 + 53 * static_cast<uint64_t>(round);
      LearnerRun run =
          RunLearner(strategy, cloud.artifact, config, scenario, seed);
      overall.push_back(run.accuracy);
      old_acc.push_back(run.learner->Evaluate(old_test));
      new_recall.push_back(run.learner->Evaluate(new_test));
      epochs.push_back(run.report.epochs_completed);
    }
    std::printf("%-12s | %-19s | %-12.4f | %-12.4f | %-8.1f\n", strategy,
                FormatMeanStd(overall).c_str(),
                eval::Summarize(old_acc).mean,
                eval::Summarize(new_recall).mean,
                eval::Summarize(epochs).mean);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: GDumb is competitive given a large cache (its\n"
      "from-scratch retraining sees balanced data) but pays the full\n"
      "retraining cost and discards the cloud model; PILOTE matches or\n"
      "beats it at a fraction of the training budget.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
