#include "bench_common.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "eval/metrics.h"
#include "har/har_dataset.h"
#include "obs/export.h"

namespace pilote {
namespace bench {

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  // Strip --metrics-json=PATH / --trace-out=PATH first: they enable the
  // obs registry and arrange at-exit snapshots, and must not reach the
  // unknown-flag warning below.
  argc = obs::ConsumeMetricsFlags(argc, argv);
  BenchConfig config;
  config.pilote = core::PiloteConfig::Small();
  config.pilote.exemplars_per_class = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper") {
      config.paper_scale = true;
    } else if (arg.rfind("--rounds=", 0) == 0) {
      config.rounds = std::atoi(arg.c_str() + std::strlen("--rounds="));
      PILOTE_CHECK_GT(config.rounds, 0);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.data_seed = static_cast<uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--seed=")));
    } else {
      PILOTE_LOG(Warning) << "ignoring unknown flag " << arg;
    }
  }
  if (config.paper_scale) {
    config.pilote = core::PiloteConfig::Paper();
    config.pilote.exemplars_per_class = 200;
    config.train_per_class = 1000;
    config.test_per_class = 300;
    config.new_samples = 400;
    config.rounds = 5;
  }
  return config;
}

ScenarioData MakeScenario(const BenchConfig& config,
                          har::Activity new_activity) {
  ScenarioData scenario;
  scenario.new_activity = new_activity;

  std::vector<har::Activity> old_activities;
  for (har::Activity activity : har::AllActivities()) {
    if (activity != new_activity) old_activities.push_back(activity);
  }
  for (har::Activity activity : old_activities) {
    scenario.old_labels.push_back(har::ActivityLabel(activity));
  }

  // Distinct generator streams so train/new/test never share windows.
  har::HarDataGenerator train_gen(config.data_seed);
  har::HarDataGenerator new_gen(config.data_seed ^ 0xA5A5A5A5ULL);
  har::HarDataGenerator test_gen(config.data_seed ^ 0x5A5A5A5AULL);

  scenario.d_old =
      train_gen.GenerateBalanced(config.train_per_class, old_activities);
  scenario.d_new = new_gen.Generate(new_activity, config.new_samples);
  scenario.test = test_gen.GenerateBalanced(config.test_per_class);
  return scenario;
}

core::CloudPretrainResult Pretrain(const BenchConfig& config,
                                   const ScenarioData& scenario) {
  core::CloudPretrainer pretrainer(config.pilote);
  Result<core::CloudPretrainResult> result = pretrainer.Run(scenario.d_old);
  PILOTE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

LearnerRun RunLearner(const std::string& strategy,
                      const core::CloudArtifact& artifact,
                      const BenchConfig& config, const ScenarioData& scenario,
                      uint64_t round_seed) {
  core::PiloteConfig round_config = config.pilote;
  round_config.seed = round_seed;
  round_config.incremental.seed = round_seed ^ 0x1234;

  LearnerRun run;
  Result<std::unique_ptr<core::EdgeLearner>> learner =
      core::MakeEdgeLearner(strategy, artifact, round_config);
  PILOTE_CHECK(learner.ok()) << learner.status().ToString();
  run.learner = std::move(learner).value();
  Result<core::TrainReport> report =
      run.learner->LearnNewClasses(scenario.d_new);
  PILOTE_CHECK(report.ok()) << report.status().ToString();
  run.report = std::move(report).value();
  run.accuracy = run.learner->Evaluate(scenario.test);
  return run;
}

std::string FormatMeanStd(const std::vector<double>& values) {
  eval::MeanStd stats = eval::Summarize(values);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << stats.mean << " +/- " << stats.stddev;
  return os.str();
}

}  // namespace bench
}  // namespace pilote
