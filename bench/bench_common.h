#ifndef PILOTE_BENCH_BENCH_COMMON_H_
#define PILOTE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "core/edge_learner.h"
#include "data/dataset.h"
#include "har/activity.h"

namespace pilote {
namespace bench {

// Shared setup for the experiment binaries that regenerate the paper's
// tables and figures. Defaults are sized for a single-core box; pass
// --paper for the paper-scale backbone ([1024,512,128,64]->128) and
// larger corpora (slow!), --rounds=N to change the number of repetitions.
// Observability: --metrics-json=PATH writes a metrics snapshot (counters,
// histogram percentiles, span profile) at exit; --trace-out=PATH writes a
// Chrome trace_event JSON loadable in chrome://tracing. Both flags enable
// the obs registry for the whole run.
struct BenchConfig {
  core::PiloteConfig pilote;
  // The cloud corpus must dwarf the edge support set (in the paper the
  // support is <1% of ~40k rows/class): that asymmetry is what makes
  // re-training on the support lossy while PILOTE's anchoring pays off.
  int64_t train_per_class = 700;  // cloud corpus rows per old class
  int64_t test_per_class = 100;   // held-out test rows per class
  int64_t new_samples = 120;      // new-class rows that reach the edge
  int rounds = 3;                 // paper reports 5 rounds
  uint64_t data_seed = 20230328;  // EDBT 2023 :)
  bool paper_scale = false;

  static BenchConfig FromArgs(int argc, char** argv);
};

// One leave-one-activity-out scenario: the cloud pre-trains on the other
// four activities; `d_new` arrives at the edge; `test` covers all five.
struct ScenarioData {
  har::Activity new_activity;
  std::vector<int> old_labels;
  data::Dataset d_old;
  data::Dataset d_new;
  data::Dataset test;
};

ScenarioData MakeScenario(const BenchConfig& config,
                          har::Activity new_activity);

// Runs the cloud phase for a scenario.
core::CloudPretrainResult Pretrain(const BenchConfig& config,
                                   const ScenarioData& scenario);

// One edge run of a strategy ("pretrained" / "retrained" / "pilote").
struct LearnerRun {
  std::unique_ptr<core::EdgeLearner> learner;
  core::TrainReport report;
  double accuracy = 0.0;  // on scenario.test (all five classes)
};

LearnerRun RunLearner(const std::string& strategy,
                      const core::CloudArtifact& artifact,
                      const BenchConfig& config, const ScenarioData& scenario,
                      uint64_t round_seed);

// "0.9372 +/- 0.0319"-style cell.
std::string FormatMeanStd(const std::vector<double>& values);

}  // namespace bench
}  // namespace pilote

#endif  // PILOTE_BENCH_BENCH_COMMON_H_
