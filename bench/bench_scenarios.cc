// Runs the named continual-learning scenario catalog end to end and emits
// the full metric matrix. CI compares the flat JSON against the committed
// BENCH_scenarios.json baseline (accuracy keys are gated from below,
// forgetting keys from above; see tools/check_bench_regression.py).
//
//   bench_scenarios [--scenario=NAME] [--json-out=PATH] [--reports-dir=DIR]
//
// --json-out writes one flat {"<scenario>_<metric>": value} object;
// --reports-dir writes each scenario's full deterministic report as
// <dir>/<scenario>.json. Exit status is non-zero when any scenario fails
// its own thresholds, so the bench doubles as a gate without a baseline.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/catalog.h"
#include "scenario/scenario.h"

namespace {

using pilote::Result;
using pilote::Status;
using pilote::scenario::ScenarioReport;
using pilote::scenario::ScenarioSpec;

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return std::string(buffer);
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  std::string json_out;
  std::string reports_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(11);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg.rfind("--reports-dir=", 0) == 0) {
      reports_dir = arg.substr(14);
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: bench_scenarios [--scenario=NAME] "
                   "[--json-out=PATH] [--reports-dir=DIR]\n";
      return 2;
    }
  }

  std::vector<ScenarioSpec> specs;
  if (only.empty()) {
    specs = pilote::scenario::AllScenarios();
  } else {
    Result<ScenarioSpec> found = pilote::scenario::FindScenario(only);
    if (!found.ok()) {
      std::cerr << found.status().ToString() << "\n";
      return 2;
    }
    specs.push_back(std::move(found).value());
  }

  if (!reports_dir.empty()) {
    std::filesystem::create_directories(reports_dir);
  }

  int gate_failures = 0;
  std::string flat = "{\n";
  bool first_key = true;
  const auto emit = [&](const std::string& key, double value) {
    if (!first_key) flat += ",\n";
    first_key = false;
    flat += "  \"" + key + "\": " + FormatDouble(value);
  };

  std::printf("%-22s %8s %8s %8s %8s %8s\n", "scenario", "final", "avg_inc",
              "forget", "bwt", "fwt");
  for (const ScenarioSpec& spec : specs) {
    Result<ScenarioReport> run = pilote::scenario::RunScenario(spec);
    if (!run.ok()) {
      std::cerr << "scenario " << spec.name << ": "
                << run.status().ToString() << "\n";
      return 1;
    }
    const ScenarioReport& report = run.value();
    const auto& metrics = report.metrics;
    std::printf("%-22s %8.4f %8.4f %8.4f %+8.4f %+8.4f\n",
                report.name.c_str(), metrics.final_average_accuracy,
                metrics.average_incremental_accuracy, metrics.forgetting,
                metrics.backward_transfer, metrics.forward_transfer);

    emit(report.name + "_final_avg_acc", metrics.final_average_accuracy);
    emit(report.name + "_avg_incremental_acc",
         metrics.average_incremental_accuracy);
    emit(report.name + "_forgetting", metrics.forgetting);
    for (const auto& [key, value] : report.extras) {
      emit(report.name + "_" + key, value);
    }

    const Status gate = pilote::scenario::CheckThresholds(spec, report);
    if (!gate.ok()) {
      std::cerr << "GATE " << gate.ToString() << "\n";
      ++gate_failures;
    }
    if (!reports_dir.empty()) {
      const std::string path = reports_dir + "/" + report.name + ".json";
      std::ofstream out(path, std::ios::binary);
      out << report.ToJson();
      if (!out) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
      }
    }
  }
  flat += "\n}\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << flat;
    if (!out) {
      std::cerr << "failed to write " << json_out << "\n";
      return 1;
    }
    std::cout << "wrote " << json_out << "\n";
  }
  if (gate_failures > 0) {
    std::cerr << gate_failures << " scenario(s) failed their thresholds\n";
    return 1;
  }
  return 0;
}
