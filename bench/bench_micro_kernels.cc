// Microbenchmarks (google-benchmark) of the computational kernels behind
// the pipeline: GEMM at the paper backbone's layer shapes, the 80-feature
// extractor, NCM classification, and herding selection.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "obs/export.h"
#include "core/exemplar_selector.h"
#include "core/ncm_classifier.h"
#include "har/feature_extractor.h"
#include "har/sensor_simulator.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

void BM_GemmLayerShape(benchmark::State& state) {
  const int64_t batch = state.range(0);
  const int64_t in = state.range(1);
  const int64_t out = state.range(2);
  Rng rng(1);
  Tensor x = Tensor::RandNormal(Shape::Matrix(batch, in), rng);
  Tensor w = Tensor::RandNormal(Shape::Matrix(out, in), rng);
  for (auto _ : state) {
    Tensor y = MatMulTransB(x, w);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * batch * in * out);
}
// The paper backbone's layer shapes at a 128-row siamese batch.
BENCHMARK(BM_GemmLayerShape)
    ->Args({128, 80, 1024})
    ->Args({128, 1024, 512})
    ->Args({128, 512, 128})
    ->Args({128, 128, 64})
    ->Args({128, 64, 128});

void BM_FeatureExtraction(benchmark::State& state) {
  har::SensorSimulator sim(2);
  Tensor window = sim.GenerateWindow(har::Activity::kWalk);
  for (auto _ : state) {
    Tensor features = har::ExtractFeatures(window);
    benchmark::DoNotOptimize(features.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_WindowSimulation(benchmark::State& state) {
  har::SensorSimulator sim(3);
  for (auto _ : state) {
    Tensor window = sim.GenerateWindow(har::Activity::kRun);
    benchmark::DoNotOptimize(window.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowSimulation);

void BM_NcmPredict(benchmark::State& state) {
  const int64_t num_classes = state.range(0);
  const int64_t dim = 128;
  Rng rng(4);
  core::NcmClassifier ncm;
  for (int64_t c = 0; c < num_classes; ++c) {
    ncm.SetPrototype(static_cast<int>(c),
                     Tensor::RandNormal(Shape::Vector(dim), rng));
  }
  Tensor queries = Tensor::RandNormal(Shape::Matrix(64, dim), rng);
  for (auto _ : state) {
    auto predictions = ncm.Predict(queries);
    benchmark::DoNotOptimize(predictions.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NcmPredict)->Arg(5)->Arg(20)->Arg(100);

void BM_HerdingSelect(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(n, 128), rng);
  for (auto _ : state) {
    auto selected = core::HerdingSelect(embeddings, n / 4);
    benchmark::DoNotOptimize(selected.data());
  }
}
BENCHMARK(BM_HerdingSelect)->Arg(200)->Arg(800);

void BM_PairwiseSquaredDistance(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  Tensor a = Tensor::RandNormal(Shape::Matrix(n, 128), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(5, 128), rng);
  for (auto _ : state) {
    Tensor d = PairwiseSquaredDistance(a, b);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 5);
}
BENCHMARK(BM_PairwiseSquaredDistance)->Arg(64)->Arg(512);

}  // namespace
}  // namespace pilote

// Custom main: google-benchmark rejects flags it does not know, so the
// observability flags (--metrics-json=PATH, --trace-out=PATH) must be
// stripped from argv before Initialize sees them.
int main(int argc, char** argv) {
  argc = pilote::obs::ConsumeMetricsFlags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
