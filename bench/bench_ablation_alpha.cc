// Ablation of the joint-loss balancing weight alpha (Sec 5.2 / Algo 1
// line 10; the paper fixes alpha = 0.5). alpha = 0 removes distillation
// (degenerating toward the re-trained baseline); alpha = 1 removes the
// contrastive term (the embedding space barely moves, as with the
// pre-trained baseline). The sweep shows the trade-off between new-class
// recall and old-class retention.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace pilote {
namespace bench {
namespace {

void Run(BenchConfig config) {
  const std::vector<float> alphas = {0.0f, 0.25f, 0.5f, 0.75f, 1.0f};
  std::printf(
      "Ablation: joint-loss weight alpha (new class 'Run', %d rounds)\n\n",
      config.rounds);
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  data::Dataset old_test = scenario.test.FilterByClasses(scenario.old_labels);
  data::Dataset new_test =
      scenario.test.FilterByClass(har::ActivityLabel(scenario.new_activity));

  std::printf("%-6s | %-19s | %-12s | %-12s\n", "alpha", "overall acc",
              "old-class acc", "new recall");
  for (float alpha : alphas) {
    BenchConfig point = config;
    point.pilote.alpha = alpha;
    std::vector<double> overall;
    std::vector<double> old_acc;
    std::vector<double> new_recall;
    for (int round = 0; round < config.rounds; ++round) {
      const uint64_t seed = 4000 + 41 * static_cast<uint64_t>(round);
      LearnerRun run =
          RunLearner("pilote", cloud.artifact, point, scenario, seed);
      overall.push_back(run.accuracy);
      old_acc.push_back(run.learner->Evaluate(old_test));
      new_recall.push_back(run.learner->Evaluate(new_test));
    }
    std::printf("%-6.2f | %-19s | %-12.4f | %-12.4f\n", alpha,
                FormatMeanStd(overall).c_str(),
                eval::Summarize(old_acc).mean,
                eval::Summarize(new_recall).mean);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: old-class accuracy increases with alpha while\n"
      "new-class recall decreases; overall accuracy peaks in the middle\n"
      "(the paper's alpha = 0.5 operating point).\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
