// Ablation of the model-capacity knobs the paper fixes without sweeping:
// the contrastive margin m (Eq. 2) and the embedding dimension (128 in
// Sec 6.1.2). Each point re-runs the cloud + edge pipeline on the 'Run'
// scenario.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"

namespace pilote {
namespace bench {
namespace {

double PointAccuracy(const BenchConfig& config, const ScenarioData& scenario) {
  core::CloudPretrainResult cloud = Pretrain(config, scenario);
  return RunLearner("pilote", cloud.artifact, config, scenario, 1).accuracy;
}

void Run(BenchConfig config) {
  std::printf("Ablation: contrastive margin and embedding dimension\n");
  std::printf("(new class 'Run'; one run per point)\n\n");
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);

  std::printf("--- margin sweep (embedding dim %lld) ---\n",
              static_cast<long long>(config.pilote.backbone.embedding_dim));
  std::printf("%-8s | %-10s\n", "margin", "accuracy");
  for (float margin : {1.0f, 2.5f, 5.0f, 10.0f}) {
    BenchConfig point = config;
    point.pilote.pretrain.margin = margin;
    point.pilote.incremental.margin = margin;
    std::printf("%-8.1f | %-10.4f\n", margin, PointAccuracy(point, scenario));
    std::fflush(stdout);
  }

  std::printf("\n--- embedding-dimension sweep (margin %.1f) ---\n",
              config.pilote.incremental.margin);
  std::printf("%-8s | %-10s\n", "dim", "accuracy");
  for (int64_t dim : {8, 32, 128}) {
    BenchConfig point = config;
    point.pilote.backbone.embedding_dim = dim;
    std::printf("%-8lld | %-10.4f\n", static_cast<long long>(dim),
                PointAccuracy(point, scenario));
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: accuracy is flat over a broad margin range (the\n"
      "loss is scale-covariant) and saturates with embedding dimension —\n"
      "the paper's 128-d choice is comfortable rather than critical.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
