// Regenerates Figure 7 of the paper (Sec 6.4, Q3): model accuracy as a
// function of the number of new-class ('Run') exemplars available at the
// extreme edge, with 200 representative exemplars per old class. The
// pre-trained model's accuracy is shown as the warm-start reference line.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "data/splits.h"

namespace pilote {
namespace bench {
namespace {

void Run(BenchConfig config) {
  const std::vector<int64_t> counts = {5, 10, 20, 30, 50, 100, 200};
  config.new_samples = counts.back();
  config.train_per_class =
      std::max(config.train_per_class, config.pilote.exemplars_per_class + 60);

  std::printf(
      "Figure 7: accuracy vs new-class exemplar count (new class 'Run',\n"
      "%lld old exemplars/class, %d rounds)\n\n",
      static_cast<long long>(config.pilote.exemplars_per_class),
      config.rounds);

  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  // The warm-start reference: accuracy when the new class only gets
  // prototypes from the full new sample set.
  LearnerRun reference =
      RunLearner("pretrained", cloud.artifact, config, scenario, 1);
  std::printf("Pre-trained reference (warm start): %.4f\n\n",
              reference.accuracy);
  std::printf("%-10s | %-19s | %-19s\n", "exemplars", "Re-trained", "PILOTE");

  for (int64_t count : counts) {
    std::vector<double> retrained_acc;
    std::vector<double> pilote_acc;
    for (int round = 0; round < config.rounds; ++round) {
      // Each round draws a fresh random subset of new-class samples — at
      // the extreme edge the handful of recorded samples is itself random.
      Rng subset_rng(config.data_seed + static_cast<uint64_t>(count) * 131 +
                     static_cast<uint64_t>(round));
      ScenarioData point_scenario = scenario;
      point_scenario.d_new =
          data::SampleRows(scenario.d_new, count, subset_rng);
      const uint64_t seed = 3000 + 37 * static_cast<uint64_t>(round);
      retrained_acc.push_back(
          RunLearner("retrained", cloud.artifact, config, point_scenario, seed)
              .accuracy);
      pilote_acc.push_back(
          RunLearner("pilote", cloud.artifact, config, point_scenario, seed)
              .accuracy);
    }
    std::printf("%-10lld | %-19s | %-19s\n", static_cast<long long>(count),
                FormatMeanStd(retrained_acc).c_str(),
                FormatMeanStd(pilote_acc).c_str());
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): PILOTE beats the re-trained model across\n"
      "the sweep, with the largest margin below ~50 exemplars; around 30\n"
      "exemplars PILOTE already approaches its plateau accuracy.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
