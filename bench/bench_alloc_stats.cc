// Deterministic hot-path accounting: runs the full edge inference path
// (scale + embed + NCM) window by window on one thread and reports the
// exact per-window heap-allocation and GEMM-dispatch counts. Unlike the
// wall-clock benches these quantities are machine-independent, so CI pins
// them against the committed BENCH_kernels.json baseline via
// tools/check_bench_regression.py — a change that reintroduces per-window
// churn on the serve loop fails the compare even when it is too small to
// move a latency percentile.
//
// Flags:
//   --windows=N        probe windows to classify       (default 64)
//   --small            test-sized backbone instead of the paper's
//   --bench-json=PATH  machine-readable output for the regression check
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/macros.h"
#include "common/rng.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "nn/backbone.h"
#include "obs/metrics.h"
#include "serialize/io.h"
#include "tensor/tensor_ops.h"

namespace {

using pilote::Rng;
using pilote::Shape;
using pilote::Tensor;

struct BenchArgs {
  int windows = 64;
  bool small = false;
  std::string bench_json;
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--windows=", 0) == 0) {
      args.windows = std::atoi(arg.c_str() + std::strlen("--windows="));
    } else if (arg == "--small") {
      args.small = true;
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      args.bench_json = arg.substr(std::strlen("--bench-json="));
    } else {
      std::fprintf(stderr, "warning: unknown flag %s\n", arg.c_str());
    }
  }
  PILOTE_CHECK_GT(args.windows, 0);
  return args;
}

pilote::core::CloudArtifact MakeArtifact(
    const pilote::core::PiloteConfig& config) {
  Rng rng(20230901);
  pilote::nn::MlpBackbone model(config.backbone, rng);
  pilote::core::CloudArtifact artifact;
  artifact.backbone_config = config.backbone;
  artifact.model_payload = pilote::serialize::SerializeModuleToString(model);
  const int64_t input_dim = config.backbone.input_dim;
  artifact.scaler.Fit(Tensor::RandNormal(Shape::Matrix(128, input_dim), rng));
  for (int label = 0; label < 4; ++label) {
    Tensor exemplars =
        Tensor::RandNormal(Shape::Matrix(16, input_dim), rng,
                           /*mean=*/static_cast<float>(2 * label), 0.25f);
    artifact.support.SetClassExemplars(label,
                                       artifact.scaler.Transform(exemplars));
    artifact.old_classes.push_back(label);
  }
  return artifact;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  pilote::obs::ScopedEnable metrics_enabled;

  pilote::core::PiloteConfig config = pilote::core::PiloteConfig::Small();
  if (!args.small) config.backbone = pilote::nn::BackboneConfig::Paper();
  pilote::Result<std::unique_ptr<pilote::core::EdgeLearner>> learner =
      pilote::core::MakeEdgeLearner("pilote", MakeArtifact(config), config);
  PILOTE_CHECK(learner.ok()) << learner.status().ToString();

  Rng rng(7);
  std::vector<Tensor> windows;
  windows.reserve(static_cast<size_t>(args.windows));
  for (int w = 0; w < args.windows; ++w) {
    windows.push_back(Tensor::RandNormal(
        Shape::Matrix(1, config.backbone.input_dim), rng));
  }

  // Warm-up: lazy singletons (metric cells, thread pool) and scratch
  // buffers initialize outside the measured region, leaving steady state.
  (void)learner.value()->Predict(windows.front());

  pilote::obs::Counter& gemm_calls =
      pilote::obs::MetricsRegistry::Global().GetCounter("tensor/gemm_calls");
  pilote::alloc::ScopedTracking track_allocs;

  // One measured loop over the probe windows; the default run replays the
  // compiled inference plan, the eager run pins Predict to the autograd
  // tape — same windows, same labels, so the per-window deltas are the
  // exact cost of eager execution.
  int64_t label_sink = 0;
  const double n = static_cast<double>(args.windows);
  auto measure = [&](double* allocs_per_window, double* gemm_per_window) {
    (void)learner.value()->Predict(windows.front());  // re-warm buffers
    const int64_t gemm_before = gemm_calls.value();
    pilote::alloc::AllocationScope alloc_scope;
    for (const Tensor& window : windows) {
      label_sink += learner.value()->Predict(window).front();
    }
    *allocs_per_window = static_cast<double>(alloc_scope.count()) / n;
    *gemm_per_window =
        static_cast<double>(gemm_calls.value() - gemm_before) / n;
  };

  double allocs_per_window = 0.0, gemm_per_window = 0.0;
  measure(&allocs_per_window, &gemm_per_window);
  learner.value()->SetCompiledInferenceEnabled(false);
  double eager_allocs_per_window = 0.0, eager_gemm_per_window = 0.0;
  measure(&eager_allocs_per_window, &eager_gemm_per_window);
  learner.value()->SetCompiledInferenceEnabled(true);

  std::printf("alloc stats: %d windows (%s backbone), label checksum %lld\n",
              args.windows, args.small ? "small" : "paper",
              static_cast<long long>(label_sink));
  std::printf("  allocs/window: %.2f (eager %.2f)\n", allocs_per_window,
              eager_allocs_per_window);
  std::printf("  gemm calls/window: %.2f (eager %.2f)\n", gemm_per_window,
              eager_gemm_per_window);

  if (!args.bench_json.empty()) {
    std::FILE* f = std::fopen(args.bench_json.c_str(), "w");
    PILOTE_CHECK(f != nullptr) << "cannot write " << args.bench_json;
    std::fprintf(f,
                 "{\n"
                 "  \"allocs_per_window\": %.3f,\n"
                 "  \"gemm_calls_per_window\": %.3f,\n"
                 "  \"exec_eager_allocs_per_window\": %.3f,\n"
                 "  \"exec_eager_gemm_calls_per_window\": %.3f\n"
                 "}\n",
                 allocs_per_window, gemm_per_window, eager_allocs_per_window,
                 eager_gemm_per_window);
    std::fclose(f);
    std::printf("bench json written to %s\n", args.bench_json.c_str());
  }
  return 0;
}
