// Regenerates Table 2 of the paper (Sec 6.2, Q1): five-class accuracy of
// the Pre-trained / Re-trained / PILOTE models for each leave-one-
// activity-out scenario, mean +/- stddev over rounds. The pre-trained
// model is deterministic given the pre-training, so it has no deviation —
// matching the paper's single-number column.
//
// Flags: --paper (paper-scale backbone and corpora), --rounds=N, --seed=S.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"

namespace pilote {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  std::printf(
      "Table 2: accuracy without/with considering catastrophic forgetting\n");
  std::printf("(%d rounds per cell; %s backbone)\n\n", config.rounds,
              config.paper_scale ? "paper" : "small");
  std::printf("%-10s | %-12s | %-19s | %-19s\n", "New class", "Pre-trained",
              "Re-trained", "PILOTE");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");

  for (har::Activity activity : har::AllActivities()) {
    ScenarioData scenario = MakeScenario(config, activity);
    core::CloudPretrainResult cloud = Pretrain(config, scenario);

    // Pre-trained baseline: no training, hence a single deterministic run.
    LearnerRun pretrained =
        RunLearner("pretrained", cloud.artifact, config, scenario, 1);

    std::vector<double> retrained_acc;
    std::vector<double> pilote_acc;
    for (int round = 0; round < config.rounds; ++round) {
      const uint64_t seed = 1000 + 17 * static_cast<uint64_t>(round);
      retrained_acc.push_back(
          RunLearner("retrained", cloud.artifact, config, scenario, seed)
              .accuracy);
      pilote_acc.push_back(
          RunLearner("pilote", cloud.artifact, config, scenario, seed)
              .accuracy);
    }

    std::printf("%-10s | %-12.4f | %-19s | %-19s\n",
                std::string(har::ActivityName(activity)).c_str(),
                pretrained.accuracy, FormatMeanStd(retrained_acc).c_str(),
                FormatMeanStd(pilote_acc).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper): PILOTE >= Re-trained > Pre-trained, with\n"
      "the largest PILOTE margins on the gait-confusable activities\n"
      "(Run / Walk / Still).\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
