// Regenerates Figure 6 of the paper (Sec 6.3, Q2): model accuracy as a
// function of the support set's size (exemplars per class), for both
// exemplar-selection strategies (representative herding vs random), with
// the storage cost of each operating point. 'Run' is the held-out
// activity, as in the paper.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "data/splits.h"
#include "serialize/quantize.h"

namespace pilote {
namespace bench {
namespace {

void Run(BenchConfig config) {
  std::vector<int64_t> sizes = {10, 25, 50, 100, 200};
  const int64_t max_size = sizes.back();
  config.pilote.exemplars_per_class = max_size;
  // Enough generated rows to herd `max_size` exemplars per class.
  config.train_per_class = std::max(config.train_per_class, max_size + 60);
  config.new_samples = std::max(config.new_samples, max_size);

  std::printf(
      "Figure 6: accuracy vs support-set size (new class 'Run', %d rounds)\n\n",
      config.rounds);
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);

  for (core::SelectionStrategy strategy :
       {core::SelectionStrategy::kRepresentative,
        core::SelectionStrategy::kRandom}) {
    BenchConfig strategy_config = config;
    strategy_config.pilote.selection = strategy;
    // One pre-training per strategy; the herding order makes every prefix
    // of the max-size support set the best subset of its size, so smaller
    // operating points are trims, not re-selections.
    core::CloudPretrainResult cloud = Pretrain(strategy_config, scenario);

    std::printf("--- exemplar selection: %s ---\n",
                core::SelectionStrategyName(strategy));
    std::printf("%-10s | %-8s | %-12s | %-19s | %-19s\n", "exemplars",
                "KB(fp32)", "Pre-trained", "Re-trained", "PILOTE");
    for (int64_t size : sizes) {
      core::CloudArtifact artifact = cloud.artifact;  // copy, then trim
      artifact.support.TrimPerClass(size);

      BenchConfig point = strategy_config;
      point.pilote.exemplars_per_class = size;
      // The new class contributes `size` random samples, as in the paper.
      ScenarioData point_scenario = scenario;
      Rng subset_rng(config.data_seed + static_cast<uint64_t>(size));
      point_scenario.d_new =
          data::SampleRows(scenario.d_new, size, subset_rng);

      LearnerRun pretrained =
          RunLearner("pretrained", artifact, point, point_scenario, 1);
      std::vector<double> retrained_acc;
      std::vector<double> pilote_acc;
      for (int round = 0; round < config.rounds; ++round) {
        const uint64_t seed = 2000 + 31 * static_cast<uint64_t>(round);
        retrained_acc.push_back(
            RunLearner("retrained", artifact, point, point_scenario, seed)
                .accuracy);
        pilote_acc.push_back(
            RunLearner("pilote", artifact, point, point_scenario, seed)
                .accuracy);
      }

      const double kb =
          static_cast<double>(pretrained.learner->support().StorageBytes(
              serialize::QuantMode::kFloat32)) /
          1024.0;
      std::printf("%-10lld | %-8.1f | %-12.4f | %-19s | %-19s\n",
                  static_cast<long long>(size), kb, pretrained.accuracy,
                  FormatMeanStd(retrained_acc).c_str(),
                  FormatMeanStd(pilote_acc).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): accuracy grows with the exemplar budget;\n"
      "below ~50 exemplars the re-trained model drops under the\n"
      "pre-trained baseline while PILOTE stays above it; representative\n"
      "selection helps PILOTE most.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
