// Microbenchmarks (google-benchmark) of the edge-side budget claims from
// Sec 6.3 (Q2): end-to-end inference latency per 1-second window, the
// cloud->edge transfer payload, and the cost of one incremental training
// epoch. Inference latency is measured at both backbone scales; the
// training-epoch benchmark uses the small backbone so the binary stays
// fast on single-core CI (the paper-scale number is reported by
// bench_table2 --paper).
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "core/embedding.h"
#include "core/trainer.h"
#include "har/har_dataset.h"
#include "losses/pair_sampler.h"
#include "nn/backbone.h"
#include "obs/export.h"
#include "serialize/io.h"

namespace pilote {
namespace {

nn::BackboneConfig ConfigFor(int64_t scale) {
  return scale == 0 ? nn::BackboneConfig::Small()
                    : nn::BackboneConfig::Paper();
}

// One window through the embedding model + NCM-style distance (batch 1):
// the user-facing inference path on the device.
void BM_InferenceLatencyPerWindow(benchmark::State& state) {
  Rng rng(1);
  nn::MlpBackbone model(ConfigFor(state.range(0)), rng);
  model.SetTraining(false);
  Tensor window_features = Tensor::RandNormal(Shape::Matrix(1, 80), rng);
  for (auto _ : state) {
    Tensor embedding = core::Embed(model, window_features);
    benchmark::DoNotOptimize(embedding.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferenceLatencyPerWindow)
    ->Arg(0)  // small backbone
    ->Arg(1)  // paper backbone [1024,512,128,64]->128
    ->Unit(benchmark::kMicrosecond);

// Batched inference throughput (windows/second at batch 64).
void BM_InferenceBatch64(benchmark::State& state) {
  Rng rng(2);
  nn::MlpBackbone model(ConfigFor(state.range(0)), rng);
  model.SetTraining(false);
  Tensor batch = Tensor::RandNormal(Shape::Matrix(64, 80), rng);
  for (auto _ : state) {
    Tensor embeddings = core::Embed(model, batch);
    benchmark::DoNotOptimize(embeddings.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_InferenceBatch64)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The cloud->edge model transfer (serialize + deserialize round trip).
void BM_ModelTransfer(benchmark::State& state) {
  Rng rng(3);
  nn::MlpBackbone cloud_model(ConfigFor(state.range(0)), rng);
  nn::MlpBackbone edge_model(ConfigFor(state.range(0)), rng);
  int64_t payload_bytes = 0;
  for (auto _ : state) {
    std::string payload = serialize::SerializeModuleToString(cloud_model);
    payload_bytes = static_cast<int64_t>(payload.size());
    Status status =
        serialize::DeserializeModuleFromString(payload, edge_model);
    benchmark::DoNotOptimize(status.ok());
  }
  state.counters["payload_bytes"] =
      benchmark::Counter(static_cast<double>(payload_bytes));
  state.SetBytesProcessed(state.iterations() * payload_bytes);
}
BENCHMARK(BM_ModelTransfer)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// One incremental PILOTE training epoch (small backbone, 200 exemplars
// over four old classes + 40 new samples) — the paper's "< 0.5 s per
// epoch" regime, scaled to this host.
void BM_IncrementalTrainingEpoch(benchmark::State& state) {
  Rng rng(4);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  har::HarDataGenerator generator(5);
  data::Dataset old_support = generator.GenerateBalanced(
      50, {har::Activity::kDrive, har::Activity::kEscooter,
           har::Activity::kStill, har::Activity::kWalk});
  data::Dataset d_new = generator.Generate(har::Activity::kRun, 40);

  core::DistillationTask distill;
  distill.features = old_support.features();
  distill.teacher_embeddings =
      core::EmbedBatched(model, old_support.features());
  distill.alpha = 0.5f;
  distill.batch_size = 64;

  core::TrainerOptions options;
  options.max_epochs = 1;  // one epoch per iteration
  options.batch_size = 64;
  options.batches_per_epoch = 12;
  options.freeze_batchnorm_stats = true;
  options.early_stop_patience = 1000;

  for (auto _ : state) {
    losses::PairSampler train_sampler(
        old_support.features(), old_support.labels(), d_new.features(),
        d_new.labels(), losses::PairStrategy::kCrossAndNew, 7);
    losses::PairSampler val_sampler(
        old_support.features(), old_support.labels(), d_new.features(),
        d_new.labels(), losses::PairStrategy::kCrossAndNew, 8);
    core::SiameseTrainer trainer(model, options);
    core::TrainReport report =
        trainer.Train(train_sampler, val_sampler, &distill);
    benchmark::DoNotOptimize(report.final_train_loss);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalTrainingEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pilote

// Custom main: google-benchmark rejects flags it does not know, so the
// observability flags (--metrics-json=PATH, --trace-out=PATH) must be
// stripped from argv before Initialize sees them.
int main(int argc, char** argv) {
  argc = pilote::obs::ConsumeMetricsFlags(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
