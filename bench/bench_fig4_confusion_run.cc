// Regenerates Figure 4 of the paper (Sec 6.2, Q1): confusion matrices of
// the three models when the new activity is 'Run', with 200 exemplars per
// class in the support set. The paper's qualitative claim: the re-trained
// model floods 'Run' with false positives at the expense of 'Walk';
// PILOTE keeps the two apart.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace pilote {
namespace bench {
namespace {

void PrintConfusion(const std::string& title, core::EdgeLearner& learner,
                    const data::Dataset& test) {
  std::vector<int> classes;
  std::vector<std::string> names;
  for (har::Activity activity : har::AllActivities()) {
    classes.push_back(har::ActivityLabel(activity));
    names.emplace_back(har::ActivityName(activity));
  }
  eval::ConfusionMatrix cm(classes);
  cm.AddAll(test.labels(), learner.Predict(test.features()));
  std::printf("--- %s (accuracy %.4f) ---\n%s\n", title.c_str(),
              cm.OverallAccuracy(), cm.ToString(names).c_str());
  // The paper's focal cells: Walk predicted as Run, and Run recall.
  std::printf("Walk->Run rate: %.3f   Run recall: %.3f\n\n",
              cm.rate(har::ActivityLabel(har::Activity::kWalk),
                      har::ActivityLabel(har::Activity::kRun)),
              cm.rate(har::ActivityLabel(har::Activity::kRun),
                      har::ActivityLabel(har::Activity::kRun)));
  std::fflush(stdout);
}

void Run(const BenchConfig& config) {
  std::printf(
      "Figure 4: confusion matrices, new class 'Run', %lld exemplars/class\n\n",
      static_cast<long long>(config.pilote.exemplars_per_class));
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  LearnerRun pretrained =
      RunLearner("pretrained", cloud.artifact, config, scenario, 1);
  LearnerRun retrained =
      RunLearner("retrained", cloud.artifact, config, scenario, 1);
  LearnerRun pilote =
      RunLearner("pilote", cloud.artifact, config, scenario, 1);

  PrintConfusion("Pre-trained model", *pretrained.learner, scenario.test);
  PrintConfusion("Re-trained model", *retrained.learner, scenario.test);
  PrintConfusion("PILOTE", *pilote.learner, scenario.test);

  std::printf(
      "Expected shape (paper): all confusion concentrates on the Run/Walk\n"
      "pair; the pre-trained model sends most 'Run' windows to 'Walk',\n"
      "and the adapted models trade some Walk->Run false positives for\n"
      "Run recall (in the paper the re-trained model floods Run with\n"
      "Walk false positives; on this substrate the flood shows up at\n"
      "smaller support budgets — see bench_fig6).\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
