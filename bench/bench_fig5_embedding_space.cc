// Regenerates Figure 5 of the paper (Sec 6.2, Q1): the embedding spaces of
// the three models with 'Run' held out of pre-training, rendered as a 2-D
// PCA projection (ASCII scatter of class centroids plus a density map) and
// quantified with cluster-separation statistics. The paper's visual claim:
// the re-trained model separates Run/Walk better than the pre-trained one
// but with a blurrier boundary than PILOTE.
#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/pca.h"

namespace pilote {
namespace bench {
namespace {

constexpr int kPlotWidth = 56;
constexpr int kPlotHeight = 20;

// One character per activity: D, E, R, S, W.
char ClassGlyph(int label) {
  switch (static_cast<har::Activity>(label)) {
    case har::Activity::kDrive:
      return 'D';
    case har::Activity::kEscooter:
      return 'E';
    case har::Activity::kRun:
      return 'R';
    case har::Activity::kStill:
      return 'S';
    case har::Activity::kWalk:
      return 'W';
  }
  return '?';
}

// ASCII scatter of the projected embedding: majority class glyph per cell
// (lower-case when contested), '*' marks centroids.
void PlotProjection(const Tensor& projected, const std::vector<int>& labels) {
  float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
  for (int64_t i = 0; i < projected.rows(); ++i) {
    min_x = std::min(min_x, projected(i, 0));
    max_x = std::max(max_x, projected(i, 0));
    min_y = std::min(min_y, projected(i, 1));
    max_y = std::max(max_y, projected(i, 1));
  }
  const float dx = std::max(1e-6f, max_x - min_x);
  const float dy = std::max(1e-6f, max_y - min_y);

  // Per-cell class histogram.
  std::vector<std::array<int, har::kNumActivities>> cells(
      static_cast<size_t>(kPlotWidth * kPlotHeight));
  for (auto& cell : cells) cell.fill(0);
  for (int64_t i = 0; i < projected.rows(); ++i) {
    const int cx = std::min(kPlotWidth - 1,
                            static_cast<int>((projected(i, 0) - min_x) / dx *
                                             kPlotWidth));
    const int cy = std::min(kPlotHeight - 1,
                            static_cast<int>((projected(i, 1) - min_y) / dy *
                                             kPlotHeight));
    ++cells[static_cast<size_t>(cy * kPlotWidth + cx)]
           [static_cast<size_t>(labels[static_cast<size_t>(i)])];
  }

  for (int y = kPlotHeight - 1; y >= 0; --y) {
    std::string line(kPlotWidth, ' ');
    for (int x = 0; x < kPlotWidth; ++x) {
      const auto& cell = cells[static_cast<size_t>(y * kPlotWidth + x)];
      int best = -1;
      int best_count = 0;
      int total = 0;
      for (int c = 0; c < har::kNumActivities; ++c) {
        total += cell[static_cast<size_t>(c)];
        if (cell[static_cast<size_t>(c)] > best_count) {
          best_count = cell[static_cast<size_t>(c)];
          best = c;
        }
      }
      if (total == 0) continue;
      char glyph = ClassGlyph(best);
      if (best_count * 2 <= total) {
        glyph = static_cast<char>(std::tolower(glyph));  // contested cell
      }
      line[static_cast<size_t>(x)] = glyph;
    }
    std::printf("  |%s|\n", line.c_str());
  }
  std::printf("  (D=Drive E=E-scooter R=Run S=Still W=Walk; lower-case =\n"
              "   contested cell)\n");
}

void Analyze(const std::string& title, core::EdgeLearner& learner,
             const data::Dataset& test) {
  Tensor embeddings = learner.EmbedRaw(test.features());
  eval::Pca pca(embeddings, 2);
  Tensor projected = pca.Transform(embeddings);
  eval::ClusterSeparation sep =
      eval::ComputeClusterSeparation(embeddings, test.labels());

  std::printf("--- %s ---\n", title.c_str());
  PlotProjection(projected, test.labels());
  std::printf(
      "  within-class scatter: %8.3f | between-class: %8.3f\n"
      "  fisher ratio:        %8.3f | min centroid dist: %6.3f\n"
      "  PCA explained variance: %.2f + %.2f\n\n",
      sep.within_class_scatter, sep.between_class_scatter, sep.fisher_ratio,
      sep.min_centroid_distance, pca.explained_variance_ratio()[0],
      pca.explained_variance_ratio()[1]);
  std::fflush(stdout);
}

void Run(const BenchConfig& config) {
  std::printf(
      "Figure 5: embedding-space visualization ('Run' excluded from\n"
      "pre-training, %lld representative exemplars per class)\n\n",
      static_cast<long long>(config.pilote.exemplars_per_class));
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  LearnerRun pretrained =
      RunLearner("pretrained", cloud.artifact, config, scenario, 1);
  LearnerRun retrained =
      RunLearner("retrained", cloud.artifact, config, scenario, 1);
  LearnerRun pilote =
      RunLearner("pilote", cloud.artifact, config, scenario, 1);

  Analyze("Pre-trained model", *pretrained.learner, scenario.test);
  Analyze("Re-trained model", *retrained.learner, scenario.test);
  Analyze("PILOTE", *pilote.learner, scenario.test);

  std::printf(
      "Expected shape (paper): under the pre-trained model the unseen\n"
      "'Run' collapses onto 'Walk' (min centroid distance near zero);\n"
      "both adapted models pull the two apart, and PILOTE does so while\n"
      "keeping the old-class geometry (within-class scatter and cluster\n"
      "positions) closest to the pre-trained space.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
