// Serving-layer benchmark: replays M simulated device streams through the
// SessionManager and compares cross-stream batching (one backbone GEMM for
// K windows) against the batch-1 baseline on the same build. Prints
// windows/s per configuration, the batched speedup, request-latency
// percentiles, and the devices-per-core headroom (a device produces one
// 1 s window per second, so windows/s == concurrently servable devices).
//
// Flags:
//   --devices=N     simulated device streams        (default 8)
//   --windows=N     feature windows per device      (default 200)
//   --max-batch=N   batched-pass coalescing limit   (default 16)
//   --threads=N     ingest threads                  (default 4)
//   --small         test-sized backbone instead of the paper's
//   --bench-json=PATH  write machine-readable results (alloc accounting
//                      and throughput) for tools/check_bench_regression.py
//   --metrics-json=PATH / --trace-out=PATH  (see obs/export.h)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "nn/backbone.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serialize/io.h"
#include "serve/session_manager.h"
#include "tensor/tensor.h"

namespace {

using pilote::Rng;
using pilote::Shape;
using pilote::Tensor;

struct BenchArgs {
  int devices = 8;
  int windows = 200;
  int max_batch = 16;
  int threads = 4;
  bool small = false;  // --small: test-sized backbone for smoke runs
  std::string bench_json;  // --bench-json=PATH: results written as JSON
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--devices=", 0) == 0) {
      args.devices = std::atoi(arg.c_str() + std::strlen("--devices="));
    } else if (arg.rfind("--windows=", 0) == 0) {
      args.windows = std::atoi(arg.c_str() + std::strlen("--windows="));
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      args.max_batch = std::atoi(arg.c_str() + std::strlen("--max-batch="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else if (arg == "--small") {
      args.small = true;
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      args.bench_json = arg.substr(std::strlen("--bench-json="));
    } else {
      std::fprintf(stderr, "warning: unknown flag %s\n", arg.c_str());
    }
  }
  PILOTE_CHECK_GT(args.devices, 0);
  PILOTE_CHECK_GT(args.windows, 0);
  PILOTE_CHECK_GT(args.max_batch, 0);
  PILOTE_CHECK_GT(args.threads, 0);
  return args;
}

// A cloud artifact without the cloud: randomly initialized backbone and
// synthetic exemplar clusters. Throughput depends only on tensor shapes,
// not on learned weights.
pilote::core::CloudArtifact MakeArtifact(
    const pilote::core::PiloteConfig& config) {
  Rng rng(20230901);
  pilote::nn::MlpBackbone model(config.backbone, rng);
  pilote::core::CloudArtifact artifact;
  artifact.backbone_config = config.backbone;
  artifact.model_payload = pilote::serialize::SerializeModuleToString(model);
  const int64_t input_dim = config.backbone.input_dim;
  artifact.scaler.Fit(Tensor::RandNormal(Shape::Matrix(128, input_dim), rng));
  for (int label = 0; label < 4; ++label) {
    Tensor exemplars =
        Tensor::RandNormal(Shape::Matrix(16, input_dim), rng,
                           /*mean=*/static_cast<float>(2 * label), 0.25f);
    artifact.support.SetClassExemplars(label,
                                       artifact.scaler.Transform(exemplars));
    artifact.old_classes.push_back(label);
  }
  return artifact;
}

struct PassResult {
  double seconds = 0.0;
  int64_t classified = 0;
  int64_t batches = 0;
  int64_t flush_allocs = 0;  // worker-thread allocations across flushes
  pilote::obs::HistogramSnapshot request_ms;

  double WindowsPerSecond() const {
    return static_cast<double>(classified) / seconds;
  }
  double MeanBatch() const {
    return batches > 0
               ? static_cast<double>(classified) / static_cast<double>(batches)
               : 0.0;
  }
  // Steady-state heap allocations per classified window on the serve
  // worker (flush scratch + batched predict); the quantity the hot-path
  // lint and the alloc-pin test keep honest.
  double AllocsPerWindow() const {
    return classified > 0 ? static_cast<double>(flush_allocs) /
                                static_cast<double>(classified)
                          : 0.0;
  }
};

// Replays every device's pre-extracted feature windows through one
// SessionManager configured with `max_batch`. Windows are submitted
// asynchronously (SubmitWindow) from `threads` ingest threads — the
// serving shape where independent devices produce windows concurrently —
// and all futures are resolved before the clock stops.
PassResult RunPass(const BenchArgs& args,
                   const std::shared_ptr<pilote::serve::LearnerHandle>& handle,
                   const pilote::core::StreamingOptions& streaming,
                   const std::vector<std::vector<Tensor>>& device_windows,
                   int max_batch) {
  pilote::serve::ServeOptions options;
  options.max_batch = max_batch;
  options.max_delay_us = 2000;
  options.queue_capacity =
      static_cast<int64_t>(args.devices) * args.windows + 16;
  pilote::serve::SessionManager manager(options);

  std::vector<pilote::serve::SessionId> ids;
  for (int d = 0; d < args.devices; ++d) {
    pilote::Result<pilote::serve::SessionId> id =
        manager.CreateSession(handle, streaming);
    PILOTE_CHECK(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }

  pilote::obs::Histogram& request_hist =
      pilote::obs::MetricsRegistry::Global().GetHistogram("serve/request_ms");
  pilote::obs::Counter& batch_count =
      pilote::obs::MetricsRegistry::Global().GetCounter("serve/batches");
  pilote::obs::Counter& flush_allocs =
      pilote::obs::MetricsRegistry::Global().GetCounter("serve/flush_allocs");
  const pilote::obs::HistogramSnapshot hist_before = request_hist.Snapshot();
  const int64_t batches_before = batch_count.value();
  const int64_t allocs_before = flush_allocs.value();
  // Arms the global operator-new interposer so the worker thread reports
  // its per-flush allocation counts through serve/flush_allocs.
  pilote::alloc::ScopedTracking track_allocs;

  std::atomic<int64_t> classified{0};
  pilote::WallTimer timer;
  std::vector<std::thread> ingest;
  for (int t = 0; t < args.threads; ++t) {
    ingest.emplace_back([&, t] {
      std::vector<std::future<int>> futures;
      for (int d = t; d < args.devices; d += args.threads) {
        for (const Tensor& window : device_windows[static_cast<size_t>(d)]) {
          while (true) {
            pilote::Result<std::future<int>> f =
                manager.SubmitWindow(ids[static_cast<size_t>(d)], window);
            if (f.ok()) {
              futures.push_back(std::move(f).value());
              break;
            }
            PILOTE_CHECK(f.status().code() ==
                         pilote::StatusCode::kResourceExhausted)
                << f.status().ToString();
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
      }
      for (std::future<int>& f : futures) {
        if (f.get() >= 0) classified.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : ingest) thread.join();

  PassResult result;
  result.seconds = timer.ElapsedSeconds();
  result.classified = classified.load();
  result.batches = batch_count.value() - batches_before;
  result.flush_allocs = flush_allocs.value() - allocs_before;
  result.request_ms =
      pilote::obs::Delta(hist_before, request_hist.Snapshot());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pilote::obs::ConsumeMetricsFlags(argc, argv);
  const BenchArgs args = ParseArgs(argc, argv);
  pilote::obs::ScopedEnable metrics_enabled;

  // The deployment-shaped workload is the paper's [1024,512,128,64]->128
  // backbone; --small swaps in the test-sized one for sanitizer smoke runs.
  pilote::core::PiloteConfig config = pilote::core::PiloteConfig::Small();
  if (!args.small) config.backbone = pilote::nn::BackboneConfig::Paper();
  pilote::Result<std::shared_ptr<pilote::serve::LearnerHandle>> handle =
      pilote::serve::LearnerHandle::Create("pretrained", MakeArtifact(config),
                                           config);
  PILOTE_CHECK(handle.ok()) << handle.status().ToString();

  // Pre-extract every device's feature windows so both passes replay the
  // identical classification workload (window assembly is not measured).
  Rng rng(99);
  std::vector<std::vector<Tensor>> device_windows(
      static_cast<size_t>(args.devices));
  for (auto& windows : device_windows) {
    windows.reserve(static_cast<size_t>(args.windows));
    for (int w = 0; w < args.windows; ++w) {
      windows.push_back(Tensor::RandNormal(
          Shape::Matrix(1, config.backbone.input_dim), rng));
    }
  }

  std::printf("serving benchmark: %d devices x %d windows, %d ingest threads\n",
              args.devices, args.windows, args.threads);
  const int64_t total = static_cast<int64_t>(args.devices) * args.windows;

  PassResult unbatched = RunPass(args, handle.value(), config.streaming,
                                 device_windows, /*max_batch=*/1);
  PILOTE_CHECK_EQ(unbatched.classified, total);
  PassResult batched = RunPass(args, handle.value(), config.streaming,
                               device_windows, args.max_batch);
  PILOTE_CHECK_EQ(batched.classified, total);

  // The same two workloads with the compiled plan disabled: every predict
  // walks the eager tape. The plan-vs-eager deltas below quantify what
  // compilation buys the serve loop on identical inputs.
  handle.value()->SetCompiledInferenceEnabled(false);
  PassResult eager_unbatched = RunPass(args, handle.value(), config.streaming,
                                       device_windows, /*max_batch=*/1);
  PILOTE_CHECK_EQ(eager_unbatched.classified, total);
  PassResult eager_batched = RunPass(args, handle.value(), config.streaming,
                                     device_windows, args.max_batch);
  PILOTE_CHECK_EQ(eager_batched.classified, total);
  handle.value()->SetCompiledInferenceEnabled(true);

  const double speedup =
      batched.WindowsPerSecond() / unbatched.WindowsPerSecond();
  const double plan_speedup_batch1 =
      unbatched.WindowsPerSecond() / eager_unbatched.WindowsPerSecond();
  const double plan_speedup_batched =
      batched.WindowsPerSecond() / eager_batched.WindowsPerSecond();
  std::printf("\n%-12s %12s %12s %10s %10s %10s %10s %11s\n", "config",
              "windows/s", "mean batch", "p50 ms", "p95 ms", "p99 ms",
              "p999 ms", "allocs/win");
  std::printf("%-12s %12.0f %12.2f %10.3f %10.3f %10.3f %10.3f %11.1f\n",
              "batch=1", unbatched.WindowsPerSecond(), unbatched.MeanBatch(),
              unbatched.request_ms.Percentile(0.50),
              unbatched.request_ms.Percentile(0.95),
              unbatched.request_ms.Percentile(0.99),
              unbatched.request_ms.Percentile(0.999),
              unbatched.AllocsPerWindow());
  std::printf("%-12s %12.0f %12.2f %10.3f %10.3f %10.3f %10.3f %11.1f\n",
              ("batch=" + std::to_string(args.max_batch)).c_str(),
              batched.WindowsPerSecond(), batched.MeanBatch(),
              batched.request_ms.Percentile(0.50),
              batched.request_ms.Percentile(0.95),
              batched.request_ms.Percentile(0.99),
              batched.request_ms.Percentile(0.999),
              batched.AllocsPerWindow());
  std::printf("%-12s %12.0f %12.2f %10.3f %10.3f %10.3f %10.3f %11.1f\n",
              "eager b=1", eager_unbatched.WindowsPerSecond(),
              eager_unbatched.MeanBatch(),
              eager_unbatched.request_ms.Percentile(0.50),
              eager_unbatched.request_ms.Percentile(0.95),
              eager_unbatched.request_ms.Percentile(0.99),
              eager_unbatched.request_ms.Percentile(0.999),
              eager_unbatched.AllocsPerWindow());
  std::printf("%-12s %12.0f %12.2f %10.3f %10.3f %10.3f %10.3f %11.1f\n",
              ("eager b=" + std::to_string(args.max_batch)).c_str(),
              eager_batched.WindowsPerSecond(), eager_batched.MeanBatch(),
              eager_batched.request_ms.Percentile(0.50),
              eager_batched.request_ms.Percentile(0.95),
              eager_batched.request_ms.Percentile(0.99),
              eager_batched.request_ms.Percentile(0.999),
              eager_batched.AllocsPerWindow());
  std::printf("\nbatched speedup: %.2fx\n", speedup);
  std::printf("compiled-plan speedup over eager: %.2fx at batch 1, %.2fx "
              "batched\n",
              plan_speedup_batch1, plan_speedup_batched);
  std::printf(
      "devices servable per core (1 s windows): %.0f unbatched, %.0f "
      "batched\n",
      unbatched.WindowsPerSecond(), batched.WindowsPerSecond());

  if (!args.bench_json.empty()) {
    // Hand-rolled JSON, same style as obs/export. The alloc figures are
    // the regression-gated quantities; the throughput fields are
    // informational (machine-dependent).
    std::FILE* f = std::fopen(args.bench_json.c_str(), "w");
    PILOTE_CHECK(f != nullptr) << "cannot write " << args.bench_json;
    // The per-flush counts are gated by the regression check (they do
    // not depend on scheduling); the batched per-window rate varies with
    // the achieved batch size, so it is exported under a non-gated name.
    // The exec_eager_* rows replay the same workload with the compiled
    // plan disabled; the exec_plan_speedup_* ratios are the before/after
    // throughput delta of compilation (machine-dependent, informational).
    std::fprintf(f,
                 "{\n"
                 "  \"allocs_per_window_batch1\": %.3f,\n"
                 "  \"batched_window_alloc_rate\": %.3f,\n"
                 "  \"allocs_per_flush_batch1\": %.3f,\n"
                 "  \"allocs_per_flush_batched\": %.3f,\n"
                 "  \"exec_eager_allocs_per_window_batch1\": %.3f,\n"
                 "  \"exec_eager_window_alloc_rate\": %.3f,\n"
                 "  \"windows_per_s_batch1\": %.1f,\n"
                 "  \"windows_per_s_batched\": %.1f,\n"
                 "  \"exec_eager_windows_per_s_batch1\": %.1f,\n"
                 "  \"exec_eager_windows_per_s_batched\": %.1f,\n"
                 "  \"batched_speedup\": %.3f,\n"
                 "  \"exec_plan_speedup_batch1\": %.3f,\n"
                 "  \"exec_plan_speedup_batched\": %.3f,\n"
                 "  \"request_p99_ms_batch1\": %.4f,\n"
                 "  \"request_p999_ms_batch1\": %.4f,\n"
                 "  \"request_p99_ms_batched\": %.4f,\n"
                 "  \"request_p999_ms_batched\": %.4f\n"
                 "}\n",
                 unbatched.AllocsPerWindow(), batched.AllocsPerWindow(),
                 unbatched.batches > 0
                     ? static_cast<double>(unbatched.flush_allocs) /
                           static_cast<double>(unbatched.batches)
                     : 0.0,
                 batched.batches > 0
                     ? static_cast<double>(batched.flush_allocs) /
                           static_cast<double>(batched.batches)
                     : 0.0,
                 eager_unbatched.AllocsPerWindow(),
                 eager_batched.AllocsPerWindow(),
                 unbatched.WindowsPerSecond(), batched.WindowsPerSecond(),
                 eager_unbatched.WindowsPerSecond(),
                 eager_batched.WindowsPerSecond(), speedup,
                 plan_speedup_batch1, plan_speedup_batched,
                 unbatched.request_ms.Percentile(0.99),
                 unbatched.request_ms.Percentile(0.999),
                 batched.request_ms.Percentile(0.99),
                 batched.request_ms.Percentile(0.999));
    std::fclose(f);
    std::printf("bench json written to %s\n", args.bench_json.c_str());
  }
  return 0;
}
