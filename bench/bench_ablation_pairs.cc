// Ablation of PILOTE's pair reduction (Sec 5.2): the paper argues that
// because distillation pins the old-class structure, the contrastive term
// only needs (old x new) cross pairs plus (new x new) pairs — C(n_t, 2) +
// |D_o|*|D_n| candidates instead of all pairs over the union. This bench
// compares the reduced pool against all-pairs on accuracy, candidate-pool
// size and wall-clock.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "losses/pair_sampler.h"

namespace pilote {
namespace bench {
namespace {

const char* StrategyName(losses::PairStrategy strategy) {
  switch (strategy) {
    case losses::PairStrategy::kCrossAndNew:
      return "cross+new (reduced)";
    case losses::PairStrategy::kAllPairs:
      return "all pairs";
    case losses::PairStrategy::kBalancedRandom:
      return "balanced random";
  }
  return "?";
}

void Run(BenchConfig config) {
  std::printf("Ablation: incremental pair strategy (new class 'Run', %d rounds)\n\n",
              config.rounds);
  ScenarioData scenario = MakeScenario(config, har::Activity::kRun);
  core::CloudPretrainResult cloud = Pretrain(config, scenario);

  // Candidate-pool sizes for the paper's complexity claim.
  data::Dataset old_support = cloud.artifact.support.ToDataset();
  for (losses::PairStrategy strategy :
       {losses::PairStrategy::kCrossAndNew, losses::PairStrategy::kAllPairs}) {
    losses::PairSampler sampler(old_support.features(), old_support.labels(),
                                scenario.d_new.features(),
                                scenario.d_new.labels(), strategy, 1);
    std::printf("candidate pairs [%s]: %lld\n", StrategyName(strategy),
                static_cast<long long>(sampler.CandidatePairCount()));
  }
  std::printf("\n%-22s | %-19s | %-10s | %-10s\n", "strategy", "accuracy",
              "epochs", "s/epoch");

  for (losses::PairStrategy strategy :
       {losses::PairStrategy::kCrossAndNew, losses::PairStrategy::kAllPairs}) {
    BenchConfig point = config;
    point.pilote.incremental_pairs = strategy;
    std::vector<double> accuracy;
    std::vector<double> epochs;
    std::vector<double> epoch_seconds;
    for (int round = 0; round < config.rounds; ++round) {
      const uint64_t seed = 5000 + 43 * static_cast<uint64_t>(round);
      LearnerRun run =
          RunLearner("pilote", cloud.artifact, point, scenario, seed);
      accuracy.push_back(run.accuracy);
      epochs.push_back(run.report.epochs_completed);
      epoch_seconds.push_back(run.report.mean_epoch_seconds);
    }
    std::printf("%-22s | %-19s | %-10.1f | %-10.4f\n", StrategyName(strategy),
                FormatMeanStd(accuracy).c_str(),
                eval::Summarize(epochs).mean,
                eval::Summarize(epoch_seconds).mean);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: the reduced pool matches (or beats) all-pairs\n"
      "accuracy while sampling from a candidate set that is orders of\n"
      "magnitude smaller — the distillation term already pins old-old\n"
      "structure, so old-old pairs add no signal.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pilote

int main(int argc, char** argv) {
  pilote::WallTimer timer;
  pilote::bench::Run(pilote::bench::BenchConfig::FromArgs(argc, argv));
  std::printf("[total %.1fs]\n", timer.ElapsedSeconds());
  return 0;
}
