file(REMOVE_RECURSE
  "CMakeFiles/incremental_new_activity.dir/incremental_new_activity.cpp.o"
  "CMakeFiles/incremental_new_activity.dir/incremental_new_activity.cpp.o.d"
  "incremental_new_activity"
  "incremental_new_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_new_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
