# Empty dependencies file for incremental_new_activity.
# This may be replaced when dependencies are built.
