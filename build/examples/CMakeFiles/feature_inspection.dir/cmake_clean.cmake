file(REMOVE_RECURSE
  "CMakeFiles/feature_inspection.dir/feature_inspection.cpp.o"
  "CMakeFiles/feature_inspection.dir/feature_inspection.cpp.o.d"
  "feature_inspection"
  "feature_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
