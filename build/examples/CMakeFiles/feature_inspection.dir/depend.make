# Empty dependencies file for feature_inspection.
# This may be replaced when dependencies are built.
