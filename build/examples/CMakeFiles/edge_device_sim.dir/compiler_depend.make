# Empty compiler generated dependencies file for edge_device_sim.
# This may be replaced when dependencies are built.
