file(REMOVE_RECURSE
  "CMakeFiles/edge_device_sim.dir/edge_device_sim.cpp.o"
  "CMakeFiles/edge_device_sim.dir/edge_device_sim.cpp.o.d"
  "edge_device_sim"
  "edge_device_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_device_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
