file(REMOVE_RECURSE
  "CMakeFiles/continual_stream.dir/continual_stream.cpp.o"
  "CMakeFiles/continual_stream.dir/continual_stream.cpp.o.d"
  "continual_stream"
  "continual_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
