# Empty compiler generated dependencies file for continual_stream.
# This may be replaced when dependencies are built.
