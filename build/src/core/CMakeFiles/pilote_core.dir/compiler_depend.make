# Empty compiler generated dependencies file for pilote_core.
# This may be replaced when dependencies are built.
