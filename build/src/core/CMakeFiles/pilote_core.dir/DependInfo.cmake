
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/artifact_io.cc" "src/core/CMakeFiles/pilote_core.dir/artifact_io.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/artifact_io.cc.o.d"
  "/root/repo/src/core/cloud.cc" "src/core/CMakeFiles/pilote_core.dir/cloud.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/cloud.cc.o.d"
  "/root/repo/src/core/edge_learner.cc" "src/core/CMakeFiles/pilote_core.dir/edge_learner.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/edge_learner.cc.o.d"
  "/root/repo/src/core/edge_profile.cc" "src/core/CMakeFiles/pilote_core.dir/edge_profile.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/edge_profile.cc.o.d"
  "/root/repo/src/core/embedding.cc" "src/core/CMakeFiles/pilote_core.dir/embedding.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/embedding.cc.o.d"
  "/root/repo/src/core/exemplar_selector.cc" "src/core/CMakeFiles/pilote_core.dir/exemplar_selector.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/exemplar_selector.cc.o.d"
  "/root/repo/src/core/ncm_classifier.cc" "src/core/CMakeFiles/pilote_core.dir/ncm_classifier.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/ncm_classifier.cc.o.d"
  "/root/repo/src/core/streaming_classifier.cc" "src/core/CMakeFiles/pilote_core.dir/streaming_classifier.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/streaming_classifier.cc.o.d"
  "/root/repo/src/core/support_set.cc" "src/core/CMakeFiles/pilote_core.dir/support_set.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/support_set.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/pilote_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/pilote_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pilote_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pilote_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/losses/CMakeFiles/pilote_losses.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pilote_data.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/pilote_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pilote_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/har/CMakeFiles/pilote_har.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/pilote_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pilote_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
