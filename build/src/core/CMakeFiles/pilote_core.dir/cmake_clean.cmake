file(REMOVE_RECURSE
  "CMakeFiles/pilote_core.dir/artifact_io.cc.o"
  "CMakeFiles/pilote_core.dir/artifact_io.cc.o.d"
  "CMakeFiles/pilote_core.dir/cloud.cc.o"
  "CMakeFiles/pilote_core.dir/cloud.cc.o.d"
  "CMakeFiles/pilote_core.dir/edge_learner.cc.o"
  "CMakeFiles/pilote_core.dir/edge_learner.cc.o.d"
  "CMakeFiles/pilote_core.dir/edge_profile.cc.o"
  "CMakeFiles/pilote_core.dir/edge_profile.cc.o.d"
  "CMakeFiles/pilote_core.dir/embedding.cc.o"
  "CMakeFiles/pilote_core.dir/embedding.cc.o.d"
  "CMakeFiles/pilote_core.dir/exemplar_selector.cc.o"
  "CMakeFiles/pilote_core.dir/exemplar_selector.cc.o.d"
  "CMakeFiles/pilote_core.dir/ncm_classifier.cc.o"
  "CMakeFiles/pilote_core.dir/ncm_classifier.cc.o.d"
  "CMakeFiles/pilote_core.dir/streaming_classifier.cc.o"
  "CMakeFiles/pilote_core.dir/streaming_classifier.cc.o.d"
  "CMakeFiles/pilote_core.dir/support_set.cc.o"
  "CMakeFiles/pilote_core.dir/support_set.cc.o.d"
  "CMakeFiles/pilote_core.dir/trainer.cc.o"
  "CMakeFiles/pilote_core.dir/trainer.cc.o.d"
  "libpilote_core.a"
  "libpilote_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
