file(REMOVE_RECURSE
  "libpilote_core.a"
)
