# Empty dependencies file for pilote_optim.
# This may be replaced when dependencies are built.
