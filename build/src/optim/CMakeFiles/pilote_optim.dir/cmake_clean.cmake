file(REMOVE_RECURSE
  "CMakeFiles/pilote_optim.dir/adam.cc.o"
  "CMakeFiles/pilote_optim.dir/adam.cc.o.d"
  "CMakeFiles/pilote_optim.dir/optimizer.cc.o"
  "CMakeFiles/pilote_optim.dir/optimizer.cc.o.d"
  "CMakeFiles/pilote_optim.dir/sgd.cc.o"
  "CMakeFiles/pilote_optim.dir/sgd.cc.o.d"
  "libpilote_optim.a"
  "libpilote_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
