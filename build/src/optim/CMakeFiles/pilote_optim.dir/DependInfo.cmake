
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adam.cc" "src/optim/CMakeFiles/pilote_optim.dir/adam.cc.o" "gcc" "src/optim/CMakeFiles/pilote_optim.dir/adam.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/optim/CMakeFiles/pilote_optim.dir/optimizer.cc.o" "gcc" "src/optim/CMakeFiles/pilote_optim.dir/optimizer.cc.o.d"
  "/root/repo/src/optim/sgd.cc" "src/optim/CMakeFiles/pilote_optim.dir/sgd.cc.o" "gcc" "src/optim/CMakeFiles/pilote_optim.dir/sgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/pilote_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pilote_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
