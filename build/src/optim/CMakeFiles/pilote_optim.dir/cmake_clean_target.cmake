file(REMOVE_RECURSE
  "libpilote_optim.a"
)
