
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/har/feature_extractor.cc" "src/har/CMakeFiles/pilote_har.dir/feature_extractor.cc.o" "gcc" "src/har/CMakeFiles/pilote_har.dir/feature_extractor.cc.o.d"
  "/root/repo/src/har/har_dataset.cc" "src/har/CMakeFiles/pilote_har.dir/har_dataset.cc.o" "gcc" "src/har/CMakeFiles/pilote_har.dir/har_dataset.cc.o.d"
  "/root/repo/src/har/preprocessing.cc" "src/har/CMakeFiles/pilote_har.dir/preprocessing.cc.o" "gcc" "src/har/CMakeFiles/pilote_har.dir/preprocessing.cc.o.d"
  "/root/repo/src/har/sensor_simulator.cc" "src/har/CMakeFiles/pilote_har.dir/sensor_simulator.cc.o" "gcc" "src/har/CMakeFiles/pilote_har.dir/sensor_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/pilote_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pilote_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
