# Empty compiler generated dependencies file for pilote_har.
# This may be replaced when dependencies are built.
