file(REMOVE_RECURSE
  "CMakeFiles/pilote_har.dir/feature_extractor.cc.o"
  "CMakeFiles/pilote_har.dir/feature_extractor.cc.o.d"
  "CMakeFiles/pilote_har.dir/har_dataset.cc.o"
  "CMakeFiles/pilote_har.dir/har_dataset.cc.o.d"
  "CMakeFiles/pilote_har.dir/preprocessing.cc.o"
  "CMakeFiles/pilote_har.dir/preprocessing.cc.o.d"
  "CMakeFiles/pilote_har.dir/sensor_simulator.cc.o"
  "CMakeFiles/pilote_har.dir/sensor_simulator.cc.o.d"
  "libpilote_har.a"
  "libpilote_har.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_har.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
