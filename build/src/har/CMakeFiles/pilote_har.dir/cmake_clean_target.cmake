file(REMOVE_RECURSE
  "libpilote_har.a"
)
