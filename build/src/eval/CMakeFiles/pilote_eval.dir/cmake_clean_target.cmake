file(REMOVE_RECURSE
  "libpilote_eval.a"
)
