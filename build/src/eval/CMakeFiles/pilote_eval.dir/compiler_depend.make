# Empty compiler generated dependencies file for pilote_eval.
# This may be replaced when dependencies are built.
