file(REMOVE_RECURSE
  "CMakeFiles/pilote_eval.dir/metrics.cc.o"
  "CMakeFiles/pilote_eval.dir/metrics.cc.o.d"
  "CMakeFiles/pilote_eval.dir/pca.cc.o"
  "CMakeFiles/pilote_eval.dir/pca.cc.o.d"
  "libpilote_eval.a"
  "libpilote_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
