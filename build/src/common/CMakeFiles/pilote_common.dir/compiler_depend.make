# Empty compiler generated dependencies file for pilote_common.
# This may be replaced when dependencies are built.
