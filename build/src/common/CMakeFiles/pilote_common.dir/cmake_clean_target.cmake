file(REMOVE_RECURSE
  "libpilote_common.a"
)
