file(REMOVE_RECURSE
  "CMakeFiles/pilote_common.dir/logging.cc.o"
  "CMakeFiles/pilote_common.dir/logging.cc.o.d"
  "CMakeFiles/pilote_common.dir/rng.cc.o"
  "CMakeFiles/pilote_common.dir/rng.cc.o.d"
  "CMakeFiles/pilote_common.dir/status.cc.o"
  "CMakeFiles/pilote_common.dir/status.cc.o.d"
  "CMakeFiles/pilote_common.dir/thread_pool.cc.o"
  "CMakeFiles/pilote_common.dir/thread_pool.cc.o.d"
  "libpilote_common.a"
  "libpilote_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
