# Empty compiler generated dependencies file for pilote_autograd.
# This may be replaced when dependencies are built.
