file(REMOVE_RECURSE
  "CMakeFiles/pilote_autograd.dir/ops.cc.o"
  "CMakeFiles/pilote_autograd.dir/ops.cc.o.d"
  "CMakeFiles/pilote_autograd.dir/variable.cc.o"
  "CMakeFiles/pilote_autograd.dir/variable.cc.o.d"
  "libpilote_autograd.a"
  "libpilote_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
