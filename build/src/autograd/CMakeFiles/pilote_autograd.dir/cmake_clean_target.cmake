file(REMOVE_RECURSE
  "libpilote_autograd.a"
)
