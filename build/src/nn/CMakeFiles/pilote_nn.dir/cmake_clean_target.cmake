file(REMOVE_RECURSE
  "libpilote_nn.a"
)
