
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/backbone.cc" "src/nn/CMakeFiles/pilote_nn.dir/backbone.cc.o" "gcc" "src/nn/CMakeFiles/pilote_nn.dir/backbone.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/pilote_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/pilote_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/pilote_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/pilote_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/pilote_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/pilote_nn.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/pilote_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pilote_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
