# Empty compiler generated dependencies file for pilote_nn.
# This may be replaced when dependencies are built.
