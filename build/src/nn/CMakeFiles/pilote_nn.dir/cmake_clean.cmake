file(REMOVE_RECURSE
  "CMakeFiles/pilote_nn.dir/backbone.cc.o"
  "CMakeFiles/pilote_nn.dir/backbone.cc.o.d"
  "CMakeFiles/pilote_nn.dir/batchnorm.cc.o"
  "CMakeFiles/pilote_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/pilote_nn.dir/linear.cc.o"
  "CMakeFiles/pilote_nn.dir/linear.cc.o.d"
  "CMakeFiles/pilote_nn.dir/module.cc.o"
  "CMakeFiles/pilote_nn.dir/module.cc.o.d"
  "libpilote_nn.a"
  "libpilote_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
