file(REMOVE_RECURSE
  "libpilote_data.a"
)
