# Empty dependencies file for pilote_data.
# This may be replaced when dependencies are built.
