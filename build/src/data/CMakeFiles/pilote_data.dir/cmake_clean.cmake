file(REMOVE_RECURSE
  "CMakeFiles/pilote_data.dir/dataset.cc.o"
  "CMakeFiles/pilote_data.dir/dataset.cc.o.d"
  "CMakeFiles/pilote_data.dir/scaler.cc.o"
  "CMakeFiles/pilote_data.dir/scaler.cc.o.d"
  "CMakeFiles/pilote_data.dir/splits.cc.o"
  "CMakeFiles/pilote_data.dir/splits.cc.o.d"
  "libpilote_data.a"
  "libpilote_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
