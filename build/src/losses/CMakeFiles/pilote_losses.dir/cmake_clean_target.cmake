file(REMOVE_RECURSE
  "libpilote_losses.a"
)
