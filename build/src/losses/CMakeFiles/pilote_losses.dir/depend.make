# Empty dependencies file for pilote_losses.
# This may be replaced when dependencies are built.
