file(REMOVE_RECURSE
  "CMakeFiles/pilote_losses.dir/contrastive.cc.o"
  "CMakeFiles/pilote_losses.dir/contrastive.cc.o.d"
  "CMakeFiles/pilote_losses.dir/distillation.cc.o"
  "CMakeFiles/pilote_losses.dir/distillation.cc.o.d"
  "CMakeFiles/pilote_losses.dir/pair_sampler.cc.o"
  "CMakeFiles/pilote_losses.dir/pair_sampler.cc.o.d"
  "libpilote_losses.a"
  "libpilote_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
