file(REMOVE_RECURSE
  "CMakeFiles/pilote_serialize.dir/io.cc.o"
  "CMakeFiles/pilote_serialize.dir/io.cc.o.d"
  "CMakeFiles/pilote_serialize.dir/quantize.cc.o"
  "CMakeFiles/pilote_serialize.dir/quantize.cc.o.d"
  "libpilote_serialize.a"
  "libpilote_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
