file(REMOVE_RECURSE
  "libpilote_serialize.a"
)
