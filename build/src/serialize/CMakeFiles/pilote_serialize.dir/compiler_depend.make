# Empty compiler generated dependencies file for pilote_serialize.
# This may be replaced when dependencies are built.
