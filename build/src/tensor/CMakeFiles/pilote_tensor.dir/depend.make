# Empty dependencies file for pilote_tensor.
# This may be replaced when dependencies are built.
