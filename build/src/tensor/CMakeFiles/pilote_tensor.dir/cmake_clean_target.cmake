file(REMOVE_RECURSE
  "libpilote_tensor.a"
)
