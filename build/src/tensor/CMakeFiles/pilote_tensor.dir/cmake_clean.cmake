file(REMOVE_RECURSE
  "CMakeFiles/pilote_tensor.dir/gemm.cc.o"
  "CMakeFiles/pilote_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/pilote_tensor.dir/tensor.cc.o"
  "CMakeFiles/pilote_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/pilote_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/pilote_tensor.dir/tensor_ops.cc.o.d"
  "libpilote_tensor.a"
  "libpilote_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
