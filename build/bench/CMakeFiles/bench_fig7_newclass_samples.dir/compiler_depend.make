# Empty compiler generated dependencies file for bench_fig7_newclass_samples.
# This may be replaced when dependencies are built.
