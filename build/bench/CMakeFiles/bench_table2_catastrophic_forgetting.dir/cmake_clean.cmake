file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_catastrophic_forgetting.dir/bench_table2_catastrophic_forgetting.cc.o"
  "CMakeFiles/bench_table2_catastrophic_forgetting.dir/bench_table2_catastrophic_forgetting.cc.o.d"
  "bench_table2_catastrophic_forgetting"
  "bench_table2_catastrophic_forgetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_catastrophic_forgetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
