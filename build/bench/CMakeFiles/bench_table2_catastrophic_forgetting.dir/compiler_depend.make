# Empty compiler generated dependencies file for bench_table2_catastrophic_forgetting.
# This may be replaced when dependencies are built.
