# Empty dependencies file for bench_fig4_confusion_run.
# This may be replaced when dependencies are built.
