file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_confusion_run.dir/bench_fig4_confusion_run.cc.o"
  "CMakeFiles/bench_fig4_confusion_run.dir/bench_fig4_confusion_run.cc.o.d"
  "bench_fig4_confusion_run"
  "bench_fig4_confusion_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_confusion_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
