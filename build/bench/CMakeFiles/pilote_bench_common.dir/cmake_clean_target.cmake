file(REMOVE_RECURSE
  "libpilote_bench_common.a"
)
