# Empty compiler generated dependencies file for pilote_bench_common.
# This may be replaced when dependencies are built.
