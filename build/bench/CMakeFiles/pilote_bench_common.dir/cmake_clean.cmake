file(REMOVE_RECURSE
  "CMakeFiles/pilote_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pilote_bench_common.dir/bench_common.cc.o.d"
  "libpilote_bench_common.a"
  "libpilote_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilote_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
