# Empty compiler generated dependencies file for bench_fig5_embedding_space.
# This may be replaced when dependencies are built.
