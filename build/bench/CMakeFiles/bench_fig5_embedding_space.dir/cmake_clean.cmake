file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_embedding_space.dir/bench_fig5_embedding_space.cc.o"
  "CMakeFiles/bench_fig5_embedding_space.dir/bench_fig5_embedding_space.cc.o.d"
  "bench_fig5_embedding_space"
  "bench_fig5_embedding_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_embedding_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
