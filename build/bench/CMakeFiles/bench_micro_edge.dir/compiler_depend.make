# Empty compiler generated dependencies file for bench_micro_edge.
# This may be replaced when dependencies are built.
