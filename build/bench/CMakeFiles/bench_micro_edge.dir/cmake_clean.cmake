file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_edge.dir/bench_micro_edge.cc.o"
  "CMakeFiles/bench_micro_edge.dir/bench_micro_edge.cc.o.d"
  "bench_micro_edge"
  "bench_micro_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
