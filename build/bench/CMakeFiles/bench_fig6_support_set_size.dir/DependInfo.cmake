
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_support_set_size.cc" "bench/CMakeFiles/bench_fig6_support_set_size.dir/bench_fig6_support_set_size.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_support_set_size.dir/bench_fig6_support_set_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pilote_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pilote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pilote_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/losses/CMakeFiles/pilote_losses.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/pilote_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pilote_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/pilote_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pilote_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/har/CMakeFiles/pilote_har.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pilote_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pilote_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pilote_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
