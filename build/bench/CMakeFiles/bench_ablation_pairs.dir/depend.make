# Empty dependencies file for bench_ablation_pairs.
# This may be replaced when dependencies are built.
