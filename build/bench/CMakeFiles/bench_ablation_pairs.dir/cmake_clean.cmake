file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pairs.dir/bench_ablation_pairs.cc.o"
  "CMakeFiles/bench_ablation_pairs.dir/bench_ablation_pairs.cc.o.d"
  "bench_ablation_pairs"
  "bench_ablation_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
