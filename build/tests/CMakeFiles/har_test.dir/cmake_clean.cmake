file(REMOVE_RECURSE
  "CMakeFiles/har_test.dir/har_test.cc.o"
  "CMakeFiles/har_test.dir/har_test.cc.o.d"
  "har_test"
  "har_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
