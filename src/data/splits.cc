#include "data/splits.h"

#include <algorithm>

#include "common/macros.h"

namespace pilote {
namespace data {

TrainTestSplit StratifiedSplit(const Dataset& dataset, double test_fraction,
                               Rng& rng) {
  PILOTE_CHECK(test_fraction >= 0.0 && test_fraction < 1.0)
      << "test_fraction=" << test_fraction;
  std::vector<int64_t> train_indices;
  std::vector<int64_t> test_indices;
  for (int label : dataset.Classes()) {
    std::vector<int64_t> rows;
    for (int64_t i = 0; i < dataset.size(); ++i) {
      if (dataset.label(i) == label) rows.push_back(i);
    }
    rng.Shuffle(rows);
    int64_t n_test = static_cast<int64_t>(
        static_cast<double>(rows.size()) * test_fraction + 0.5);
    if (test_fraction > 0.0 && n_test == 0 && rows.size() >= 2) n_test = 1;
    n_test = std::min<int64_t>(n_test, static_cast<int64_t>(rows.size()) - 1);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (static_cast<int64_t>(i) < n_test) {
        test_indices.push_back(rows[i]);
      } else {
        train_indices.push_back(rows[i]);
      }
    }
  }
  // Keep deterministic row order independent of class iteration interleaving.
  std::sort(train_indices.begin(), train_indices.end());
  std::sort(test_indices.begin(), test_indices.end());
  return {dataset.Subset(train_indices), dataset.Subset(test_indices)};
}

Dataset SampleRows(const Dataset& dataset, int64_t count, Rng& rng) {
  if (count >= dataset.size()) return dataset;
  std::vector<int> picked = rng.SampleWithoutReplacement(
      static_cast<int>(dataset.size()), static_cast<int>(count));
  std::vector<int64_t> indices(picked.begin(), picked.end());
  std::sort(indices.begin(), indices.end());
  return dataset.Subset(indices);
}

Dataset SamplePerClass(const Dataset& dataset, int64_t per_class, Rng& rng) {
  std::vector<Dataset> parts;
  for (int label : dataset.Classes()) {
    Dataset class_rows = dataset.FilterByClass(label);
    parts.push_back(SampleRows(class_rows, per_class, rng));
  }
  return Dataset::Concat(parts);
}

}  // namespace data
}  // namespace pilote
