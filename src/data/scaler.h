#ifndef PILOTE_DATA_SCALER_H_
#define PILOTE_DATA_SCALER_H_

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace pilote {
namespace data {

// Per-feature standardization (zero mean, unit variance), fit on the cloud
// pre-training data and shipped to the edge with the model. Features with
// (near-)zero variance pass through centered but unscaled.
class StandardScaler {
 public:
  StandardScaler() = default;

  // Estimates mean and stddev per column of `features` [n, d].
  void Fit(const Tensor& features);

  bool fitted() const { return mean_.numel() > 0; }

  // (x - mean) / std per column. Requires fitted().
  Tensor Transform(const Tensor& features) const;
  Dataset Transform(const Dataset& dataset) const;

  const Tensor& mean() const { return mean_; }
  const Tensor& stddev() const { return stddev_; }

  // Direct state access for serialization.
  void SetState(Tensor mean, Tensor stddev);

 private:
  Tensor mean_;    // [d]
  Tensor stddev_;  // [d]
};

}  // namespace data
}  // namespace pilote

#endif  // PILOTE_DATA_SCALER_H_
