#ifndef PILOTE_DATA_SPLITS_H_
#define PILOTE_DATA_SPLITS_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace pilote {
namespace data {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Splits per class so both halves keep the class proportions
// (the paper holds out 30% as test, 20% of the rest for validation).
// `test_fraction` of each class (rounded, at least 1 when the class has
// >= 2 samples) goes into `test`.
TrainTestSplit StratifiedSplit(const Dataset& dataset, double test_fraction,
                               Rng& rng);

// Uniform random subsample of `count` rows (or the full set if smaller).
Dataset SampleRows(const Dataset& dataset, int64_t count, Rng& rng);

// Random subsample of up to `per_class` rows from each class.
Dataset SamplePerClass(const Dataset& dataset, int64_t per_class, Rng& rng);

}  // namespace data
}  // namespace pilote

#endif  // PILOTE_DATA_SPLITS_H_
