#ifndef PILOTE_DATA_DATASET_H_
#define PILOTE_DATA_DATASET_H_

#include <map>
#include <vector>

#include "tensor/tensor.h"

namespace pilote {
namespace data {

// An in-memory labeled feature set: features [n, d] with integer class
// labels. Value type; copies are deep.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor features, std::vector<int> labels);

  int64_t size() const { return features_.rank() == 2 ? features_.rows() : 0; }
  int64_t num_features() const {
    return features_.rank() == 2 ? features_.cols() : 0;
  }
  bool empty() const { return size() == 0; }

  const Tensor& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  int label(int64_t i) const { return labels_.at(static_cast<size_t>(i)); }

  // Distinct labels in ascending order.
  std::vector<int> Classes() const;
  // Sample count per label.
  std::map<int, int64_t> ClassCounts() const;

  // Rows whose label equals `label`.
  Dataset FilterByClass(int label) const;
  // Rows whose label is in `labels`.
  Dataset FilterByClasses(const std::vector<int>& labels) const;
  // Rows at `indices`, in order.
  Dataset Subset(const std::vector<int64_t>& indices) const;

  // Vertical concatenation (feature dims must match).
  static Dataset Concat(const std::vector<Dataset>& parts);

 private:
  Tensor features_;
  std::vector<int> labels_;
};

}  // namespace data
}  // namespace pilote

#endif  // PILOTE_DATA_DATASET_H_
