#include "data/dataset.h"

#include <algorithm>

#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace data {

Dataset::Dataset(Tensor features, std::vector<int> labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
  PILOTE_CHECK_EQ(features_.rank(), 2);
  PILOTE_CHECK_EQ(features_.rows(), static_cast<int64_t>(labels_.size()));
}

std::vector<int> Dataset::Classes() const {
  std::vector<int> classes = labels_;
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

std::map<int, int64_t> Dataset::ClassCounts() const {
  std::map<int, int64_t> counts;
  for (int label : labels_) ++counts[label];
  return counts;
}

Dataset Dataset::FilterByClass(int label) const {
  return FilterByClasses({label});
}

Dataset Dataset::FilterByClasses(const std::vector<int>& labels) const {
  std::vector<int64_t> indices;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (std::find(labels.begin(), labels.end(), labels_[i]) != labels.end()) {
      indices.push_back(static_cast<int64_t>(i));
    }
  }
  return Subset(indices);
}

Dataset Dataset::Subset(const std::vector<int64_t>& indices) const {
  std::vector<int> new_labels;
  new_labels.reserve(indices.size());
  for (int64_t i : indices) {
    PILOTE_CHECK(i >= 0 && i < size()) << "Subset index " << i;
    new_labels.push_back(labels_[static_cast<size_t>(i)]);
  }
  return Dataset(GatherRows(features_, indices), std::move(new_labels));
}

Dataset Dataset::Concat(const std::vector<Dataset>& parts) {
  PILOTE_CHECK(!parts.empty());
  std::vector<Tensor> features;
  std::vector<int> labels;
  for (const Dataset& part : parts) {
    if (part.empty()) continue;
    features.push_back(part.features());
    labels.insert(labels.end(), part.labels().begin(), part.labels().end());
  }
  PILOTE_CHECK(!features.empty()) << "Concat of all-empty datasets";
  return Dataset(ConcatRows(features), std::move(labels));
}

}  // namespace data
}  // namespace pilote
