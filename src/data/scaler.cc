#include "data/scaler.h"

#include <cmath>

#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace data {

void StandardScaler::Fit(const Tensor& features) {
  PILOTE_CHECK_EQ(features.rank(), 2);
  PILOTE_CHECK_GT(features.rows(), 0);
  mean_ = ColumnMean(features);
  Tensor var = ColumnVariance(features, mean_);
  stddev_ = Tensor(var.shape());
  for (int64_t c = 0; c < var.numel(); ++c) {
    const float s = std::sqrt(var[c]);
    stddev_[c] = (s > 1e-8f) ? s : 1.0f;
  }
}

Tensor StandardScaler::Transform(const Tensor& features) const {
  PILOTE_CHECK(fitted()) << "StandardScaler::Transform before Fit";
  PILOTE_CHECK_EQ(features.rank(), 2);
  PILOTE_CHECK_EQ(features.cols(), mean_.dim(0));
  // Fused (x - mean) / stddev: the same operation order as
  // DivRowVector(SubRowVector(...)) — so bit-identical — without the
  // intermediate difference tensor on the serve hot path.
  Tensor out(features.shape());  // hotpath-ok: the output row batch
  const int64_t n = features.rows();
  const int64_t d = features.cols();
  const float* pm = mean_.data();
  const float* ps = stddev_.data();
  for (int64_t r = 0; r < n; ++r) {
    const float* pf = features.row(r);
    float* po = out.row(r);
    for (int64_t c = 0; c < d; ++c) po[c] = (pf[c] - pm[c]) / ps[c];
  }
  return out;
}

Dataset StandardScaler::Transform(const Dataset& dataset) const {
  return Dataset(Transform(dataset.features()), dataset.labels());
}

void StandardScaler::SetState(Tensor mean, Tensor stddev) {
  PILOTE_CHECK_EQ(mean.rank(), 1);
  PILOTE_CHECK(mean.shape() == stddev.shape());
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
}

}  // namespace data
}  // namespace pilote
