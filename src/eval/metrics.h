#ifndef PILOTE_EVAL_METRICS_H_
#define PILOTE_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace pilote {
namespace eval {

// Fraction of predictions equal to the label. Sizes must match.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

// Accuracy restricted to samples of each class.
std::map<int, double> PerClassAccuracy(const std::vector<int>& predictions,
                                       const std::vector<int>& labels);

// Mean and (sample) standard deviation of a series of run results.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

// Square confusion-matrix counts over a fixed class list. Rows are true
// classes, columns predictions (the paper's Figure 4 layout).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<int> classes);

  void Add(int true_label, int predicted_label);
  void AddAll(const std::vector<int>& labels,
              const std::vector<int>& predictions);

  int64_t count(int true_label, int predicted_label) const;
  // Row-normalized rate in [0, 1]; 0 for empty rows.
  double rate(int true_label, int predicted_label) const;
  const std::vector<int>& classes() const { return classes_; }
  int64_t total() const;
  double OverallAccuracy() const;

  // Fixed-width table with the given per-class display names (defaults to
  // numeric labels). `normalized` prints row rates instead of counts.
  std::string ToString(const std::vector<std::string>& names = {},
                       bool normalized = true) const;

 private:
  int IndexOf(int label) const;

  std::vector<int> classes_;
  std::vector<int64_t> counts_;  // row-major [k, k]
};

// Catastrophic-forgetting measures (Def. 2 of the paper): how much
// old-class performance degrades after the incremental update.
struct ForgettingReport {
  double old_acc_before = 0.0;   // old-class accuracy of the old model
  double old_acc_after = 0.0;    // old-class accuracy of the updated model
  double new_acc_after = 0.0;    // new-class accuracy of the updated model
  double forgetting = 0.0;       // before - after on old classes
};

ForgettingReport ComputeForgetting(const std::vector<int>& labels,
                                   const std::vector<int>& preds_before,
                                   const std::vector<int>& preds_after,
                                   const std::vector<int>& old_classes,
                                   const std::vector<int>& new_classes);

}  // namespace eval
}  // namespace pilote

#endif  // PILOTE_EVAL_METRICS_H_
