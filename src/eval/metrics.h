#ifndef PILOTE_EVAL_METRICS_H_
#define PILOTE_EVAL_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace pilote {
namespace eval {

// Fraction of predictions equal to the label. Sizes must match.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

// Accuracy restricted to samples of each class. Keys on the classes
// present in `labels`; a class the caller expected but that has no
// samples simply does not appear — use PerClassAccuracyOver when absence
// must be an error rather than a missing key.
std::map<int, double> PerClassAccuracy(const std::vector<int>& predictions,
                                       const std::vector<int>& labels);

// Per-class accuracy over an explicit class list. kInvalidArgument when
// the inputs are empty or size-mismatched, when `classes` is empty or
// holds duplicates, or when a requested class has no samples in `labels`
// — the silent-0.0 cases of the keyed-on-labels variant.
Result<std::map<int, double>> PerClassAccuracyOver(
    const std::vector<int>& predictions, const std::vector<int>& labels,
    const std::vector<int>& classes);

// Mean and (sample) standard deviation of a series of run results.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

// Square confusion-matrix counts over a fixed class list. Rows are true
// classes, columns predictions (the paper's Figure 4 layout).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<int> classes);

  void Add(int true_label, int predicted_label);
  void AddAll(const std::vector<int>& labels,
              const std::vector<int>& predictions);

  int64_t count(int true_label, int predicted_label) const;
  // Row-normalized rate in [0, 1]; 0 for empty rows.
  double rate(int true_label, int predicted_label) const;
  const std::vector<int>& classes() const { return classes_; }
  int64_t total() const;
  double OverallAccuracy() const;

  // Fixed-width table with the given per-class display names (defaults to
  // numeric labels). `normalized` prints row rates instead of counts.
  std::string ToString(const std::vector<std::string>& names = {},
                       bool normalized = true) const;

 private:
  int IndexOf(int label) const;

  std::vector<int> classes_;
  std::vector<int64_t> counts_;  // row-major [k, k]
};

// Catastrophic-forgetting measures (Def. 2 of the paper): how much
// old-class performance degrades after the incremental update.
struct ForgettingReport {
  double old_acc_before = 0.0;   // old-class accuracy of the old model
  double old_acc_after = 0.0;    // old-class accuracy of the updated model
  double new_acc_after = 0.0;    // new-class accuracy of the updated model
  double forgetting = 0.0;       // before - after on old classes
};

// kInvalidArgument when the three vectors disagree in size, when either
// class list is empty or the two overlap, or when `labels` holds no
// old-class or no new-class sample — every case that previously produced
// a silent all-zero report.
Result<ForgettingReport> ComputeForgetting(
    const std::vector<int>& labels, const std::vector<int>& preds_before,
    const std::vector<int>& preds_after, const std::vector<int>& old_classes,
    const std::vector<int>& new_classes);

// Per-task accuracy matrix of a continual-learning run: R(i, j) is the
// accuracy on the eval set of task j measured after learning task i
// (0-based). The lower triangle including the diagonal covers seen tasks;
// entries with j > i (evaluating a task before it is learned) feed the
// forward-transfer measure. Entries start unset; reading an unset entry
// is CHECK-fatal.
class TaskAccuracyMatrix {
 public:
  explicit TaskAccuracyMatrix(int num_tasks);

  void Set(int after_task, int eval_task, double accuracy);
  bool Has(int after_task, int eval_task) const;
  double At(int after_task, int eval_task) const;
  int num_tasks() const { return num_tasks_; }

 private:
  int Index(int after_task, int eval_task) const;

  int num_tasks_;
  std::vector<double> values_;
  std::vector<uint8_t> set_;
};

// Standard continual-learning summary measures (GEM / Chaudhry et al.
// conventions) over a completed T-task matrix:
//  * average_incremental_accuracy: mean over checkpoints i of the mean
//    accuracy on tasks 0..i — the "average accuracy curve" collapsed.
//  * final_average_accuracy: mean_j R(T-1, j).
//  * forgetting: mean over j < T-1 of max_{i in [j, T-2]} R(i, j)
//    - R(T-1, j) — how far below its historical best each earlier task
//    ends (0 when T == 1).
//  * backward_transfer: mean over j < T-1 of R(T-1, j) - R(j, j);
//    negative values are forgetting, positive values mean later tasks
//    improved earlier ones (0 when T == 1).
//  * forward_transfer: mean over j > 0 of R(j-1, j) - chance_accuracy,
//    present only when the upper-diagonal entries were recorded.
struct ClMetrics {
  double average_incremental_accuracy = 0.0;
  double final_average_accuracy = 0.0;
  double forgetting = 0.0;
  double backward_transfer = 0.0;
  double forward_transfer = 0.0;
  bool has_forward_transfer = false;
};

// Requires every lower-triangle entry (j <= i) to be set; returns
// kInvalidArgument naming the first missing entry. `chance_accuracy` is
// the forward-transfer baseline (accuracy of uninformed guessing on a
// task's eval set).
Result<ClMetrics> ComputeClMetrics(const TaskAccuracyMatrix& matrix,
                                   double chance_accuracy);

}  // namespace eval
}  // namespace pilote

#endif  // PILOTE_EVAL_METRICS_H_
