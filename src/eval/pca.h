#ifndef PILOTE_EVAL_PCA_H_
#define PILOTE_EVAL_PCA_H_

#include <vector>

#include "tensor/tensor.h"

namespace pilote {
namespace eval {

// Principal component analysis for embedding-space visualization (the
// paper's Figure 5). Components are extracted from the covariance matrix
// by power iteration with deflation — no external linear-algebra library.
class Pca {
 public:
  // Fits `num_components` principal directions of `data` [n, d].
  // Deterministic (fixed internal seed).
  Pca(const Tensor& data, int num_components, int max_iterations = 200);

  // Projects rows of `data` [m, d] onto the fitted components -> [m, k].
  Tensor Transform(const Tensor& data) const;

  // Fraction of total variance captured by each component.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_ratio_;
  }
  const Tensor& components() const { return components_; }  // [k, d]
  const Tensor& mean() const { return mean_; }              // [d]

 private:
  Tensor mean_;
  Tensor components_;
  std::vector<double> explained_ratio_;
};

// Scatter statistics of a labeled embedding (quantifying Figure 5's
// visual claim that PILOTE separates classes more cleanly).
struct ClusterSeparation {
  // Mean within-class squared distance to the class centroid.
  double within_class_scatter = 0.0;
  // Mean squared distance between class centroids.
  double between_class_scatter = 0.0;
  // Fisher-style ratio between/within (higher = cleaner separation).
  double fisher_ratio = 0.0;
  // Smallest centroid-to-centroid distance over all class pairs.
  double min_centroid_distance = 0.0;
};

ClusterSeparation ComputeClusterSeparation(const Tensor& embeddings,
                                           const std::vector<int>& labels);

}  // namespace eval
}  // namespace pilote

#endif  // PILOTE_EVAL_PCA_H_
