#include "eval/pca.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace eval {

Pca::Pca(const Tensor& data, int num_components, int max_iterations) {
  PILOTE_CHECK_EQ(data.rank(), 2);
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  PILOTE_CHECK_GT(n, 1);
  PILOTE_CHECK(num_components >= 1 && num_components <= d);

  mean_ = ColumnMean(data);
  Tensor centered = SubRowVector(data, mean_);
  // Covariance [d, d] = X^T X / (n - 1).
  Tensor cov = MulScalar(MatMulTransA(centered, centered),
                         1.0f / static_cast<float>(n - 1));
  double total_variance = 0.0;
  for (int64_t i = 0; i < d; ++i) total_variance += cov(i, i);

  components_ = Tensor(Shape::Matrix(num_components, d));
  explained_ratio_.clear();
  Rng rng(0xC0FFEE);

  for (int k = 0; k < num_components; ++k) {
    // Power iteration for the leading eigenvector of the deflated matrix.
    Tensor v = Tensor::RandNormal(Shape::Matrix(d, 1), rng);
    double eigenvalue = 0.0;
    for (int iter = 0; iter < max_iterations; ++iter) {
      Tensor w = MatMul(cov, v);
      double norm = 0.0;
      for (int64_t i = 0; i < d; ++i) norm += w[i] * w[i];
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (int64_t i = 0; i < d; ++i) w[i] = static_cast<float>(w[i] / norm);
      // Rayleigh quotient as convergence signal.
      Tensor cw = MatMul(cov, w);
      double lambda = 0.0;
      for (int64_t i = 0; i < d; ++i) lambda += w[i] * cw[i];
      v = w;
      if (std::abs(lambda - eigenvalue) < 1e-10 * std::max(1.0, lambda)) {
        eigenvalue = lambda;
        break;
      }
      eigenvalue = lambda;
    }
    for (int64_t i = 0; i < d; ++i) components_(k, i) = v[i];
    explained_ratio_.push_back(
        total_variance > 0.0 ? std::max(0.0, eigenvalue) / total_variance
                             : 0.0);
    // Deflate: cov -= lambda * v v^T.
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        cov(i, j) -= static_cast<float>(eigenvalue) * v[i] * v[j];
      }
    }
  }
}

Tensor Pca::Transform(const Tensor& data) const {
  PILOTE_CHECK_EQ(data.rank(), 2);
  PILOTE_CHECK_EQ(data.cols(), mean_.dim(0));
  return MatMulTransB(SubRowVector(data, mean_), components_);
}

ClusterSeparation ComputeClusterSeparation(const Tensor& embeddings,
                                           const std::vector<int>& labels) {
  PILOTE_CHECK_EQ(embeddings.rank(), 2);
  PILOTE_CHECK_EQ(embeddings.rows(), static_cast<int64_t>(labels.size()));
  PILOTE_CHECK(!labels.empty());

  // Class centroids.
  std::map<int, std::pair<Tensor, int64_t>> accum;
  const int64_t d = embeddings.cols();
  for (size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = accum.try_emplace(
        labels[i], std::make_pair(Tensor::Zeros(Shape::Vector(d)), 0));
    Axpy(1.0f, RowAt(embeddings, static_cast<int64_t>(i)), it->second.first);
    ++it->second.second;
  }
  std::map<int, Tensor> centroids;
  for (auto& [label, pair] : accum) {
    centroids.emplace(label,
                      MulScalar(pair.first, 1.0f / static_cast<float>(pair.second)));
  }

  ClusterSeparation sep;
  // Within-class scatter.
  double within = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    within += SquaredDistance(RowAt(embeddings, static_cast<int64_t>(i)),
                              centroids.at(labels[i]));
  }
  sep.within_class_scatter = within / static_cast<double>(labels.size());

  // Between-class scatter and min centroid distance.
  double between = 0.0;
  double min_dist = -1.0;
  int64_t pairs = 0;
  for (auto it_a = centroids.begin(); it_a != centroids.end(); ++it_a) {
    for (auto it_b = std::next(it_a); it_b != centroids.end(); ++it_b) {
      const double d2 = SquaredDistance(it_a->second, it_b->second);
      between += d2;
      ++pairs;
      const double dist = std::sqrt(d2);
      if (min_dist < 0.0 || dist < min_dist) min_dist = dist;
    }
  }
  if (pairs > 0) sep.between_class_scatter = between / static_cast<double>(pairs);
  sep.min_centroid_distance = std::max(0.0, min_dist);
  sep.fisher_ratio = sep.within_class_scatter > 1e-12
                         ? sep.between_class_scatter / sep.within_class_scatter
                         : 0.0;
  return sep;
}

}  // namespace eval
}  // namespace pilote
