#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/macros.h"

namespace pilote {
namespace eval {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  PILOTE_CHECK_EQ(predictions.size(), labels.size());
  PILOTE_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::map<int, double> PerClassAccuracy(const std::vector<int>& predictions,
                                       const std::vector<int>& labels) {
  PILOTE_CHECK_EQ(predictions.size(), labels.size());
  std::map<int, int64_t> correct;
  std::map<int, int64_t> total;
  for (size_t i = 0; i < labels.size(); ++i) {
    ++total[labels[i]];
    if (predictions[i] == labels[i]) ++correct[labels[i]];
  }
  std::map<int, double> result;
  for (const auto& [label, count] : total) {
    result[label] =
        static_cast<double>(correct[label]) / static_cast<double>(count);
  }
  return result;
}

Result<std::map<int, double>> PerClassAccuracyOver(
    const std::vector<int>& predictions, const std::vector<int>& labels,
    const std::vector<int>& classes) {
  if (predictions.size() != labels.size()) {
    return Status::InvalidArgument(
        "PerClassAccuracyOver: " + std::to_string(predictions.size()) +
        " predictions vs " + std::to_string(labels.size()) + " labels");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("PerClassAccuracyOver: no samples");
  }
  if (classes.empty()) {
    return Status::InvalidArgument("PerClassAccuracyOver: empty class list");
  }
  std::map<int, double> keyed = PerClassAccuracy(predictions, labels);
  std::map<int, double> result;
  for (int label : classes) {
    if (result.count(label) > 0) {
      return Status::InvalidArgument(
          "PerClassAccuracyOver: duplicate class " + std::to_string(label));
    }
    const auto it = keyed.find(label);
    if (it == keyed.end()) {
      return Status::InvalidArgument("PerClassAccuracyOver: class " +
                                     std::to_string(label) +
                                     " has no samples");
    }
    result[label] = it->second;
  }
  return result;
}

MeanStd Summarize(const std::vector<double>& values) {
  PILOTE_CHECK(!values.empty());
  MeanStd result;
  double sum = 0.0;
  for (double v : values) sum += v;
  result.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - result.mean) * (v - result.mean);
    result.stddev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return result;
}

ConfusionMatrix::ConfusionMatrix(std::vector<int> classes)
    : classes_(std::move(classes)) {
  PILOTE_CHECK(!classes_.empty());
  PILOTE_CHECK(std::is_sorted(classes_.begin(), classes_.end()))
      << "classes must be sorted";
  counts_.assign(classes_.size() * classes_.size(), 0);
}

int ConfusionMatrix::IndexOf(int label) const {
  const auto it = std::lower_bound(classes_.begin(), classes_.end(), label);
  PILOTE_CHECK(it != classes_.end() && *it == label)
      << "unknown class " << label;
  return static_cast<int>(it - classes_.begin());
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  const size_t c = static_cast<size_t>(IndexOf(predicted_label));
  ++counts_[r * classes_.size() + c];
}

void ConfusionMatrix::AddAll(const std::vector<int>& labels,
                             const std::vector<int>& predictions) {
  PILOTE_CHECK_EQ(labels.size(), predictions.size());
  for (size_t i = 0; i < labels.size(); ++i) Add(labels[i], predictions[i]);
}

int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  const size_t c = static_cast<size_t>(IndexOf(predicted_label));
  return counts_[r * classes_.size() + c];
}

double ConfusionMatrix::rate(int true_label, int predicted_label) const {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  int64_t row_total = 0;
  for (size_t c = 0; c < classes_.size(); ++c) {
    row_total += counts_[r * classes_.size() + c];
  }
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(true_label, predicted_label)) /
         static_cast<double>(row_total);
}

int64_t ConfusionMatrix::total() const {
  int64_t sum = 0;
  for (int64_t c : counts_) sum += c;
  return sum;
}

double ConfusionMatrix::OverallAccuracy() const {
  const int64_t n = total();
  PILOTE_CHECK_GT(n, 0);
  int64_t diag = 0;
  for (size_t i = 0; i < classes_.size(); ++i) {
    diag += counts_[i * classes_.size() + i];
  }
  return static_cast<double>(diag) / static_cast<double>(n);
}

std::string ConfusionMatrix::ToString(const std::vector<std::string>& names,
                                      bool normalized) const {
  std::vector<std::string> display;
  if (names.empty()) {
    for (int label : classes_) display.push_back(std::to_string(label));
  } else {
    PILOTE_CHECK_EQ(names.size(), classes_.size());
    display = names;
  }
  size_t width = 9;
  for (const std::string& name : display) width = std::max(width, name.size() + 2);

  std::ostringstream os;
  os << std::setw(static_cast<int>(width)) << "true\\pred";
  for (const std::string& name : display) {
    os << std::setw(static_cast<int>(width)) << name;
  }
  os << "\n";
  for (size_t r = 0; r < classes_.size(); ++r) {
    os << std::setw(static_cast<int>(width)) << display[r];
    for (size_t c = 0; c < classes_.size(); ++c) {
      if (normalized) {
        os << std::setw(static_cast<int>(width)) << std::fixed
           << std::setprecision(3) << rate(classes_[r], classes_[c]);
      } else {
        os << std::setw(static_cast<int>(width))
           << counts_[r * classes_.size() + c];
      }
    }
    os << "\n";
  }
  return os.str();
}

Result<ForgettingReport> ComputeForgetting(
    const std::vector<int>& labels, const std::vector<int>& preds_before,
    const std::vector<int>& preds_after, const std::vector<int>& old_classes,
    const std::vector<int>& new_classes) {
  if (labels.size() != preds_before.size() ||
      labels.size() != preds_after.size()) {
    return Status::InvalidArgument(
        "ComputeForgetting: size mismatch (" + std::to_string(labels.size()) +
        " labels, " + std::to_string(preds_before.size()) + " before, " +
        std::to_string(preds_after.size()) + " after)");
  }
  if (old_classes.empty() || new_classes.empty()) {
    return Status::InvalidArgument(
        "ComputeForgetting: empty old/new class list");
  }
  auto in = [](const std::vector<int>& set, int label) {
    return std::find(set.begin(), set.end(), label) != set.end();
  };
  for (int label : new_classes) {
    if (in(old_classes, label)) {
      return Status::InvalidArgument("ComputeForgetting: class " +
                                     std::to_string(label) +
                                     " is both old and new");
    }
  }
  int64_t old_total = 0;
  int64_t old_correct_before = 0;
  int64_t old_correct_after = 0;
  int64_t new_total = 0;
  int64_t new_correct_after = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (in(old_classes, labels[i])) {
      ++old_total;
      if (preds_before[i] == labels[i]) ++old_correct_before;
      if (preds_after[i] == labels[i]) ++old_correct_after;
    } else if (in(new_classes, labels[i])) {
      ++new_total;
      if (preds_after[i] == labels[i]) ++new_correct_after;
    }
  }
  if (old_total == 0) {
    return Status::InvalidArgument(
        "ComputeForgetting: no old-class samples in labels");
  }
  if (new_total == 0) {
    return Status::InvalidArgument(
        "ComputeForgetting: no new-class samples in labels");
  }
  ForgettingReport report;
  report.old_acc_before =
      static_cast<double>(old_correct_before) / static_cast<double>(old_total);
  report.old_acc_after =
      static_cast<double>(old_correct_after) / static_cast<double>(old_total);
  report.new_acc_after =
      static_cast<double>(new_correct_after) / static_cast<double>(new_total);
  report.forgetting = report.old_acc_before - report.old_acc_after;
  return report;
}

TaskAccuracyMatrix::TaskAccuracyMatrix(int num_tasks)
    : num_tasks_(num_tasks) {
  PILOTE_CHECK_GT(num_tasks, 0);
  const size_t cells =
      static_cast<size_t>(num_tasks) * static_cast<size_t>(num_tasks);
  values_.assign(cells, 0.0);
  set_.assign(cells, 0);
}

int TaskAccuracyMatrix::Index(int after_task, int eval_task) const {
  PILOTE_CHECK(after_task >= 0 && after_task < num_tasks_)
      << "after_task " << after_task << " of " << num_tasks_;
  PILOTE_CHECK(eval_task >= 0 && eval_task < num_tasks_)
      << "eval_task " << eval_task << " of " << num_tasks_;
  return after_task * num_tasks_ + eval_task;
}

void TaskAccuracyMatrix::Set(int after_task, int eval_task, double accuracy) {
  PILOTE_CHECK(accuracy >= 0.0 && accuracy <= 1.0) << accuracy;
  const size_t i = static_cast<size_t>(Index(after_task, eval_task));
  values_[i] = accuracy;
  set_[i] = 1;
}

bool TaskAccuracyMatrix::Has(int after_task, int eval_task) const {
  return set_[static_cast<size_t>(Index(after_task, eval_task))] != 0;
}

double TaskAccuracyMatrix::At(int after_task, int eval_task) const {
  const size_t i = static_cast<size_t>(Index(after_task, eval_task));
  PILOTE_CHECK(set_[i] != 0) << "unset matrix entry R(" << after_task << ", "
                             << eval_task << ")";
  return values_[i];
}

Result<ClMetrics> ComputeClMetrics(const TaskAccuracyMatrix& matrix,
                                   double chance_accuracy) {
  const int t = matrix.num_tasks();
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j <= i; ++j) {
      if (!matrix.Has(i, j)) {
        return Status::InvalidArgument(
            "ComputeClMetrics: matrix entry R(" + std::to_string(i) + ", " +
            std::to_string(j) + ") was never recorded");
      }
    }
  }
  ClMetrics metrics;
  double incremental_sum = 0.0;
  for (int i = 0; i < t; ++i) {
    double seen_sum = 0.0;
    for (int j = 0; j <= i; ++j) seen_sum += matrix.At(i, j);
    incremental_sum += seen_sum / static_cast<double>(i + 1);
  }
  metrics.average_incremental_accuracy =
      incremental_sum / static_cast<double>(t);
  double final_sum = 0.0;
  for (int j = 0; j < t; ++j) final_sum += matrix.At(t - 1, j);
  metrics.final_average_accuracy = final_sum / static_cast<double>(t);
  if (t > 1) {
    double forgetting_sum = 0.0;
    double bwt_sum = 0.0;
    for (int j = 0; j < t - 1; ++j) {
      double best = matrix.At(j, j);
      for (int i = j; i < t - 1; ++i) best = std::max(best, matrix.At(i, j));
      forgetting_sum += best - matrix.At(t - 1, j);
      bwt_sum += matrix.At(t - 1, j) - matrix.At(j, j);
    }
    metrics.forgetting = forgetting_sum / static_cast<double>(t - 1);
    metrics.backward_transfer = bwt_sum / static_cast<double>(t - 1);
    bool have_upper = true;
    for (int j = 1; j < t; ++j) have_upper = have_upper && matrix.Has(j - 1, j);
    if (have_upper) {
      double fwt_sum = 0.0;
      for (int j = 1; j < t; ++j) {
        fwt_sum += matrix.At(j - 1, j) - chance_accuracy;
      }
      metrics.forward_transfer = fwt_sum / static_cast<double>(t - 1);
      metrics.has_forward_transfer = true;
    }
  }
  return metrics;
}

}  // namespace eval
}  // namespace pilote
