#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/macros.h"

namespace pilote {
namespace eval {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  PILOTE_CHECK_EQ(predictions.size(), labels.size());
  PILOTE_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::map<int, double> PerClassAccuracy(const std::vector<int>& predictions,
                                       const std::vector<int>& labels) {
  PILOTE_CHECK_EQ(predictions.size(), labels.size());
  std::map<int, int64_t> correct;
  std::map<int, int64_t> total;
  for (size_t i = 0; i < labels.size(); ++i) {
    ++total[labels[i]];
    if (predictions[i] == labels[i]) ++correct[labels[i]];
  }
  std::map<int, double> result;
  for (const auto& [label, count] : total) {
    result[label] =
        static_cast<double>(correct[label]) / static_cast<double>(count);
  }
  return result;
}

MeanStd Summarize(const std::vector<double>& values) {
  PILOTE_CHECK(!values.empty());
  MeanStd result;
  double sum = 0.0;
  for (double v : values) sum += v;
  result.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - result.mean) * (v - result.mean);
    result.stddev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return result;
}

ConfusionMatrix::ConfusionMatrix(std::vector<int> classes)
    : classes_(std::move(classes)) {
  PILOTE_CHECK(!classes_.empty());
  PILOTE_CHECK(std::is_sorted(classes_.begin(), classes_.end()))
      << "classes must be sorted";
  counts_.assign(classes_.size() * classes_.size(), 0);
}

int ConfusionMatrix::IndexOf(int label) const {
  const auto it = std::lower_bound(classes_.begin(), classes_.end(), label);
  PILOTE_CHECK(it != classes_.end() && *it == label)
      << "unknown class " << label;
  return static_cast<int>(it - classes_.begin());
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  const size_t c = static_cast<size_t>(IndexOf(predicted_label));
  ++counts_[r * classes_.size() + c];
}

void ConfusionMatrix::AddAll(const std::vector<int>& labels,
                             const std::vector<int>& predictions) {
  PILOTE_CHECK_EQ(labels.size(), predictions.size());
  for (size_t i = 0; i < labels.size(); ++i) Add(labels[i], predictions[i]);
}

int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  const size_t c = static_cast<size_t>(IndexOf(predicted_label));
  return counts_[r * classes_.size() + c];
}

double ConfusionMatrix::rate(int true_label, int predicted_label) const {
  const size_t r = static_cast<size_t>(IndexOf(true_label));
  int64_t row_total = 0;
  for (size_t c = 0; c < classes_.size(); ++c) {
    row_total += counts_[r * classes_.size() + c];
  }
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(true_label, predicted_label)) /
         static_cast<double>(row_total);
}

int64_t ConfusionMatrix::total() const {
  int64_t sum = 0;
  for (int64_t c : counts_) sum += c;
  return sum;
}

double ConfusionMatrix::OverallAccuracy() const {
  const int64_t n = total();
  PILOTE_CHECK_GT(n, 0);
  int64_t diag = 0;
  for (size_t i = 0; i < classes_.size(); ++i) {
    diag += counts_[i * classes_.size() + i];
  }
  return static_cast<double>(diag) / static_cast<double>(n);
}

std::string ConfusionMatrix::ToString(const std::vector<std::string>& names,
                                      bool normalized) const {
  std::vector<std::string> display;
  if (names.empty()) {
    for (int label : classes_) display.push_back(std::to_string(label));
  } else {
    PILOTE_CHECK_EQ(names.size(), classes_.size());
    display = names;
  }
  size_t width = 9;
  for (const std::string& name : display) width = std::max(width, name.size() + 2);

  std::ostringstream os;
  os << std::setw(static_cast<int>(width)) << "true\\pred";
  for (const std::string& name : display) {
    os << std::setw(static_cast<int>(width)) << name;
  }
  os << "\n";
  for (size_t r = 0; r < classes_.size(); ++r) {
    os << std::setw(static_cast<int>(width)) << display[r];
    for (size_t c = 0; c < classes_.size(); ++c) {
      if (normalized) {
        os << std::setw(static_cast<int>(width)) << std::fixed
           << std::setprecision(3) << rate(classes_[r], classes_[c]);
      } else {
        os << std::setw(static_cast<int>(width))
           << counts_[r * classes_.size() + c];
      }
    }
    os << "\n";
  }
  return os.str();
}

ForgettingReport ComputeForgetting(const std::vector<int>& labels,
                                   const std::vector<int>& preds_before,
                                   const std::vector<int>& preds_after,
                                   const std::vector<int>& old_classes,
                                   const std::vector<int>& new_classes) {
  PILOTE_CHECK_EQ(labels.size(), preds_before.size());
  PILOTE_CHECK_EQ(labels.size(), preds_after.size());
  auto in = [](const std::vector<int>& set, int label) {
    return std::find(set.begin(), set.end(), label) != set.end();
  };
  int64_t old_total = 0;
  int64_t old_correct_before = 0;
  int64_t old_correct_after = 0;
  int64_t new_total = 0;
  int64_t new_correct_after = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (in(old_classes, labels[i])) {
      ++old_total;
      if (preds_before[i] == labels[i]) ++old_correct_before;
      if (preds_after[i] == labels[i]) ++old_correct_after;
    } else if (in(new_classes, labels[i])) {
      ++new_total;
      if (preds_after[i] == labels[i]) ++new_correct_after;
    }
  }
  ForgettingReport report;
  if (old_total > 0) {
    report.old_acc_before =
        static_cast<double>(old_correct_before) / static_cast<double>(old_total);
    report.old_acc_after =
        static_cast<double>(old_correct_after) / static_cast<double>(old_total);
  }
  if (new_total > 0) {
    report.new_acc_after =
        static_cast<double>(new_correct_after) / static_cast<double>(new_total);
  }
  report.forgetting = report.old_acc_before - report.old_acc_after;
  return report;
}

}  // namespace eval
}  // namespace pilote
