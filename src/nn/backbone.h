#ifndef PILOTE_NN_BACKBONE_H_
#define PILOTE_NN_BACKBONE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/sequential.h"

namespace pilote {
namespace nn {

// Configuration of the embedding backbone. The paper's model (Sec 6.1.2) is
// a fully connected network [1024, 512, 128, 64] with BatchNorm + ReLU on
// the hidden layers, projecting 80 input features into a 128-d embedding.
struct BackboneConfig {
  int64_t input_dim = 80;
  std::vector<int64_t> hidden_dims = {1024, 512, 128, 64};
  int64_t embedding_dim = 128;
  bool use_batchnorm = true;
  float bn_eps = 1e-5f;
  float bn_momentum = 0.1f;

  // The configuration used in the paper's experiments. Defined out of line:
  // GCC's -O3 inliner raises spurious -Wmaybe-uninitialized reports when the
  // default-initialized aggregate is constructed and copied at the call
  // site, which would break -Werror builds.
  static BackboneConfig Paper();

  // A smaller configuration with the same layer pattern, sized for
  // single-core test/bench runs.
  static BackboneConfig Small();
};

// The siamese embedding network phi_theta: X -> R^d. Both branches of the
// siamese pair share this single module (shared parameters and, in training
// mode, shared batch statistics via a concatenated forward pass upstream).
class MlpBackbone : public Module {
 public:
  MlpBackbone(const BackboneConfig& config, Rng& rng);

  autograd::Variable Forward(const autograd::Variable& x) const override;
  autograd::Variable Forward(const autograd::Variable& x) override;
  Status CaptureInference(exec::PlanBuilder& plan,
                          exec::ValueRef& x) const override;
  std::vector<autograd::Variable> Parameters() override;
  std::vector<const Tensor*> StateTensors() const override;
  void SetTraining(bool training) override;
  void SetNormalizationFrozen(bool frozen) override;

  const BackboneConfig& config() const { return config_; }
  int64_t embedding_dim() const { return config_.embedding_dim; }
  int64_t input_dim() const { return config_.input_dim; }

  // Deep copy with identical parameters and buffers (the distillation
  // teacher snapshot). The clone's RNG usage is irrelevant because all
  // state is overwritten.
  std::unique_ptr<MlpBackbone> Clone() const;

 private:
  BackboneConfig config_;
  Sequential layers_;
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_BACKBONE_H_
