#ifndef PILOTE_NN_SEQUENTIAL_H_
#define PILOTE_NN_SEQUENTIAL_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace pilote {
namespace nn {

// Module chaining: Forward applies the children in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  // hotpath-ok: model assembly at construction time, not the
  // streaming WindowAssembler::Append
  void Append(std::unique_ptr<Module> module) {
    PILOTE_CHECK(module != nullptr);
    children_.push_back(std::move(module));
  }

  template <typename M, typename... Args>
  M* Emplace(Args&&... args) {
    auto module = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = module.get();
    children_.push_back(std::move(module));
    return raw;
  }

  autograd::Variable Forward(const autograd::Variable& x) const override {
    autograd::Variable out = x;
    for (const auto& child : children_) {
      out = std::as_const(*child).Forward(out);
    }
    return out;
  }

  autograd::Variable Forward(const autograd::Variable& x) override {
    autograd::Variable out = x;
    for (auto& child : children_) out = child->Forward(out);
    return out;
  }

  Status CaptureInference(exec::PlanBuilder& plan,
                          exec::ValueRef& x) const override {
    for (const auto& child : children_) {
      Status status = child->CaptureInference(plan, x);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  std::vector<autograd::Variable> Parameters() override {
    std::vector<autograd::Variable> params;
    for (auto& child : children_) {
      auto child_params = child->Parameters();
      params.insert(params.end(), child_params.begin(), child_params.end());
    }
    return params;
  }

  std::vector<const Tensor*> StateTensors() const override {
    std::vector<const Tensor*> state;
    for (const auto& child : children_) {
      auto child_state = std::as_const(*child).StateTensors();
      state.insert(state.end(), child_state.begin(), child_state.end());
    }
    return state;
  }

  void SetTraining(bool training) override {
    Module::SetTraining(training);
    for (auto& child : children_) child->SetTraining(training);
  }

  void SetNormalizationFrozen(bool frozen) override {
    for (auto& child : children_) child->SetNormalizationFrozen(frozen);
  }

  size_t size() const { return children_.size(); }
  Module& child(size_t i) { return *children_.at(i); }
  const Module& child(size_t i) const { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_SEQUENTIAL_H_
