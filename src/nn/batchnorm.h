#ifndef PILOTE_NN_BATCHNORM_H_
#define PILOTE_NN_BATCHNORM_H_

#include "nn/module.h"

namespace pilote {
namespace nn {

// 1-D batch normalization over the feature (column) dimension, as in the
// paper's backbone (Ioffe & Szegedy). Training mode normalizes with batch
// statistics and maintains exponential running statistics; eval mode uses
// the running statistics. gamma starts at 1, beta at 0.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int64_t num_features, float eps = 1e-5f,
                       float momentum = 0.1f);

  // Eval-mode forward: always normalizes with the running statistics.
  autograd::Variable Forward(const autograd::Variable& x) const override;
  // Training-mode forward: batch statistics + running-stat update, unless
  // the layer is frozen (then identical to the eval computation).
  autograd::Variable Forward(const autograd::Variable& x) override;
  Status CaptureInference(exec::PlanBuilder& plan,
                          exec::ValueRef& x) const override;
  std::vector<autograd::Variable> Parameters() override;
  std::vector<const Tensor*> StateTensors() const override;
  void SetNormalizationFrozen(bool frozen) override { frozen_stats_ = frozen; }

  bool frozen_stats() const { return frozen_stats_; }
  int64_t num_features() const { return num_features_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t num_features_;
  float eps_;
  float momentum_;
  bool frozen_stats_ = false;
  autograd::Variable gamma_;
  autograd::Variable beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_BATCHNORM_H_
