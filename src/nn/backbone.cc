#include "nn/backbone.h"

#include <utility>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"

namespace pilote {
namespace nn {

BackboneConfig BackboneConfig::Paper() { return BackboneConfig{}; }

BackboneConfig BackboneConfig::Small() {
  BackboneConfig config;
  config.hidden_dims = {128, 64};
  config.embedding_dim = 32;
  return config;
}

MlpBackbone::MlpBackbone(const BackboneConfig& config, Rng& rng)
    : config_(config) {
  PILOTE_CHECK_GT(config.input_dim, 0);
  PILOTE_CHECK_GT(config.embedding_dim, 0);
  int64_t in_dim = config.input_dim;
  for (int64_t hidden : config.hidden_dims) {
    layers_.Emplace<Linear>(in_dim, hidden, rng);
    if (config.use_batchnorm) {
      layers_.Emplace<BatchNorm1d>(hidden, config.bn_eps, config.bn_momentum);
    }
    layers_.Emplace<ReLU>();
    in_dim = hidden;
  }
  // Final projection into the embedding space (no activation: the
  // contrastive loss operates on the raw embedding).
  layers_.Emplace<Linear>(in_dim, config.embedding_dim, rng);
}

autograd::Variable MlpBackbone::Forward(const autograd::Variable& x) const {
  return std::as_const(layers_).Forward(x);
}

autograd::Variable MlpBackbone::Forward(const autograd::Variable& x) {
  return layers_.Forward(x);
}

Status MlpBackbone::CaptureInference(exec::PlanBuilder& plan,
                                     exec::ValueRef& x) const {
  return layers_.CaptureInference(plan, x);
}

std::vector<autograd::Variable> MlpBackbone::Parameters() {
  return layers_.Parameters();
}

std::vector<const Tensor*> MlpBackbone::StateTensors() const {
  return layers_.StateTensors();
}

void MlpBackbone::SetTraining(bool training) {
  Module::SetTraining(training);
  layers_.SetTraining(training);
}

void MlpBackbone::SetNormalizationFrozen(bool frozen) {
  layers_.SetNormalizationFrozen(frozen);
}

std::unique_ptr<MlpBackbone> MlpBackbone::Clone() const {
  Rng scratch_rng(0);
  auto clone = std::make_unique<MlpBackbone>(config_, scratch_rng);
  clone->layers_.CopyStateFrom(layers_);
  clone->SetTraining(false);
  return clone;
}

}  // namespace nn
}  // namespace pilote
