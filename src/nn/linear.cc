#include "nn/linear.h"

#include <cmath>

#include "autograd/ops.h"
#include "exec/plan_builder.h"

namespace pilote {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  PILOTE_CHECK_GT(in_features, 0);
  PILOTE_CHECK_GT(out_features, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = autograd::Variable::Parameter(Tensor::RandNormal(
      Shape::Matrix(out_features, in_features), rng, 0.0f, stddev));
  bias_ = autograd::Variable::Parameter(Tensor::Zeros(Shape::Vector(out_features)));
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  PILOTE_CHECK_EQ(x.value().rank(), 2);
  PILOTE_CHECK_EQ(x.value().cols(), in_features_);
  return autograd::AddRowVector(autograd::LinearTransform(x, weight_), bias_);
}

Status Linear::CaptureInference(exec::PlanBuilder& plan,
                                exec::ValueRef& x) const {
  // Same op order as Forward: GEMM against W^T, then the bias row add.
  x = plan.BiasAdd(plan.Gemm(x, weight_.value()), bias_.value());
  return Status::Ok();
}

std::vector<autograd::Variable> Linear::Parameters() {
  return {weight_, bias_};
}

std::vector<const Tensor*> Linear::StateTensors() const {
  return {&weight_.value(), &bias_.value()};
}

}  // namespace nn
}  // namespace pilote
