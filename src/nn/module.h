#ifndef PILOTE_NN_MODULE_H_
#define PILOTE_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace pilote {

namespace exec {
class PlanBuilder;
struct ValueRef;
}  // namespace exec

namespace nn {

// Base class for neural-network layers. A Module owns its parameters as
// autograd Variables (handles; copies alias the same storage) and may own
// non-trainable state buffers (e.g. batch-norm running statistics).
class Module {
 public:
  virtual ~Module() = default;

  // Eval-mode forward on a const module: maps a batch [n, in] to [n, out]
  // using inference behaviour (batch norm normalizes with its running
  // statistics) as a pure read — safe to call concurrently with other
  // const members. Every layer implements its inference computation here.
  virtual autograd::Variable Forward(const autograd::Variable& x) const = 0;

  // Training-aware forward, recording the autograd graph. Layers whose
  // training behaviour differs from inference (batch norm) override this;
  // the default is the eval-mode computation above.
  virtual autograd::Variable Forward(const autograd::Variable& x);

  // Records this module's eval-mode computation into a compiled inference
  // plan (see src/exec/): one recorder call per eager op, threading the
  // shape-propagating value handle `x`. Layers the planner cannot lower
  // return kUnimplemented (the default), in which case callers keep using
  // the eager Forward. Constants are copied into the plan, so the module
  // may mutate afterwards without invalidating it.
  virtual Status CaptureInference(exec::PlanBuilder& plan,
                                  exec::ValueRef& x) const;

  // Trainable parameters, in a deterministic order. The returned handles
  // alias the module's storage (mutating them mutates the module).
  virtual std::vector<autograd::Variable> Parameters() = 0;

  // All state in deterministic order: parameters followed by buffers.
  // Used by serialization and state copying. Pointers remain valid for the
  // lifetime of the module.
  virtual std::vector<const Tensor*> StateTensors() const = 0;

  // Mutable view of the same tensors, same order (serialization load,
  // CopyStateFrom destination).
  std::vector<Tensor*> MutableStateTensors();

  // Training vs inference behaviour (batch norm switches statistics).
  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  // Freezes normalization statistics: batch-norm layers keep normalizing
  // with their running statistics even in training mode and stop updating
  // them. Used for on-edge incremental updates, where tiny new-class-heavy
  // batches would otherwise corrupt the statistics the old-class
  // prototypes (and the distillation teacher) depend on. Default no-op;
  // containers propagate to children.
  virtual void SetNormalizationFrozen(bool /*frozen*/) {}

  // Sum of parameter element counts.
  int64_t NumParameters() {
    int64_t total = 0;
    for (auto& p : Parameters()) total += p.value().numel();
    return total;
  }

  // Copies all state (parameters and buffers) from a module with an
  // identical structure.
  void CopyStateFrom(const Module& other);

  // Sets/clears requires_grad on every parameter (freezing for teachers).
  void SetRequiresGrad(bool requires_grad);

 private:
  bool training_ = true;
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_MODULE_H_
