#ifndef PILOTE_NN_ACTIVATION_H_
#define PILOTE_NN_ACTIVATION_H_

#include "autograd/ops.h"
#include "exec/plan_builder.h"
#include "nn/module.h"

namespace pilote {
namespace nn {

// Rectified linear unit activation (stateless).
class ReLU : public Module {
 public:
  ReLU() = default;

  using Module::Forward;
  autograd::Variable Forward(const autograd::Variable& x) const override {
    return autograd::Relu(x);
  }
  Status CaptureInference(exec::PlanBuilder& plan,
                          exec::ValueRef& x) const override {
    x = plan.Relu(x);
    return Status::Ok();
  }
  std::vector<autograd::Variable> Parameters() override { return {}; }
  std::vector<const Tensor*> StateTensors() const override { return {}; }
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_ACTIVATION_H_
