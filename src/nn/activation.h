#ifndef PILOTE_NN_ACTIVATION_H_
#define PILOTE_NN_ACTIVATION_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace pilote {
namespace nn {

// Rectified linear unit activation (stateless).
class ReLU : public Module {
 public:
  ReLU() = default;

  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Relu(x);
  }
  std::vector<autograd::Variable> Parameters() override { return {}; }
  std::vector<Tensor*> StateTensors() override { return {}; }
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_ACTIVATION_H_
