#include "nn/module.h"

#include <utility>

#include "common/macros.h"

namespace pilote {
namespace nn {

autograd::Variable Module::Forward(const autograd::Variable& x) {
  // Default training-mode behaviour: same computation as eval mode.
  return std::as_const(*this).Forward(x);
}

Status Module::CaptureInference(exec::PlanBuilder& /*plan*/,
                                exec::ValueRef& /*x*/) const {
  return Status::Unimplemented(
      "no compiled-inference lowering for this module");
}

std::vector<Tensor*> Module::MutableStateTensors() {
  // The const overload is the single source of truth for state order; the
  // cast is sound because *this is non-const here.
  std::vector<const Tensor*> state = std::as_const(*this).StateTensors();
  std::vector<Tensor*> mutable_state(state.size());
  for (size_t i = 0; i < state.size(); ++i) {
    mutable_state[i] = const_cast<Tensor*>(state[i]);
  }
  return mutable_state;
}

void Module::CopyStateFrom(const Module& other) {
  std::vector<Tensor*> dst = MutableStateTensors();
  std::vector<const Tensor*> src = other.StateTensors();
  PILOTE_CHECK_EQ(dst.size(), src.size()) << "module structure mismatch";
  for (size_t i = 0; i < dst.size(); ++i) {
    PILOTE_CHECK(dst[i]->shape() == src[i]->shape())
        << "state tensor " << i << " shape mismatch: "
        << dst[i]->shape().ToString() << " vs " << src[i]->shape().ToString();
    *dst[i] = *src[i];
  }
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (auto& param : Parameters()) {
    param.node()->requires_grad = requires_grad;
  }
}

}  // namespace nn
}  // namespace pilote
