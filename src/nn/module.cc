#include "nn/module.h"

#include "common/macros.h"

namespace pilote {
namespace nn {

void Module::CopyStateFrom(Module& other) {
  std::vector<Tensor*> dst = StateTensors();
  std::vector<Tensor*> src = other.StateTensors();
  PILOTE_CHECK_EQ(dst.size(), src.size()) << "module structure mismatch";
  for (size_t i = 0; i < dst.size(); ++i) {
    PILOTE_CHECK(dst[i]->shape() == src[i]->shape())
        << "state tensor " << i << " shape mismatch: "
        << dst[i]->shape().ToString() << " vs " << src[i]->shape().ToString();
    *dst[i] = *src[i];
  }
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (auto& param : Parameters()) {
    param.node()->requires_grad = requires_grad;
  }
}

}  // namespace nn
}  // namespace pilote
