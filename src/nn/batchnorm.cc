#include "nn/batchnorm.h"

#include <utility>

#include "autograd/ops.h"
#include "exec/plan_builder.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace nn {

BatchNorm1d::BatchNorm1d(int64_t num_features, float eps, float momentum)
    : num_features_(num_features), eps_(eps), momentum_(momentum) {
  PILOTE_CHECK_GT(num_features, 0);
  gamma_ = autograd::Variable::Parameter(
      Tensor::Ones(Shape::Vector(num_features)));
  beta_ = autograd::Variable::Parameter(
      Tensor::Zeros(Shape::Vector(num_features)));
  running_mean_ = Tensor::Zeros(Shape::Vector(num_features));
  running_var_ = Tensor::Ones(Shape::Vector(num_features));
}

autograd::Variable BatchNorm1d::Forward(const autograd::Variable& x) const {
  PILOTE_CHECK_EQ(x.value().rank(), 2);
  PILOTE_CHECK_EQ(x.value().cols(), num_features_);
  return autograd::BatchNormInference(x, gamma_, beta_, running_mean_,
                                      running_var_, eps_);
}

autograd::Variable BatchNorm1d::Forward(const autograd::Variable& x) {
  if (training() && !frozen_stats_) {
    PILOTE_CHECK_EQ(x.value().rank(), 2);
    PILOTE_CHECK_EQ(x.value().cols(), num_features_);
    autograd::BatchNormOutput out =
        autograd::BatchNormTraining(x, gamma_, beta_, eps_);
    // running <- (1 - momentum) * running + momentum * batch
    running_mean_ = Add(MulScalar(running_mean_, 1.0f - momentum_),
                        MulScalar(out.batch_mean, momentum_));
    running_var_ = Add(MulScalar(running_var_, 1.0f - momentum_),
                       MulScalar(out.batch_var, momentum_));
    return out.y;
  }
  return std::as_const(*this).Forward(x);
}

Status BatchNorm1d::CaptureInference(exec::PlanBuilder& plan,
                                     exec::ValueRef& x) const {
  x = plan.BatchNormInference(x, gamma_.value(), beta_.value(),
                              running_mean_, running_var_, eps_);
  return Status::Ok();
}

std::vector<autograd::Variable> BatchNorm1d::Parameters() {
  return {gamma_, beta_};
}

std::vector<const Tensor*> BatchNorm1d::StateTensors() const {
  return {&gamma_.value(), &beta_.value(), &running_mean_, &running_var_};
}

}  // namespace nn
}  // namespace pilote
