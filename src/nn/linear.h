#ifndef PILOTE_NN_LINEAR_H_
#define PILOTE_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"

namespace pilote {
namespace nn {

// Fully connected layer: y = x * W^T + b with W [out, in], b [out].
// Weights use Kaiming-He normal initialization (std = sqrt(2 / fan_in)),
// matching the ReLU backbone of the paper; biases start at zero.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  // Training and eval behaviour coincide; the const overload is the
  // implementation and the training-mode default delegates to it.
  using Module::Forward;
  autograd::Variable Forward(const autograd::Variable& x) const override;
  Status CaptureInference(exec::PlanBuilder& plan,
                          exec::ValueRef& x) const override;
  std::vector<autograd::Variable> Parameters() override;
  std::vector<const Tensor*> StateTensors() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  autograd::Variable weight_;
  autograd::Variable bias_;
};

}  // namespace nn
}  // namespace pilote

#endif  // PILOTE_NN_LINEAR_H_
