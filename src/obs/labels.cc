#include "obs/labels.h"

#include <utility>

#include "common/macros.h"

namespace pilote {
namespace obs {

namespace {

bool ValidLabelKey(const std::string& key) {
  if (key.empty()) return false;
  for (size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    const bool alpha = (c >= 'a' && c <= 'z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

}  // namespace

std::string RenderLabel(const std::string& key, const std::string& value) {
  std::string out = key;
  out += "=\"";
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

// hotpath-ok: process-lifetime singleton, allocates on first call only
FamilyRegistry& FamilyRegistry::Global() {
  // Leaked so instrumentation in static destructors stays safe.
  static FamilyRegistry* registry = new FamilyRegistry();
  return *registry;
}

template <typename MetricT>
FamilyView<MetricT> FamilyRegistry::GetFamily(
    std::map<std::string, Family<MetricT>>* families, const std::string& name,
    const std::string& label_key, const std::vector<std::string>& values) {
  PILOTE_CHECK(!values.empty()) << "family " << name << " needs label values";
  PILOTE_CHECK(ValidLabelKey(label_key))
      << "family " << name << " label key '" << label_key << "'";
  auto& family = (*families)[name];
  if (family.slots.empty()) {
    family.label_key = label_key;
  } else {
    PILOTE_CHECK_EQ(family.label_key, label_key)
        << "family " << name << " registered with a different label key";
  }
  std::vector<MetricT*> slots;
  slots.reserve(values.size());
  for (const std::string& value : values) {
    MetricT* found = nullptr;
    for (auto& [slot_value, metric] : family.slots) {
      if (slot_value == value) {
        found = metric.get();
        break;
      }
    }
    if (found == nullptr) {
      PILOTE_CHECK_LT(family.slots.size(), kMaxLabelValues)
          << "family " << name << " exceeds bounded label cardinality";
      family.slots.emplace_back(value, std::make_unique<MetricT>());
      found = family.slots.back().second.get();
    }
    slots.push_back(found);
  }
  return FamilyView<MetricT>(std::move(slots));
}

CounterFamily FamilyRegistry::GetCounterFamily(
    const std::string& name, const std::string& label_key,
    const std::vector<std::string>& values) {
  MutexLock lock(mutex_);
  return GetFamily(&counters_, name, label_key, values);
}

GaugeFamily FamilyRegistry::GetGaugeFamily(
    const std::string& name, const std::string& label_key,
    const std::vector<std::string>& values) {
  MutexLock lock(mutex_);
  return GetFamily(&gauges_, name, label_key, values);
}

HistogramFamily FamilyRegistry::GetHistogramFamily(
    const std::string& name, const std::string& label_key,
    const std::vector<std::string>& values) {
  MutexLock lock(mutex_);
  return GetFamily(&histograms_, name, label_key, values);
}

void FamilyRegistry::AppendTo(MetricsSnapshot* snapshot) const {
  MutexLock lock(mutex_);
  for (const auto& [name, family] : counters_) {
    for (const auto& [value, counter] : family.slots) {
      snapshot->counters.push_back(
          {name, RenderLabel(family.label_key, value), counter->value()});
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [value, gauge] : family.slots) {
      snapshot->gauges.push_back(
          {name, RenderLabel(family.label_key, value), gauge->value()});
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [value, histogram] : family.slots) {
      snapshot->histograms.push_back(MakeHistogramSample(
          name, RenderLabel(family.label_key, value), histogram->Snapshot()));
    }
  }
}

void FamilyRegistry::AppendTo(RawMetricsSnapshot* snapshot) const {
  MutexLock lock(mutex_);
  for (const auto& [name, family] : counters_) {
    for (const auto& [value, counter] : family.slots) {
      snapshot->counters.push_back(
          {name, RenderLabel(family.label_key, value), counter->value()});
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [value, gauge] : family.slots) {
      snapshot->gauges.push_back(
          {name, RenderLabel(family.label_key, value), gauge->value()});
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [value, histogram] : family.slots) {
      snapshot->histograms.push_back(
          {name, RenderLabel(family.label_key, value), histogram->Snapshot()});
    }
  }
}

void FamilyRegistry::ResetForTesting() {
  MutexLock lock(mutex_);
  for (auto& [name, family] : counters_) {
    for (auto& [value, counter] : family.slots) counter->Reset();
  }
  for (auto& [name, family] : gauges_) {
    for (auto& [value, gauge] : family.slots) gauge->Reset();
  }
  for (auto& [name, family] : histograms_) {
    for (auto& [value, histogram] : family.slots) histogram->Reset();
  }
}

}  // namespace obs
}  // namespace pilote
