#include "obs/exporter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/exemplar.h"
#include "obs/export.h"
#include "obs/labels.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {
namespace {

Status WriteFile(const std::string& path, const std::string& body,
                 const char* mode) {
  std::FILE* file = std::fopen(path.c_str(), mode);
  if (file == nullptr) {
    return Status::IoError("cannot open telemetry output " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != body.size() || !closed) {
    return Status::IoError("cannot write telemetry output " + path);
  }
  return Status::Ok();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control characters cannot appear in metric names
      continue;
    }
    out += c;
  }
  return out;
}

std::string JsonKey(const std::string& name, const std::string& labels) {
  std::string key = labels.empty() ? name : name + "{" + labels + "}";
  std::string out = "\"";
  out += JsonEscape(key);
  out += '"';
  return out;
}

std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// One JSONL time-series record: rolling rates and windowed quantiles from
// `summary`, instantaneous gauges, cumulative failpoint stats, and the
// current slow-window exemplar ring.
std::string BuildJsonlLine(int64_t tick, double uptime_s,
                           const WindowSummary& summary,
                           const MetricsSnapshot& cumulative,
                           const std::vector<SlowWindowExemplar>& exemplars) {
  std::ostringstream os;
  os << "{\"tick\":" << tick << ",\"uptime_s\":" << Num(uptime_s)
     << ",\"window_s\":" << Num(summary.window_seconds);
  os << ",\"counters\":{";
  for (size_t i = 0; i < summary.counters.size(); ++i) {
    const WindowedCounterSample& c = summary.counters[i];
    os << (i == 0 ? "" : ",") << JsonKey(c.name, c.labels)
       << ":{\"delta\":" << c.delta
       << ",\"rate_per_s\":" << Num(c.rate_per_s) << "}";
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < summary.gauges.size(); ++i) {
    const GaugeSample& g = summary.gauges[i];
    os << (i == 0 ? "" : ",") << JsonKey(g.name, g.labels) << ":"
       << Num(g.value);
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < summary.histograms.size(); ++i) {
    const HistogramSample& h = summary.histograms[i];
    os << (i == 0 ? "" : ",") << JsonKey(h.name, h.labels)
       << ":{\"count\":" << h.count << ",\"sum\":" << Num(h.sum)
       << ",\"p50\":" << Num(h.p50) << ",\"p95\":" << Num(h.p95)
       << ",\"p99\":" << Num(h.p99) << ",\"p999\":" << Num(h.p999) << "}";
  }
  os << "},\"failpoints\":{";
  for (size_t i = 0; i < cumulative.failpoints.size(); ++i) {
    const FailpointSample& f = cumulative.failpoints[i];
    os << (i == 0 ? "" : ",") << "\"" << JsonEscape(f.name)
       << "\":{\"armed\":" << (f.armed ? "true" : "false")
       << ",\"hits\":" << f.hits << ",\"fires\":" << f.fires << "}";
  }
  os << "},\"exemplars\":[";
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const SlowWindowExemplar& e = exemplars[i];
    os << (i == 0 ? "" : ",") << "{\"sequence\":" << e.sequence
       << ",\"session_id\":" << e.session_id
       << ",\"model_version\":" << e.model_version
       << ",\"queue_wait_ms\":" << Num(e.queue_wait_ms)
       << ",\"batch_wait_ms\":" << Num(e.batch_wait_ms)
       << ",\"predict_ms\":" << Num(e.predict_ms)
       << ",\"total_ms\":" << Num(e.total_ms) << "}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()),
      windows_(options_.window_capacity_ticks == 0
                   ? 1
                   : options_.window_capacity_ticks) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  if (options_.output_prefix.empty()) {
    return Status::InvalidArgument("telemetry output prefix is empty");
  }
  if (options_.interval_ms <= 0) {
    return Status::InvalidArgument("telemetry interval must be positive");
  }
  MutexLock lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition("telemetry exporter already running");
  }
  stop_requested_ = false;
  // lifetime-ok: Loop's `this` is the exporter itself; Stop() (called by
  // the destructor) joins the thread before the object is destroyed
  thread_ = std::thread(&TelemetryExporter::Loop, this);
  running_ = true;
  return Status::Ok();
}

void TelemetryExporter::Stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
  {
    MutexLock lock(mutex_);
    running_ = false;
    stop_requested_ = false;
  }
  // Final flush: even a run shorter than one interval leaves a record, and
  // the last partial window reaches the artifacts.
  Status status = TickNow();
  if (!status.ok()) {
    PILOTE_LOG(Warning) << "telemetry final tick failed: "
                        << status.ToString();
  }
}

void TelemetryExporter::Loop() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (true) {
    {
      MutexLock lock(mutex_);
      while (!stop_requested_ &&
             std::chrono::steady_clock::now() < next) {
        stop_cv_.WaitUntil(mutex_, next);
      }
      if (stop_requested_) return;
    }
    // Outside the lock: file I/O must never delay Stop().
    Status status = TickNow();
    if (!status.ok()) {
      PILOTE_LOG(Warning) << "telemetry tick failed: " << status.ToString();
    }
    next += interval;
  }
}

Status TelemetryExporter::TickNow() {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  RawMetricsSnapshot raw = MetricsRegistry::Global().RawSnapshot();
  FamilyRegistry::Global().AppendTo(&raw);
  windows_.Tick(raw, uptime_s);

  const WindowSummary summary =
      windows_.Summarize(options_.summary_window_ticks);
  MetricsSnapshot cumulative = CaptureSnapshot();

  // Exposition: cumulative counters/gauges/failpoints, WINDOWED quantiles.
  MetricsSnapshot exposition = cumulative;
  exposition.histograms = summary.histograms;
  Status status = WriteFile(options_.output_prefix + ".prom",
                            ToPrometheus(exposition), "w");

  const int64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string line = BuildJsonlLine(tick, uptime_s, summary, cumulative,
                                          SlowWindows().Snapshot());
  Status jsonl_status =
      WriteFile(options_.output_prefix + ".jsonl", line, "a");
  return status.ok() ? jsonl_status : status;
}

// ------------------------------------------------------- global instance

namespace {

Mutex& GlobalTelemetryMutex() {
  static Mutex* mutex = new Mutex();
  return *mutex;
}

TelemetryExporter*& GlobalTelemetrySlot() {
  // Leaked: the atexit handler stops the thread; destruction order against
  // other static teardown is not worth gambling on.
  static TelemetryExporter* exporter = nullptr;
  return exporter;
}

}  // namespace

Status StartGlobalTelemetry(const TelemetryOptions& options) {
  MutexLock lock(GlobalTelemetryMutex());
  TelemetryExporter*& slot = GlobalTelemetrySlot();
  if (slot != nullptr) {
    return Status::FailedPrecondition("global telemetry already started");
  }
  SetEnabled(true);
  auto* exporter = new TelemetryExporter(options);
  Status status = exporter->Start();
  if (!status.ok()) {
    delete exporter;
    return status;
  }
  slot = exporter;
  static const bool registered = [] {
    std::atexit(+[] { StopGlobalTelemetry(); });
    return true;
  }();
  (void)registered;
  return Status::Ok();
}

void StopGlobalTelemetry() {
  TelemetryExporter* exporter = nullptr;
  {
    MutexLock lock(GlobalTelemetryMutex());
    exporter = GlobalTelemetrySlot();
    GlobalTelemetrySlot() = nullptr;
  }
  // Stop outside the lock (it joins the thread and does file I/O). The
  // object is leaked so late metric reads from other atexit handlers stay
  // safe.
  if (exporter != nullptr) exporter->Stop();
}

TelemetryExporter* GlobalTelemetry() {
  MutexLock lock(GlobalTelemetryMutex());
  return GlobalTelemetrySlot();
}

void MaybeStartTelemetryFromEnv() {
  const char* prefix = std::getenv("PILOTE_TELEMETRY_OUT");
  if (prefix == nullptr || prefix[0] == '\0') return;
  TelemetryOptions options;
  options.output_prefix = prefix;
  if (const char* interval = std::getenv("PILOTE_TELEMETRY_INTERVAL_MS")) {
    const long parsed = std::strtol(interval, nullptr, 10);
    if (parsed > 0) options.interval_ms = parsed;
  }
  Status status = StartGlobalTelemetry(options);
  if (!status.ok() && status.code() != StatusCode::kFailedPrecondition) {
    PILOTE_LOG(Warning) << "PILOTE_TELEMETRY_OUT: " << status.ToString();
  }
}

}  // namespace obs
}  // namespace pilote
