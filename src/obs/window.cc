#include "obs/window.h"

#include <algorithm>

#include "common/macros.h"

namespace pilote {
namespace obs {

HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  PILOTE_CHECK_EQ(a.buckets.size(), b.buckets.size());
  HistogramSnapshot merged;
  merged.count = a.count + b.count;
  merged.sum = a.sum + b.sum;
  merged.min = std::min(a.min, b.min);
  merged.max = std::max(a.max, b.max);
  merged.buckets.resize(a.buckets.size());
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    merged.buckets[i] = a.buckets[i] + b.buckets[i];
  }
  return merged;
}

WindowedAggregator::WindowedAggregator(size_t capacity)
    : capacity_(capacity) {
  PILOTE_CHECK_GT(capacity, 0u);
}

void WindowedAggregator::Tick(const RawMetricsSnapshot& cumulative,
                              double timestamp_seconds) {
  MutexLock lock(mutex_);
  TickDelta tick;
  tick.timestamp_seconds = timestamp_seconds;
  if (has_baseline_) {
    tick.duration_seconds = std::max(0.0, timestamp_seconds - last_timestamp_);
  }
  std::map<SeriesKey, int64_t> counters_now;
  for (const RawCounterSample& c : cumulative.counters) {
    const SeriesKey key{c.name, c.labels};
    counters_now[key] = c.value;
    auto prev = prev_counters_.find(key);
    const int64_t before = prev == prev_counters_.end() ? 0 : prev->second;
    tick.counters[key] = c.value - before;
  }
  for (const GaugeSample& g : cumulative.gauges) {
    tick.gauges[{g.name, g.labels}] = g.value;
  }
  std::map<SeriesKey, HistogramSnapshot> histograms_now;
  for (const RawHistogramSample& h : cumulative.histograms) {
    const SeriesKey key{h.name, h.labels};
    histograms_now[key] = h.snapshot;
    auto prev = prev_histograms_.find(key);
    if (prev == prev_histograms_.end()) {
      tick.histograms[key] = h.snapshot;
    } else {
      tick.histograms[key] = Delta(prev->second, h.snapshot);
    }
  }
  prev_counters_ = std::move(counters_now);
  prev_histograms_ = std::move(histograms_now);
  has_baseline_ = true;
  last_timestamp_ = timestamp_seconds;
  if (ticks_.size() == capacity_) ticks_.erase(ticks_.begin());
  ticks_.push_back(std::move(tick));
}

WindowSummary WindowedAggregator::Summarize(size_t ticks) const {
  MutexLock lock(mutex_);
  WindowSummary summary;
  if (ticks_.empty()) return summary;
  const size_t n = std::min(ticks, ticks_.size());
  const size_t first = ticks_.size() - n;
  std::map<SeriesKey, int64_t> counters;
  std::map<SeriesKey, HistogramSnapshot> histograms;
  for (size_t i = first; i < ticks_.size(); ++i) {
    const TickDelta& tick = ticks_[i];
    summary.window_seconds += tick.duration_seconds;
    ++summary.ticks;
    for (const auto& [key, delta] : tick.counters) counters[key] += delta;
    for (const auto& [key, delta] : tick.histograms) {
      histograms[key] = MergeHistograms(histograms[key], delta);
    }
  }
  for (const auto& [key, delta] : counters) {
    WindowedCounterSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.delta = delta;
    if (summary.window_seconds > 0.0) {
      sample.rate_per_s =
          static_cast<double>(delta) / summary.window_seconds;
    }
    summary.counters.push_back(std::move(sample));
  }
  // Gauges are instantaneous: report the newest tick's values.
  for (const auto& [key, value] : ticks_.back().gauges) {
    summary.gauges.push_back({key.first, key.second, value});
  }
  for (const auto& [key, merged] : histograms) {
    summary.histograms.push_back(
        MakeHistogramSample(key.first, key.second, merged));
  }
  return summary;
}

HistogramSnapshot WindowedAggregator::WindowedHistogram(
    const std::string& name, const std::string& labels, size_t ticks) const {
  MutexLock lock(mutex_);
  HistogramSnapshot merged;
  if (ticks_.empty()) return merged;
  const size_t n = std::min(ticks, ticks_.size());
  for (size_t i = ticks_.size() - n; i < ticks_.size(); ++i) {
    auto it = ticks_[i].histograms.find({name, labels});
    if (it != ticks_[i].histograms.end()) {
      merged = MergeHistograms(merged, it->second);
    }
  }
  return merged;
}

double WindowedAggregator::WindowedRate(const std::string& name,
                                        const std::string& labels,
                                        size_t ticks) const {
  MutexLock lock(mutex_);
  if (ticks_.empty()) return 0.0;
  const size_t n = std::min(ticks, ticks_.size());
  int64_t delta = 0;
  double seconds = 0.0;
  for (size_t i = ticks_.size() - n; i < ticks_.size(); ++i) {
    seconds += ticks_[i].duration_seconds;
    auto it = ticks_[i].counters.find({name, labels});
    if (it != ticks_[i].counters.end()) delta += it->second;
  }
  return seconds > 0.0 ? static_cast<double>(delta) / seconds : 0.0;
}

size_t WindowedAggregator::tick_count() const {
  MutexLock lock(mutex_);
  return ticks_.size();
}

void WindowedAggregator::Reset() {
  MutexLock lock(mutex_);
  ticks_.clear();
  prev_counters_.clear();
  prev_histograms_.clear();
  has_baseline_ = false;
  last_timestamp_ = 0.0;
}

}  // namespace obs
}  // namespace pilote
