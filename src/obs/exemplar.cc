#include "obs/exemplar.h"

#include "common/macros.h"

namespace pilote {
namespace obs {

// hotpath-ok: one-time slot array allocation at construction
ExemplarRing::ExemplarRing(size_t capacity)
    : capacity_(capacity), slots_(std::make_unique<Slot[]>(capacity)) {
  PILOTE_CHECK_GT(capacity, 0u);
}

void ExemplarRing::Record(const SlowWindowExemplar& exemplar) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  uint64_t version = slot.version.load(std::memory_order_relaxed);
  // Claim the slot by making its version odd. Losing the race (another
  // writer wrapped around onto the same slot) drops this exemplar rather
  // than spin — Record must never block the serve hot path.
  if ((version & 1) != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    return;
  }
  slot.sequence.store(ticket, std::memory_order_relaxed);
  slot.session_id.store(exemplar.session_id, std::memory_order_relaxed);
  slot.model_version.store(exemplar.model_version, std::memory_order_relaxed);
  slot.queue_wait_ms.store(exemplar.queue_wait_ms, std::memory_order_relaxed);
  slot.batch_wait_ms.store(exemplar.batch_wait_ms, std::memory_order_relaxed);
  slot.predict_ms.store(exemplar.predict_ms, std::memory_order_relaxed);
  slot.total_ms.store(exemplar.total_ms, std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlowWindowExemplar> ExemplarRing::Snapshot() const {
  std::vector<SlowWindowExemplar> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.version.load(std::memory_order_acquire);
    // version 0 = never written; odd = write in flight.
    if (before == 0 || (before & 1) != 0) continue;
    SlowWindowExemplar e;
    e.sequence = slot.sequence.load(std::memory_order_relaxed);
    e.session_id = slot.session_id.load(std::memory_order_relaxed);
    e.model_version = slot.model_version.load(std::memory_order_relaxed);
    e.queue_wait_ms = slot.queue_wait_ms.load(std::memory_order_relaxed);
    e.batch_wait_ms = slot.batch_wait_ms.load(std::memory_order_relaxed);
    e.predict_ms = slot.predict_ms.load(std::memory_order_relaxed);
    e.total_ms = slot.total_ms.load(std::memory_order_relaxed);
    const uint64_t after = slot.version.load(std::memory_order_acquire);
    if (after != before) continue;  // torn read: a writer got in
    out.push_back(e);
  }
  return out;
}

void ExemplarRing::ResetForTesting() {
  for (size_t i = 0; i < capacity_; ++i) {
    // Settle any in-flight version parity too: stores, not +=.
    slots_[i].version.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
}

// hotpath-ok: process-lifetime singleton, allocates on first call only
ExemplarRing& SlowWindows() {
  // 64 slots: small enough to dump in every telemetry tick, large enough
  // that a burst of slow windows survives until the next scrape. Leaked so
  // instrumentation in static destructors stays safe.
  static ExemplarRing* ring = new ExemplarRing(64);
  return *ring;
}

}  // namespace obs
}  // namespace pilote
