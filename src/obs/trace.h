#ifndef PILOTE_OBS_TRACE_H_
#define PILOTE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {

// Scoped trace spans:
//
//   void Train() {
//     PILOTE_TRACE_SPAN("trainer/train");
//     for (...) {
//       PILOTE_TRACE_SPAN("trainer/epoch");
//       ...
//     }
//   }
//
// Spans nest through a thread-local stack and aggregate per span name
// (execution count, total wall time, self time = total minus nested span
// time). Aggregates feed the flat profile in obs::CaptureSnapshot; when a
// trace destination is configured (PILOTE_TRACE_OUT=path or
// StartTraceCapture), every span additionally records one Chrome
// `trace_event` for chrome://tracing / Perfetto.
//
// Disabled cost (obs::Enabled() false): one relaxed atomic load and a
// branch per span entry — spans are safe to leave in hot-ish paths like
// the per-epoch trainer loop, though per-GEMM-call granularity should use
// counters instead.

namespace internal {

// Aggregate across all executions of one span NAME (sites sharing a name
// share the aggregate). Monotonic nanosecond clock.
struct SpanStats {
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> total_ns{0};
  std::atomic<int64_t> child_ns{0};
};

// One static instance per PILOTE_TRACE_SPAN site; resolves name -> shared
// SpanStats exactly once (thread-safe via static-local initialization).
class SpanSite {
 public:
  explicit SpanSite(const char* name);

  const char* name() const { return name_; }
  SpanStats* stats() const { return stats_; }

 private:
  const char* name_;
  SpanStats* stats_;
};

// RAII span execution. Captures enablement at entry, so a span that
// straddles a SetEnabled flip stays internally consistent.
class ScopedSpan {
 public:
  explicit ScopedSpan(const SpanSite& site);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const SpanSite* site_ = nullptr;  // null when recording is disabled
  ScopedSpan* parent_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace internal

// Per-name flat profile rows, sorted by total time descending.
std::vector<SpanSample> SpanProfile();

// Zeroes all span aggregates and drops buffered trace events.
void ResetSpansForTesting();

// Starts buffering Chrome trace events (PILOTE_TRACE_OUT does this
// automatically and also writes the file at process exit).
void StartTraceCapture();
bool TraceCaptureActive();

// One buffered Chrome trace_event ("ph":"X"); timestamps are microseconds
// since the first captured event.
struct TraceEvent {
  const char* name;
  int64_t ts_us;
  int64_t dur_us;
  uint64_t tid;
};

// Snapshot of the buffered events (copy; capture keeps running).
std::vector<TraceEvent> CapturedTraceEvents();

// Writes the buffered events as Chrome trace_event JSON (load in
// chrome://tracing or https://ui.perfetto.dev). PILOTE_TRACE_OUT=path
// calls this automatically at process exit.
Status WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace pilote

// Aggregates the enclosed scope under `name` (a string literal or a pointer
// whose value never changes at this site) and nests within any enclosing
// span on this thread.
#define PILOTE_TRACE_SPAN(name)                                           \
  static const ::pilote::obs::internal::SpanSite PILOTE_OBS_CONCAT(       \
      pilote_obs_span_site_, __LINE__){name};                             \
  const ::pilote::obs::internal::ScopedSpan PILOTE_OBS_CONCAT(            \
      pilote_obs_span_, __LINE__){                                        \
      PILOTE_OBS_CONCAT(pilote_obs_span_site_, __LINE__)}

#endif  // PILOTE_OBS_TRACE_H_
