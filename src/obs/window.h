#ifndef PILOTE_OBS_WINDOW_H_
#define PILOTE_OBS_WINDOW_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {

// Time-windowed aggregation over the cumulative registries: a ring of
// periodic snapshot deltas. Each Tick() diffs the current cumulative
// RawMetricsSnapshot against the previous one and stores the per-tick
// increment; Summarize(n) merges the most recent n ticks into rolling
// counter rates and windowed histogram quantiles (p50/p95/p99/p999) —
// "p999 request latency over the last 10 seconds" instead of since
// process start.
//
// Not a hot-path object: Tick() and the queries take a Mutex and allocate
// freely. The hot path only ever touches the lock-free metric handles; the
// exporter thread calls in here at its own cadence.

// Rolling view of one counter over the summarized window.
struct WindowedCounterSample {
  std::string name;
  std::string labels;
  int64_t delta = 0;        // events within the window
  double rate_per_s = 0.0;  // delta / window_seconds (0 for empty window)
};

// Merge of the most recent ticks (counters and histograms are windowed
// deltas; gauges are the instantaneous value at the newest tick).
struct WindowSummary {
  double window_seconds = 0.0;
  int64_t ticks = 0;
  std::vector<WindowedCounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// Bucketwise sum of two deltas of the same histogram (min/max widen).
HistogramSnapshot MergeHistograms(const HistogramSnapshot& a,
                                  const HistogramSnapshot& b);

class WindowedAggregator {
 public:
  // Keeps the most recent `capacity` ticks (e.g. 60 one-second ticks for a
  // one-minute lookback).
  explicit WindowedAggregator(size_t capacity);

  // Ingests the current cumulative snapshot, storing the delta since the
  // previous Tick(). `timestamp_seconds` must be monotonic non-decreasing
  // across calls. The first Tick() establishes the baseline and stores the
  // full cumulative state as its delta.
  void Tick(const RawMetricsSnapshot& cumulative, double timestamp_seconds)
      PILOTE_EXCLUDES(mutex_);

  // Merges the most recent `ticks` deltas (clamped to what the ring holds).
  WindowSummary Summarize(size_t ticks) const PILOTE_EXCLUDES(mutex_);

  // Windowed view of one histogram; empty snapshot when the key is absent.
  HistogramSnapshot WindowedHistogram(const std::string& name,
                                      const std::string& labels,
                                      size_t ticks) const
      PILOTE_EXCLUDES(mutex_);

  // Windowed event rate of one counter; 0 when absent or no time elapsed.
  double WindowedRate(const std::string& name, const std::string& labels,
                      size_t ticks) const PILOTE_EXCLUDES(mutex_);

  size_t tick_count() const PILOTE_EXCLUDES(mutex_);

  // Drops all ticks and the cumulative baseline. Required after a registry
  // ResetForTesting(), whose rewind would otherwise make deltas negative.
  void Reset() PILOTE_EXCLUDES(mutex_);

 private:
  // (name, labels) uniquely identifies a series across registries.
  using SeriesKey = std::pair<std::string, std::string>;

  struct TickDelta {
    double timestamp_seconds = 0.0;
    double duration_seconds = 0.0;  // since the previous tick; 0 for first
    std::map<SeriesKey, int64_t> counters;
    std::map<SeriesKey, double> gauges;  // instantaneous at this tick
    std::map<SeriesKey, HistogramSnapshot> histograms;
  };

  mutable Mutex mutex_;
  const size_t capacity_;
  // Ring, oldest first (index 0 evicted when full).
  std::vector<TickDelta> ticks_ PILOTE_GUARDED_BY(mutex_);
  bool has_baseline_ PILOTE_GUARDED_BY(mutex_) = false;
  double last_timestamp_ PILOTE_GUARDED_BY(mutex_) = 0.0;
  std::map<SeriesKey, int64_t> prev_counters_ PILOTE_GUARDED_BY(mutex_);
  std::map<SeriesKey, HistogramSnapshot> prev_histograms_
      PILOTE_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_WINDOW_H_
