#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/macros.h"
#include "obs/exporter.h"

namespace pilote {
namespace obs {

namespace internal {

// hotpath-ok: one-time process init behind a function-local static; the
// exporter machinery it may start is never reached from serve steady state
bool InitFromEnvironment() {
  // A telemetry destination both enables the instrumentation and starts
  // the streaming exporter, for ANY pilote binary — not just the benches
  // that route flags through ConsumeMetricsFlags. Runs once (this function
  // backs a function-local static); the exporter start path never reads
  // Enabled() on this thread, so the in-progress static cannot re-enter.
  if (std::getenv("PILOTE_TELEMETRY_OUT") != nullptr) {
    MaybeStartTelemetryFromEnv();
    return true;
  }
  const char* metrics = std::getenv("PILOTE_METRICS");
  if (metrics != nullptr && std::strcmp(metrics, "0") != 0) return true;
  // A trace destination likewise implies the instrumentation must run.
  return std::getenv("PILOTE_TRACE_OUT") != nullptr;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::runtime_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram() { Reset(); }

double Histogram::BucketLowerBound(int i) {
  PILOTE_CHECK_GE(i, 0);
  PILOTE_CHECK_LE(i, kNumBuckets);
  return kFirstBound *
         std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

int Histogram::BucketIndex(double value) {
  if (!(value > kFirstBound)) return 0;  // also catches NaN
  const int i = static_cast<int>(
      std::log2(value / kFirstBound) * kBucketsPerOctave);
  return std::min(i, kNumBuckets - 1);
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t bits = min_bits_.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(bits) &&
         !min_bits_.compare_exchange_weak(bits, std::bit_cast<uint64_t>(value),
                                          std::memory_order_relaxed)) {
  }
  bits = max_bits_.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(bits) &&
         !max_bits_.compare_exchange_weak(bits, std::bit_cast<uint64_t>(value),
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[static_cast<size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  if (snapshot.count > 0) {
    snapshot.min =
        std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    snapshot.max =
        std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  min_bits_.store(std::bit_cast<uint64_t>(kInf), std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<uint64_t>(-kInf), std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  PILOTE_CHECK(q >= 0.0 && q <= 1.0) << "percentile quantile " << q;
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      const double lo = Histogram::BucketLowerBound(static_cast<int>(i));
      const double hi = Histogram::BucketLowerBound(static_cast<int>(i) + 1);
      const double frac =
          std::clamp((target - seen) / in_bucket, 0.0, 1.0);
      const double value = lo + frac * (hi - lo);
      // Observed extremes are exact; never report beyond them.
      return std::clamp(value, min, max);
    }
    seen += in_bucket;
  }
  return max;
}

HistogramSnapshot Delta(const HistogramSnapshot& before,
                        const HistogramSnapshot& after) {
  PILOTE_CHECK_EQ(before.buckets.size(), after.buckets.size());
  HistogramSnapshot delta;
  delta.count = after.count - before.count;
  delta.sum = after.sum - before.sum;
  delta.buckets.resize(after.buckets.size());
  int first = -1;
  int last = -1;
  for (size_t i = 0; i < after.buckets.size(); ++i) {
    delta.buckets[i] = after.buckets[i] - before.buckets[i];
    PILOTE_CHECK_GE(delta.buckets[i], 0)
        << "Delta requires snapshots of the same histogram, in order";
    if (delta.buckets[i] > 0) {
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
    }
  }
  if (first >= 0) {
    // The original min/max cannot be subtracted; approximate from the
    // populated bucket range (and never beyond the after-snapshot extremes,
    // which bound everything the delta can contain).
    delta.min = first == 0 ? after.min
                           : std::max(Histogram::BucketLowerBound(first),
                                      after.min);
    delta.max = std::min(Histogram::BucketLowerBound(last + 1), after.max);
  }
  return delta;
}

// ------------------------------------------------------------- Registry

// hotpath-ok: process-lifetime singleton, allocates on first call only
MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrumentation in static destructors stays safe.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

HistogramSample MakeHistogramSample(const std::string& name,
                                    const std::string& labels,
                                    const HistogramSnapshot& h) {
  HistogramSample s;
  s.name = name;
  s.labels = labels;
  s.count = h.count;
  s.sum = h.sum;
  s.min = h.min;
  s.max = h.max;
  s.p50 = h.Percentile(0.50);
  s.p95 = h.Percentile(0.95);
  s.p99 = h.Percentile(0.99);
  s.p999 = h.Percentile(0.999);
  return s;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, /*labels=*/"", counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, /*labels=*/"", gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(
        MakeHistogramSample(name, /*labels=*/"", histogram->Snapshot()));
  }
  return snapshot;
}

RawMetricsSnapshot MetricsRegistry::RawSnapshot() const {
  MutexLock lock(mutex_);
  RawMetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, /*labels=*/"", counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, /*labels=*/"", gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, /*labels=*/"", histogram->Snapshot()});
  }
  return snapshot;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace pilote
