#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace pilote {
namespace obs {
namespace {

// JSON-safe rendering of a double (JSON has no NaN/Inf).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics output " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != body.size() || !closed) {
    return Status::IoError("cannot write metrics output " + path);
  }
  return Status::Ok();
}

// Path for the at-exit JSON snapshot; leaked (atexit runs during static
// destruction, so this must not be a destructible static).
std::string*& ExitJsonPath() {
  static std::string* path = new std::string();
  return path;
}

void WriteMetricsJsonAtExit() {
  const std::string& path = *ExitJsonPath();
  if (path.empty()) return;
  Status status = WriteMetricsJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "--metrics-json: %s\n", status.ToString().c_str());
  }
}

}  // namespace

MetricsSnapshot CaptureSnapshot() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  snapshot.spans = SpanProfile();
  return snapshot;
}

std::string ToReport(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "== counters ==\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "  " << c.name << " = " << c.value << "\n";
  }
  os << "== gauges ==\n";
  for (const GaugeSample& g : snapshot.gauges) {
    os << "  " << g.name << " = " << g.value << "\n";
  }
  os << "== histograms ==\n";
  for (const HistogramSample& h : snapshot.histograms) {
    os << "  " << h.name << ": n=" << h.count << " mean="
       << (h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0)
       << " min=" << h.min << " p50=" << h.p50 << " p95=" << h.p95
       << " p99=" << h.p99 << " max=" << h.max << "\n";
  }
  os << "== spans (flat profile) ==\n";
  for (const SpanSample& s : snapshot.spans) {
    os << "  " << s.name << ": n=" << s.count << " total=" << s.total_seconds
       << "s self=" << s.self_seconds << "s\n";
  }
  return os.str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, snapshot.counters[i].name);
    os << ":" << snapshot.counters[i].value;
  }
  os << "},\n\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, snapshot.gauges[i].name);
    os << ":" << JsonNumber(snapshot.gauges[i].value);
  }
  os << "},\n\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, h.name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << JsonNumber(h.sum)
       << ",\"min\":" << JsonNumber(h.min) << ",\"max\":" << JsonNumber(h.max)
       << ",\"p50\":" << JsonNumber(h.p50) << ",\"p95\":" << JsonNumber(h.p95)
       << ",\"p99\":" << JsonNumber(h.p99) << "}";
  }
  os << "},\n\"spans\":{";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanSample& s = snapshot.spans[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, s.name);
    os << ":{\"count\":" << s.count
       << ",\"total_seconds\":" << JsonNumber(s.total_seconds)
       << ",\"self_seconds\":" << JsonNumber(s.self_seconds) << "}";
  }
  os << "}\n}\n";
  return os.str();
}

std::string ToCsv(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,count,value,sum,min,max,p50,p95,p99\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "counter," << c.name << ",," << c.value << ",,,,,,\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "gauge," << g.name << ",," << g.value << ",,,,,,\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "histogram," << h.name << "," << h.count << ",," << h.sum << ","
       << h.min << "," << h.max << "," << h.p50 << "," << h.p95 << ","
       << h.p99 << "\n";
  }
  for (const SpanSample& s : snapshot.spans) {
    os << "span," << s.name << "," << s.count << ",," << s.total_seconds
       << ",,,,," << "\n";
  }
  return os.str();
}

Status WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(path, ToJson(CaptureSnapshot()));
}

Status WriteMetricsCsv(const std::string& path) {
  return WriteStringToFile(path, ToCsv(CaptureSnapshot()));
}

void EnableMetricsJsonOutput(const std::string& path) {
  SetEnabled(true);
  const bool register_handler = ExitJsonPath()->empty();
  *ExitJsonPath() = path;
  if (register_handler && !path.empty()) {
    std::atexit(WriteMetricsJsonAtExit);
  }
}

int ConsumeMetricsFlags(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      EnableMetricsJsonOutput(arg + 15);
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      SetEnabled(true);
      StartTraceCapture();
      // Written at exit alongside the metrics snapshot.
      static std::string* trace_path = new std::string();
      const bool register_handler = trace_path->empty();
      *trace_path = arg + 12;
      if (register_handler && !trace_path->empty()) {
        std::atexit(+[]() {
          // Re-fetch: last --trace-out wins.
          Status status = WriteChromeTrace(*trace_path);
          if (!status.ok()) {
            std::fprintf(stderr, "--trace-out: %s\n",
                         status.ToString().c_str());
          }
        });
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

}  // namespace obs
}  // namespace pilote
