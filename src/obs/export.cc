#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "obs/exporter.h"
#include "obs/labels.h"
#include "obs/trace.h"

namespace pilote {
namespace obs {
namespace {

// `name` or `name{key="value"}` — the JSON/report key for one series.
std::string SeriesName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

// CSV cell for labels: no quotes (they would need CSV escaping) and no
// commas by construction (single key=value pair).
std::string CsvLabels(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  for (char c : labels) {
    if (c != '"') out += c;
  }
  return out;
}

// pilote_a_b for a metric named a/b (Prometheus name charset).
std::string PrometheusName(const std::string& name) {
  std::string out = "pilote_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// JSON-safe rendering of a double (JSON has no NaN/Inf).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics output " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != body.size() || !closed) {
    return Status::IoError("cannot write metrics output " + path);
  }
  return Status::Ok();
}

// Path for the at-exit JSON snapshot; leaked (atexit runs during static
// destruction, so this must not be a destructible static).
std::string*& ExitJsonPath() {
  static std::string* path = new std::string();
  return path;
}

void WriteMetricsJsonAtExit() {
  const std::string& path = *ExitJsonPath();
  if (path.empty()) return;
  Status status = WriteMetricsJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "--metrics-json: %s\n", status.ToString().c_str());
  }
}

}  // namespace

MetricsSnapshot CaptureSnapshot() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  FamilyRegistry::Global().AppendTo(&snapshot);
  snapshot.spans = SpanProfile();
  for (const fail::FailpointStats& stats :
       fail::FailpointRegistry::Global().Stats()) {
    snapshot.failpoints.push_back(
        {stats.name, stats.armed, stats.hits, stats.fires});
  }
  return snapshot;
}

std::string ToReport(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "== counters ==\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "  " << SeriesName(c.name, c.labels) << " = " << c.value << "\n";
  }
  os << "== gauges ==\n";
  for (const GaugeSample& g : snapshot.gauges) {
    os << "  " << SeriesName(g.name, g.labels) << " = " << g.value << "\n";
  }
  os << "== histograms ==\n";
  for (const HistogramSample& h : snapshot.histograms) {
    os << "  " << SeriesName(h.name, h.labels) << ": n=" << h.count
       << " mean="
       << (h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0)
       << " min=" << h.min << " p50=" << h.p50 << " p95=" << h.p95
       << " p99=" << h.p99 << " p999=" << h.p999 << " max=" << h.max << "\n";
  }
  os << "== spans (flat profile) ==\n";
  for (const SpanSample& s : snapshot.spans) {
    os << "  " << s.name << ": n=" << s.count << " total=" << s.total_seconds
       << "s self=" << s.self_seconds << "s\n";
  }
  if (!snapshot.failpoints.empty()) {
    os << "== failpoints ==\n";
    for (const FailpointSample& f : snapshot.failpoints) {
      os << "  " << f.name << ": " << (f.armed ? "armed" : "disarmed")
         << " hits=" << f.hits << " fires=" << f.fires << "\n";
    }
  }
  return os.str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, SeriesName(c.name, c.labels));
    os << ":" << c.value;
  }
  os << "},\n\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, SeriesName(g.name, g.labels));
    os << ":" << JsonNumber(g.value);
  }
  os << "},\n\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, SeriesName(h.name, h.labels));
    os << ":{\"count\":" << h.count << ",\"sum\":" << JsonNumber(h.sum)
       << ",\"min\":" << JsonNumber(h.min) << ",\"max\":" << JsonNumber(h.max)
       << ",\"p50\":" << JsonNumber(h.p50) << ",\"p95\":" << JsonNumber(h.p95)
       << ",\"p99\":" << JsonNumber(h.p99)
       << ",\"p999\":" << JsonNumber(h.p999) << "}";
  }
  os << "},\n\"spans\":{";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanSample& s = snapshot.spans[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, s.name);
    os << ":{\"count\":" << s.count
       << ",\"total_seconds\":" << JsonNumber(s.total_seconds)
       << ",\"self_seconds\":" << JsonNumber(s.self_seconds) << "}";
  }
  os << "},\n\"failpoints\":{";
  for (size_t i = 0; i < snapshot.failpoints.size(); ++i) {
    const FailpointSample& f = snapshot.failpoints[i];
    os << (i == 0 ? "\n" : ",\n");
    AppendJsonString(os, f.name);
    os << ":{\"armed\":" << (f.armed ? "true" : "false")
       << ",\"hits\":" << f.hits << ",\"fires\":" << f.fires << "}";
  }
  os << "}\n}\n";
  return os.str();
}

std::string ToCsv(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,labels,count,value,sum,min,max,p50,p95,p99,p999\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "counter," << c.name << "," << CsvLabels(c.labels) << ",,"
       << c.value << ",,,,,,,\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "gauge," << g.name << "," << CsvLabels(g.labels) << ",,"
       << g.value << ",,,,,,,\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "histogram," << h.name << "," << CsvLabels(h.labels) << ","
       << h.count << ",," << h.sum << "," << h.min << "," << h.max << ","
       << h.p50 << "," << h.p95 << "," << h.p99 << "," << h.p999 << "\n";
  }
  for (const SpanSample& s : snapshot.spans) {
    os << "span," << s.name << ",," << s.count << ",," << s.total_seconds
       << ",,,,,," << "\n";
  }
  return os.str();
}

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os.setf(std::ios::fmtflags(0), std::ios::floatfield);
  os.precision(9);
  std::string last_family;
  for (const CounterSample& c : snapshot.counters) {
    std::string family = PrometheusName(c.name);
    if (!EndsWith(family, "_total")) family += "_total";
    if (family != last_family) {
      os << "# TYPE " << family << " counter\n";
      last_family = family;
    }
    os << family;
    if (!c.labels.empty()) os << "{" << c.labels << "}";
    os << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string family = PrometheusName(g.name);
    if (family != last_family) {
      os << "# TYPE " << family << " gauge\n";
      last_family = family;
    }
    os << family;
    if (!g.labels.empty()) os << "{" << g.labels << "}";
    os << " " << g.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string family = PrometheusName(h.name);
    if (family != last_family) {
      os << "# TYPE " << family << " summary\n";
      last_family = family;
    }
    const std::string prefix = h.labels.empty() ? "" : h.labels + ",";
    os << family << "{" << prefix << "quantile=\"0.5\"} " << h.p50 << "\n";
    os << family << "{" << prefix << "quantile=\"0.95\"} " << h.p95 << "\n";
    os << family << "{" << prefix << "quantile=\"0.99\"} " << h.p99 << "\n";
    os << family << "{" << prefix << "quantile=\"0.999\"} " << h.p999 << "\n";
    const std::string suffix = h.labels.empty() ? "" : "{" + h.labels + "}";
    os << family << "_sum" << suffix << " " << h.sum << "\n";
    os << family << "_count" << suffix << " " << h.count << "\n";
  }
  if (!snapshot.failpoints.empty()) {
    os << "# TYPE pilote_failpoint_armed gauge\n";
    for (const FailpointSample& f : snapshot.failpoints) {
      os << "pilote_failpoint_armed{name=\"" << f.name << "\"} "
         << (f.armed ? 1 : 0) << "\n";
    }
    os << "# TYPE pilote_failpoint_hits_total counter\n";
    for (const FailpointSample& f : snapshot.failpoints) {
      os << "pilote_failpoint_hits_total{name=\"" << f.name << "\"} "
         << f.hits << "\n";
    }
    os << "# TYPE pilote_failpoint_fires_total counter\n";
    for (const FailpointSample& f : snapshot.failpoints) {
      os << "pilote_failpoint_fires_total{name=\"" << f.name << "\"} "
         << f.fires << "\n";
    }
  }
  return os.str();
}

Status WriteMetricsJson(const std::string& path) {
  return WriteStringToFile(path, ToJson(CaptureSnapshot()));
}

Status WriteMetricsCsv(const std::string& path) {
  return WriteStringToFile(path, ToCsv(CaptureSnapshot()));
}

void EnableMetricsJsonOutput(const std::string& path) {
  SetEnabled(true);
  const bool register_handler = ExitJsonPath()->empty();
  *ExitJsonPath() = path;
  if (register_handler && !path.empty()) {
    std::atexit(WriteMetricsJsonAtExit);
  }
}

int ConsumeMetricsFlags(int argc, char** argv) {
  int out = 1;
  std::string telemetry_prefix;
  int64_t telemetry_interval_ms = 0;  // 0 = keep the default
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      EnableMetricsJsonOutput(arg + 15);
    } else if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
      telemetry_prefix = arg + 16;
    } else if (std::strncmp(arg, "--telemetry-interval-ms=", 24) == 0) {
      telemetry_interval_ms = std::strtol(arg + 24, nullptr, 10);
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      SetEnabled(true);
      StartTraceCapture();
      // Written at exit alongside the metrics snapshot.
      static std::string* trace_path = new std::string();
      const bool register_handler = trace_path->empty();
      *trace_path = arg + 12;
      if (register_handler && !trace_path->empty()) {
        std::atexit(+[]() {
          // Re-fetch: last --trace-out wins.
          Status status = WriteChromeTrace(*trace_path);
          if (!status.ok()) {
            std::fprintf(stderr, "--trace-out: %s\n",
                         status.ToString().c_str());
          }
        });
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  if (!telemetry_prefix.empty()) {
    TelemetryOptions options;
    options.output_prefix = telemetry_prefix;
    if (telemetry_interval_ms > 0) options.interval_ms = telemetry_interval_ms;
    Status status = StartGlobalTelemetry(options);
    if (!status.ok()) {
      std::fprintf(stderr, "--telemetry-out: %s\n",
                   status.ToString().c_str());
    }
  }
  MaybeStartTelemetryFromEnv();
  return out;
}

}  // namespace obs
}  // namespace pilote
