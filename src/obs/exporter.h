#ifndef PILOTE_OBS_EXPORTER_H_
#define PILOTE_OBS_EXPORTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/window.h"

namespace pilote {
namespace obs {

// Background telemetry exporter: a thread that every `interval_ms` feeds
// the windowed aggregator one snapshot delta and emits two artifacts under
// `output_prefix`:
//
//   <prefix>.prom    Prometheus text exposition, rewritten per tick —
//                    cumulative counters/gauges/failpoints plus WINDOWED
//                    histogram quantiles (p50/p95/p99/p999 over the last
//                    `summary_window_ticks` ticks), ready for a file-based
//                    scrape (node_exporter textfile collector style).
//   <prefix>.jsonl   one JSON object appended per tick — the time series
//                    (rates, windowed quantiles, gauges, failpoint stats,
//                    slow-window exemplars) CI uploads as its artifact.
//
// Lifecycle: Start() launches the thread, Stop() (idempotent; also run by
// the destructor) joins it and performs one final tick so even runs shorter
// than an interval leave a record. Start/Stop are control-plane calls from
// one thread; the tick path never touches serving state beyond the
// lock-free registries, so ingest threads are never blocked.
struct TelemetryOptions {
  std::string output_prefix;
  int64_t interval_ms = 1000;
  // Ring depth of the aggregator (lookback = capacity * interval).
  size_t window_capacity_ticks = 60;
  // Ticks merged into each windowed quantile summary.
  size_t summary_window_ticks = 10;
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // kFailedPrecondition when already running; kInvalidArgument for a bad
  // interval or empty output prefix.
  Status Start() PILOTE_EXCLUDES(mutex_);

  // Signals the thread, joins it, runs a final tick. Safe to call twice.
  void Stop() PILOTE_EXCLUDES(mutex_);

  // Captures, windows and writes both outputs immediately (also the final
  // flush in Stop, and what tests call to avoid timing dependence).
  Status TickNow() PILOTE_EXCLUDES(mutex_);

  // Windowed views over what the exporter has ingested (tests ask this for
  // "p999 over the last N ticks" without parsing the artifacts).
  const WindowedAggregator& windows() const { return windows_; }

  int64_t ticks_completed() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  const TelemetryOptions& options() const { return options_; }

 private:
  void Loop() PILOTE_EXCLUDES(mutex_);

  const TelemetryOptions options_;
  const std::chrono::steady_clock::time_point start_time_;

  Mutex mutex_;
  CondVar stop_cv_;
  bool stop_requested_ PILOTE_GUARDED_BY(mutex_) = false;
  bool running_ PILOTE_GUARDED_BY(mutex_) = false;
  // unguarded: written in Start, joined in Stop; control-plane calls are
  // serialized by the caller.
  std::thread thread_;
  WindowedAggregator windows_;  // unguarded: internally synchronized
  std::atomic<int64_t> ticks_{0};
};

// Process-wide exporter, the PILOTE_TELEMETRY_OUT surface. Start enables
// metric recording, launches the exporter and registers an atexit stop
// (final flush); kFailedPrecondition if one is already running.
Status StartGlobalTelemetry(const TelemetryOptions& options);
void StopGlobalTelemetry();
TelemetryExporter* GlobalTelemetry();

// Applies PILOTE_TELEMETRY_OUT / PILOTE_TELEMETRY_INTERVAL_MS if set and no
// global exporter is running yet (called from ConsumeMetricsFlags).
void MaybeStartTelemetryFromEnv();

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_EXPORTER_H_
