#ifndef PILOTE_OBS_EXPORT_H_
#define PILOTE_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {

// Exporters over the metrics registry + span profile.
//
// Environment contract (read once at first use):
//   PILOTE_METRICS=1       enable recording (any value but "0")
//   PILOTE_TRACE_OUT=path  enable recording + buffer Chrome trace events,
//                          written to `path` at process exit
//   PILOTE_TELEMETRY_OUT=prefix      enable recording + start the streaming
//                                    TelemetryExporter (see obs/exporter.h);
//                                    applied by ConsumeMetricsFlags
//   PILOTE_TELEMETRY_INTERVAL_MS=n   exporter tick interval (default 1000)
//
// Programmatic contract: EnableMetricsJsonOutput(path) is what the bench
// harness's --metrics-json flag calls — it enables recording and arranges
// for a JSON snapshot at process exit, so every bench run can leave a
// machine-readable perf record next to its stdout tables.

// Registry metrics + labeled family slots + span profile + failpoint stats
// merged into one snapshot (the single chaos/perf artifact).
MetricsSnapshot CaptureSnapshot();

// Human-readable multi-section report (counters, gauges, histogram
// percentiles, flat span profile, failpoint activity).
std::string ToReport(const MetricsSnapshot& snapshot);

// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
// "spans":{...},"failpoints":{...}}. Stable key order (sorted by name);
// labeled series use the key `name{key="value"}`.
std::string ToJson(const MetricsSnapshot& snapshot);

// Flat CSV: kind,name,labels,count,value,sum,min,max,p50,p95,p99,p999 —
// one row per metric, empty cells where a column does not apply. The
// labels cell is rendered without quotes (`stage=predict`).
std::string ToCsv(const MetricsSnapshot& snapshot);

// Prometheus text exposition. Names map `a/b_ms` -> `pilote_a_b_ms`;
// counters gain the conventional `_total` suffix; histograms render as
// summaries with quantile labels 0.5/0.95/0.99/0.999 plus _sum/_count;
// failpoints render as pilote_failpoint_{hits,fires}_total{name="..."}.
std::string ToPrometheus(const MetricsSnapshot& snapshot);

// Captures a snapshot and writes it in the given format.
Status WriteMetricsJson(const std::string& path);
Status WriteMetricsCsv(const std::string& path);

// Enables recording now and writes a JSON snapshot to `path` at process
// exit (last call wins). Used by the bench --metrics-json flag.
void EnableMetricsJsonOutput(const std::string& path);

// Strips observability flags (--metrics-json=PATH, --trace-out=PATH,
// --telemetry-out=PREFIX, --telemetry-interval-ms=N) from an argv the
// downstream parser does not understand (google-benchmark rejects unknown
// flags), applying their effects, and returns the new argc. argv[0] is
// preserved. Also starts the streaming exporter when PILOTE_TELEMETRY_OUT
// is set in the environment.
int ConsumeMetricsFlags(int argc, char** argv);

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_EXPORT_H_
