#ifndef PILOTE_OBS_EXPORT_H_
#define PILOTE_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {

// Exporters over the metrics registry + span profile.
//
// Environment contract (read once at first use):
//   PILOTE_METRICS=1       enable recording (any value but "0")
//   PILOTE_TRACE_OUT=path  enable recording + buffer Chrome trace events,
//                          written to `path` at process exit
//
// Programmatic contract: EnableMetricsJsonOutput(path) is what the bench
// harness's --metrics-json flag calls — it enables recording and arranges
// for a JSON snapshot at process exit, so every bench run can leave a
// machine-readable perf record next to its stdout tables.

// Registry metrics + span profile merged into one snapshot.
MetricsSnapshot CaptureSnapshot();

// Human-readable multi-section report (counters, gauges, histogram
// percentiles, flat span profile).
std::string ToReport(const MetricsSnapshot& snapshot);

// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
// "spans":{...}}. Stable key order (sorted by name).
std::string ToJson(const MetricsSnapshot& snapshot);

// Flat CSV: kind,name,count,value,sum,min,max,p50,p95,p99 — one row per
// metric, empty cells where a column does not apply.
std::string ToCsv(const MetricsSnapshot& snapshot);

// Captures a snapshot and writes it in the given format.
Status WriteMetricsJson(const std::string& path);
Status WriteMetricsCsv(const std::string& path);

// Enables recording now and writes a JSON snapshot to `path` at process
// exit (last call wins). Used by the bench --metrics-json flag.
void EnableMetricsJsonOutput(const std::string& path);

// Strips observability flags (--metrics-json=PATH, --trace-out=PATH) from
// an argv the downstream parser does not understand (google-benchmark
// rejects unknown flags), applying their effects, and returns the new
// argc. argv[0] is preserved.
int ConsumeMetricsFlags(int argc, char** argv);

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_EXPORT_H_
