#ifndef PILOTE_OBS_EXEMPLAR_H_
#define PILOTE_OBS_EXEMPLAR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pilote {
namespace obs {

// Slow-window exemplars: when a request lands in a top latency bucket the
// serving path captures WHICH window was slow (session, model version) and
// WHERE the time went (per-stage breakdown), into a fixed-size lock-free
// ring. Aggregate histograms say "p999 is 40ms"; the exemplar ring says
// "session 17 on model v3 spent 38ms of it waiting in the queue".

struct SlowWindowExemplar {
  uint64_t sequence{0};  // capture order (monotonic per ring)
  uint64_t session_id{0};
  int64_t model_version{0};
  double queue_wait_ms{0.0};
  double batch_wait_ms{0.0};
  double predict_ms{0.0};
  double total_ms{0.0};
};

// Fixed-capacity overwrite-oldest ring. Record() is wait-free for the
// common case, allocation-free and never blocks: each slot is a per-slot
// seqlock whose fields are themselves relaxed atomics (so concurrent
// read/write is defined behaviour and TSan-clean); a writer that loses the
// claim race for a slot simply drops its exemplar, and a reader that
// observes a torn slot skips it. Sampling may therefore undercount under
// contention — by design, exemplars are diagnostics, not accounting.
class ExemplarRing {
 public:
  explicit ExemplarRing(size_t capacity);

  // Lock-free, alloc-free; safe from the serve hot path.
  void Record(const SlowWindowExemplar& exemplar);

  // Consistent copies of every populated slot, oldest-capture order not
  // guaranteed (use `sequence` to order). Torn/in-flight slots are skipped.
  std::vector<SlowWindowExemplar> Snapshot() const;

  // Total exemplars accepted (drops from lost claim races excluded).
  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  void ResetForTesting();

 private:
  struct Slot {
    // Even = stable, odd = write in flight; bumped twice per write.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> sequence{0};
    std::atomic<uint64_t> session_id{0};
    std::atomic<int64_t> model_version{0};
    std::atomic<double> queue_wait_ms{0.0};
    std::atomic<double> batch_wait_ms{0.0};
    std::atomic<double> predict_ms{0.0};
    std::atomic<double> total_ms{0.0};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<int64_t> recorded_{0};
};

// Process-wide ring the serving path records into and the telemetry
// exporter snapshots from.
ExemplarRing& SlowWindows();

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_EXEMPLAR_H_
