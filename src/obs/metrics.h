#ifndef PILOTE_OBS_METRICS_H_
#define PILOTE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace pilote {
namespace obs {

// Process-wide metrics: named counters, gauges and fixed-bucket latency
// histograms behind a single registry. The recording fast path is
// lock-free (relaxed atomics on pre-registered handles) and performs no
// heap allocation; registration (name -> handle) takes a mutex but runs
// once per instrumentation site via a function-local static.
//
// Everything is gated on Enabled(): with the PILOTE_METRICS environment
// variable unset and no runtime opt-in, every PILOTE_METRIC_* macro below
// is one relaxed atomic load and a predictable branch — the same disabled
// cost contract as common/numerics_guard.h.

namespace internal {

inline std::atomic<bool> runtime_enabled{false};

// Reads PILOTE_METRICS / PILOTE_TRACE_OUT once; either enables recording.
bool InitFromEnvironment();

inline bool EnvironmentEnabled() {
  static const bool enabled = InitFromEnvironment();
  return enabled;
}

}  // namespace internal

// Runtime opt-in/out (the environment opt-in cannot be revoked).
void SetEnabled(bool enabled);

inline bool Enabled() {
  return internal::EnvironmentEnabled() ||
         internal::runtime_enabled.load(std::memory_order_relaxed);
}

// Force-enables recording for a scope (e.g. ProfileEdge measuring per-window
// latency through the registry regardless of PILOTE_METRICS).
class ScopedEnable {
 public:
  ScopedEnable()
      : previous_(internal::runtime_enabled.load(std::memory_order_relaxed)) {
    SetEnabled(true);
  }
  ~ScopedEnable() { SetEnabled(previous_); }

  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

// Monotonically increasing event count (GEMM calls, pairs sampled, ...).
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written instantaneous value (support-set bytes, learning rate, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Frozen view of one histogram (or the difference of two views); all
// percentile math happens here so the live object stays write-only.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<int64_t> buckets;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  // Linear interpolation inside the containing log-spaced bucket;
  // q in [0, 1]. Returns 0 when the snapshot is empty.
  double Percentile(double q) const;
};

// Bucketwise `after - before`: the recordings that happened between the two
// snapshots of the SAME histogram. min/max are re-derived from the bucket
// edges (the originals cannot be subtracted).
HistogramSnapshot Delta(const HistogramSnapshot& before,
                        const HistogramSnapshot& after);

// Fixed-bucket latency/value histogram. Buckets are log-spaced (factor
// 2^(1/4) per bucket) spanning [1e-7, ~1e5); values outside clamp to the
// first/last bucket. Recording is a handful of relaxed atomic ops.
class Histogram {
 public:
  // 4 buckets per power of two across 40 octaves.
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 160;
  static constexpr double kFirstBound = 1e-7;

  Histogram();

  void Record(double value);

  HistogramSnapshot Snapshot() const;
  void Reset();

  // Lower edge of bucket i (upper edge of bucket i-1).
  static double BucketLowerBound(int i);
  static int BucketIndex(double value);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Raw float64 bits; updated via CAS so min/max stay exact.
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

// `labels` is the pre-rendered Prometheus-style label pair list without
// braces (`stage="predict"`); empty for unlabeled metrics. Samples of a
// labeled family carry the family name plus one labels string per slot.
struct CounterSample {
  std::string name;
  std::string labels;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string labels;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// One span name aggregated over all executions (see obs/trace.h).
struct SpanSample {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;  // total minus time spent in nested spans
};

// Activity of one fault-injection site (mirrors fail::FailpointStats;
// merged into the snapshot by obs::CaptureSnapshot so chaos runs ship one
// telemetry artifact instead of a metrics JSON plus a failpoint JSON).
struct FailpointSample {
  std::string name;
  bool armed = false;
  int64_t hits = 0;
  int64_t fires = 0;
};

// Point-in-time view of every registered metric (spans and failpoint stats
// are merged in by obs::CaptureSnapshot in obs/export.h; labeled-family
// samples by the family registry in obs/labels.h).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;
  std::vector<FailpointSample> failpoints;
};

// Raw cumulative view keeping full bucket vectors, the input the
// time-windowed aggregator (obs/window.h) diffs tick over tick. Gauges are
// instantaneous and carried through as-is.
struct RawHistogramSample {
  std::string name;
  std::string labels;
  HistogramSnapshot snapshot;
};

struct RawCounterSample {
  std::string name;
  std::string labels;
  int64_t value = 0;
};

struct RawMetricsSnapshot {
  std::vector<RawCounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<RawHistogramSample> histograms;
};

// Computes p50/p95/p99/p999 from a frozen histogram view; shared by the
// plain registry, the family registry (obs/labels.h) and the windowed
// aggregator (obs/window.h).
HistogramSample MakeHistogramSample(const std::string& name,
                                    const std::string& labels,
                                    const HistogramSnapshot& h);

// Name -> metric map. Handles returned by Get* are stable for the process
// lifetime (never invalidated, not even by ResetForTesting), so callers
// cache them in function-local statics and record lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name) PILOTE_EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) PILOTE_EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name) PILOTE_EXCLUDES(mutex_);

  // Counters/gauges/histograms only; spans live in the trace registry.
  MetricsSnapshot Snapshot() const PILOTE_EXCLUDES(mutex_);

  // Like Snapshot() but preserving full histogram bucket vectors, for the
  // windowed aggregator to diff tick over tick.
  RawMetricsSnapshot RawSnapshot() const PILOTE_EXCLUDES(mutex_);

  // Zeroes every registered metric IN PLACE; handles stay valid.
  void ResetForTesting() PILOTE_EXCLUDES(mutex_);

 private:
  MetricsRegistry() = default;

  // The maps are guarded; the pointees they own are lock-free metric
  // objects whose handles legitimately outlive the lock.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PILOTE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PILOTE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PILOTE_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace pilote

#define PILOTE_OBS_CONCAT_INNER(a, b) a##b
#define PILOTE_OBS_CONCAT(a, b) PILOTE_OBS_CONCAT_INNER(a, b)

// Adds `delta` to the counter `name`. When disabled: one relaxed load and a
// branch; the metric is not even registered. `name` must be a string whose
// value is identical on every execution of the site (typically a literal).
#define PILOTE_METRIC_COUNT(name, delta)                                    \
  do {                                                                      \
    if (::pilote::obs::Enabled()) {                                         \
      static ::pilote::obs::Counter& PILOTE_OBS_CONCAT(pilote_obs_c_,       \
                                                       __LINE__) =          \
          ::pilote::obs::MetricsRegistry::Global().GetCounter(name);        \
      PILOTE_OBS_CONCAT(pilote_obs_c_, __LINE__).Add(delta);                \
    }                                                                       \
  } while (0)

#define PILOTE_METRIC_GAUGE_SET(name, value)                                \
  do {                                                                      \
    if (::pilote::obs::Enabled()) {                                         \
      static ::pilote::obs::Gauge& PILOTE_OBS_CONCAT(pilote_obs_g_,         \
                                                     __LINE__) =            \
          ::pilote::obs::MetricsRegistry::Global().GetGauge(name);          \
      PILOTE_OBS_CONCAT(pilote_obs_g_, __LINE__).Set(value);                \
    }                                                                       \
  } while (0)

#define PILOTE_METRIC_HISTOGRAM(name, value)                                \
  do {                                                                      \
    if (::pilote::obs::Enabled()) {                                         \
      static ::pilote::obs::Histogram& PILOTE_OBS_CONCAT(pilote_obs_h_,     \
                                                         __LINE__) =        \
          ::pilote::obs::MetricsRegistry::Global().GetHistogram(name);      \
      PILOTE_OBS_CONCAT(pilote_obs_h_, __LINE__).Record(value);             \
    }                                                                       \
  } while (0)

#endif  // PILOTE_OBS_METRICS_H_
