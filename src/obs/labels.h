#ifndef PILOTE_OBS_LABELS_H_
#define PILOTE_OBS_LABELS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace pilote {
namespace obs {

// Labeled metric families: one metric name fanned out over a small, bounded
// set of label values (shard id, pipeline stage, degrade reason, ...).
//
// The contract mirrors obs/metrics.h: resolving a family takes a mutex once
// per site, after which recording through the returned view is lock-free and
// allocation-free (the view holds raw pointers to process-lifetime metric
// objects, indexed by the position of the label value in the caller's
// request). Cardinality is enforced at registration: a family may hold at
// most kMaxLabelValues distinct values, so the exporter's output size and
// the registry's memory stay bounded no matter what traffic does. Label
// VALUES are fixed at registration — there is deliberately no record-time
// "get or create" path, which is how unbounded-cardinality bugs happen.
//
// Different call sites may register the same family with different value
// subsets (e.g. two SessionManagers with different shard counts); values
// accumulate in the family-wide pool, every requester gets a view over
// exactly the values it asked for, and the label KEY must match across
// registrations (checked).

// Bound on distinct label values per family. Generous for the intended
// dimensions (shards, stages, degrade reasons, model versions) while keeping
// a full exposition dump trivially small.
inline constexpr size_t kMaxLabelValues = 64;

// Pre-resolved view over one family's metric slots. At(i) corresponds to
// the i-th label value passed at registration. Copyable; the pointees are
// owned by the registry and live for the process lifetime.
template <typename MetricT>
class FamilyView {
 public:
  FamilyView() = default;
  explicit FamilyView(std::vector<MetricT*> slots)
      : slots_(std::move(slots)) {}

  MetricT& At(size_t i) const {
    PILOTE_DCHECK(i < slots_.size());
    return *slots_[i];
  }
  size_t size() const { return slots_.size(); }

 private:
  std::vector<MetricT*> slots_;
};

using CounterFamily = FamilyView<Counter>;
using GaugeFamily = FamilyView<Gauge>;
using HistogramFamily = FamilyView<Histogram>;

// Registry of labeled families, separate from MetricsRegistry so the plain
// registry keeps zero knowledge of labels. Snapshots render each slot as a
// sample carrying the family name plus `key="value"` labels.
class FamilyRegistry {
 public:
  static FamilyRegistry& Global();

  // Resolves (or registers) a family and returns a view whose slot i maps
  // to values[i]. CHECK-fails on: empty values, a label key mismatch with a
  // prior registration of `name`, or the family exceeding kMaxLabelValues
  // distinct values. `name` follows the metric naming scheme; `label_key`
  // is a Prometheus-style label name ([a-z_][a-z0-9_]*).
  CounterFamily GetCounterFamily(const std::string& name,
                                 const std::string& label_key,
                                 const std::vector<std::string>& values)
      PILOTE_EXCLUDES(mutex_);
  GaugeFamily GetGaugeFamily(const std::string& name,
                             const std::string& label_key,
                             const std::vector<std::string>& values)
      PILOTE_EXCLUDES(mutex_);
  HistogramFamily GetHistogramFamily(const std::string& name,
                                     const std::string& label_key,
                                     const std::vector<std::string>& values)
      PILOTE_EXCLUDES(mutex_);

  // Appends every family slot to `snapshot` as labeled samples, in
  // deterministic (name, value-registration) order.
  void AppendTo(MetricsSnapshot* snapshot) const PILOTE_EXCLUDES(mutex_);
  void AppendTo(RawMetricsSnapshot* snapshot) const PILOTE_EXCLUDES(mutex_);

  // Zeroes every slot IN PLACE; views stay valid (same contract as
  // MetricsRegistry::ResetForTesting).
  void ResetForTesting() PILOTE_EXCLUDES(mutex_);

 private:
  template <typename MetricT>
  struct Family {
    std::string label_key;
    // Registration-ordered; looked up linearly (families are tiny).
    std::vector<std::pair<std::string, std::unique_ptr<MetricT>>> slots;
  };

  FamilyRegistry() = default;

  template <typename MetricT>
  FamilyView<MetricT> GetFamily(
      std::map<std::string, Family<MetricT>>* families,
      const std::string& name, const std::string& label_key,
      const std::vector<std::string>& values) PILOTE_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Family<Counter>> counters_ PILOTE_GUARDED_BY(mutex_);
  std::map<std::string, Family<Gauge>> gauges_ PILOTE_GUARDED_BY(mutex_);
  std::map<std::string, Family<Histogram>> histograms_
      PILOTE_GUARDED_BY(mutex_);
};

// Renders `key="value"` (value backslash-escaped) — the `labels` string
// stored on samples and emitted inside {} by the Prometheus exporter.
std::string RenderLabel(const std::string& key, const std::string& value);

}  // namespace obs
}  // namespace pilote

#endif  // PILOTE_OBS_LABELS_H_
