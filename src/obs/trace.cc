#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pilote {
namespace obs {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small dense thread ids for the trace output (std::thread::id renders as
// an opaque hash).
uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// name -> aggregate. Entries are leaked SpanStats so SpanSite can hold raw
// pointers for the process lifetime.
class SpanRegistry {
 public:
  // hotpath-ok: process-lifetime singleton, allocates on first call only
  static SpanRegistry& Global() {
    static SpanRegistry* registry = new SpanRegistry();
    return *registry;
  }

  internal::SpanStats* Resolve(const char* name) PILOTE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto& slot = stats_[name];
    if (slot == nullptr) slot = new internal::SpanStats();
    return slot;
  }

  std::vector<SpanSample> Profile() const PILOTE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    std::vector<SpanSample> rows;
    rows.reserve(stats_.size());
    for (const auto& [name, stats] : stats_) {
      SpanSample row;
      row.name = name;
      row.count = stats->count.load(std::memory_order_relaxed);
      // A site that was reached while recording was disabled registers its
      // name but never executes; keep such rows out of the profile.
      if (row.count == 0) continue;
      const int64_t total = stats->total_ns.load(std::memory_order_relaxed);
      const int64_t child = stats->child_ns.load(std::memory_order_relaxed);
      row.total_seconds = static_cast<double>(total) * 1e-9;
      row.self_seconds = static_cast<double>(total - child) * 1e-9;
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const SpanSample& a, const SpanSample& b) {
                return a.total_seconds > b.total_seconds;
              });
    return rows;
  }

  void ResetForTesting() PILOTE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (auto& [name, stats] : stats_) {
      stats->count.store(0, std::memory_order_relaxed);
      stats->total_ns.store(0, std::memory_order_relaxed);
      stats->child_ns.store(0, std::memory_order_relaxed);
    }
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, internal::SpanStats*> stats_ PILOTE_GUARDED_BY(mutex_);
};

// Chrome trace_event capture. Event appends take a mutex: capture is an
// opt-in debugging mode, and a mutex keeps the buffer TSan-clean without
// per-thread buffer stitching.
struct CaptureState {
  CaptureState() : base_ns(NowNanos()) {
    const char* path = std::getenv("PILOTE_TRACE_OUT");
    if (path != nullptr && path[0] != '\0') {
      exit_path = path;
      active.store(true, std::memory_order_relaxed);
      std::atexit(+[]() {
        Status status = WriteChromeTrace(Global().exit_path);
        if (!status.ok()) {
          std::fprintf(stderr, "PILOTE_TRACE_OUT: %s\n",
                       status.ToString().c_str());
        }
      });
    }
  }

  // hotpath-ok: process-lifetime singleton, allocates on first call only
  static CaptureState& Global() {
    static CaptureState* state = new CaptureState();
    return *state;
  }

  std::atomic<bool> active{false};
  const int64_t base_ns;
  // unguarded: written once in the constructor, before any other thread
  // can observe the (function-local static) instance.
  std::string exit_path;
  Mutex mutex;
  std::vector<TraceEvent> events PILOTE_GUARDED_BY(mutex);
};

thread_local internal::ScopedSpan* tls_current_span = nullptr;

}  // namespace

namespace internal {

SpanSite::SpanSite(const char* name)
    : name_(name), stats_(SpanRegistry::Global().Resolve(name)) {}

ScopedSpan::ScopedSpan(const SpanSite& site) {
  if (!Enabled()) return;
  site_ = &site;
  parent_ = tls_current_span;
  tls_current_span = this;
  start_ns_ = NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (site_ == nullptr) return;
  const int64_t duration_ns = NowNanos() - start_ns_;
  SpanStats* stats = site_->stats();
  stats->count.fetch_add(1, std::memory_order_relaxed);
  stats->total_ns.fetch_add(duration_ns, std::memory_order_relaxed);
  if (parent_ != nullptr && parent_->site_ != nullptr) {
    parent_->site_->stats()->child_ns.fetch_add(duration_ns,
                                                std::memory_order_relaxed);
  }
  tls_current_span = parent_;

  CaptureState& capture = CaptureState::Global();
  if (capture.active.load(std::memory_order_relaxed)) {
    TraceEvent event;
    event.name = site_->name();
    event.ts_us = (start_ns_ - capture.base_ns) / 1000;
    event.dur_us = duration_ns / 1000;
    event.tid = CurrentThreadId();
    MutexLock lock(capture.mutex);
    capture.events.push_back(event);
  }
}

}  // namespace internal

std::vector<SpanSample> SpanProfile() {
  return SpanRegistry::Global().Profile();
}

void ResetSpansForTesting() {
  SpanRegistry::Global().ResetForTesting();
  CaptureState& capture = CaptureState::Global();
  MutexLock lock(capture.mutex);
  capture.events.clear();
}

void StartTraceCapture() {
  CaptureState::Global().active.store(true, std::memory_order_relaxed);
}

bool TraceCaptureActive() {
  return CaptureState::Global().active.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> CapturedTraceEvents() {
  CaptureState& capture = CaptureState::Global();
  MutexLock lock(capture.mutex);
  return capture.events;
}

Status WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace output " + path);
  }
  const std::vector<TraceEvent> events = CapturedTraceEvents();
  std::fputs("{\"traceEvents\":[", file);
  bool first = true;
  for (const TraceEvent& event : events) {
    std::fprintf(file,
                 "%s\n{\"name\":\"%s\",\"cat\":\"pilote\",\"ph\":\"X\","
                 "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%llu}",
                 first ? "" : ",", event.name,
                 static_cast<long long>(event.ts_us),
                 static_cast<long long>(event.dur_us),
                 static_cast<unsigned long long>(event.tid));
    first = false;
  }
  std::fputs("\n]}\n", file);
  if (std::fclose(file) != 0) {
    return Status::IoError("cannot write trace output " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace pilote
