#ifndef PILOTE_SERIALIZE_QUANTIZE_H_
#define PILOTE_SERIALIZE_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pilote {
namespace serialize {

// Compressed on-device representations for the exemplar support set
// (the paper stores exemplars "in compressed format" to fit the edge
// storage budget; Sec 6.3 quotes 2500 exemplars in 3.2 MB and
// <200/class in <256 KB).
enum class QuantMode : uint8_t {
  kFloat32 = 0,  // no compression
  kFloat16 = 1,  // IEEE half precision, 2 bytes/element
  kInt8 = 2,     // per-tensor affine quantization, 1 byte/element
};

// A tensor stored in a compact byte representation.
class QuantizedTensor {
 public:
  // Compresses `tensor` with the given mode.
  static QuantizedTensor Quantize(const Tensor& tensor, QuantMode mode);

  // Reconstructs a float32 tensor (lossy for kFloat16/kInt8).
  Tensor Dequantize() const;

  QuantMode mode() const { return mode_; }
  const Shape& shape() const { return shape_; }
  // Payload size: quantized data plus the scale/offset metadata.
  int64_t SizeBytes() const;

 private:
  QuantMode mode_ = QuantMode::kFloat32;
  Shape shape_;
  std::vector<uint8_t> bytes_;
  // Affine parameters for kInt8: value = scale * (q - 128) + offset.
  float scale_ = 1.0f;
  float offset_ = 0.0f;
};

// IEEE 754 binary16 conversion primitives (round-to-nearest-even on encode).
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t half);

}  // namespace serialize
}  // namespace pilote

#endif  // PILOTE_SERIALIZE_QUANTIZE_H_
