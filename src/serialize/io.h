#ifndef PILOTE_SERIALIZE_IO_H_
#define PILOTE_SERIALIZE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serialize {

// Versioned little-endian binary format for tensors and module state.
// This is the artifact that "moves" from the cloud to the edge in the
// MAGNETO deployment: the pre-trained model, the feature scaler and the
// exemplar support set all round-trip through these functions.

// ---- Stream primitives ----
Status WriteTensor(std::ostream& os, const Tensor& tensor);
Result<Tensor> ReadTensor(std::istream& is);

// ---- Tensor collections ----
// File layout: magic "PLTT", format version, tensor count, tensors.
Status SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);
Result<std::vector<Tensor>> LoadTensors(const std::string& path);

// ---- Module state ----
// Serializes Module::StateTensors() in order (magic "PLTM"). Loading
// verifies that the stored shapes match the module's structure.
Status SaveModule(const std::string& path, nn::Module& module);
Status LoadModule(const std::string& path, nn::Module& module);

// In-memory round trip (used to model the cloud->edge transfer and to
// measure the transfer payload in bytes).
std::string SerializeModuleToString(nn::Module& module);
Status DeserializeModuleFromString(const std::string& payload,
                                   nn::Module& module);

}  // namespace serialize
}  // namespace pilote

#endif  // PILOTE_SERIALIZE_IO_H_
