#ifndef PILOTE_SERIALIZE_IO_H_
#define PILOTE_SERIALIZE_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serialize {

// Versioned little-endian binary format for tensors and module state.
// This is the artifact that "moves" from the cloud to the edge in the
// MAGNETO deployment: the pre-trained model, the feature scaler and the
// exemplar support set all round-trip through these functions.
//
// Crash safety (format version 2):
//  * Files are framed as [magic][u32 version][u64 payload_size]
//    [u32 payload_crc][payload]; the CRC-32 (common/crc32.h) covers the
//    payload, so a torn tail or a flipped bit is reported as kDataLoss —
//    the loader never deserializes garbage into a live model.
//  * Saves serialize to memory first, then go through WriteFileAtomic
//    (write to "<path>.tmp", then rename), so a crash mid-save leaves
//    either the old file or the new file, never a half-written one.
//  * Version-1 files (no CRC frame) still load via a fallback path.

// ---- Crash-safe file primitive ----
// Writes `contents` to "<path>.tmp" and renames it over `path`. Any
// failure leaves the previous contents of `path` intact (modulo the
// injected-torn-write failpoint below, which deliberately corrupts the
// destination to model a crash without this protection).
// Failpoints: "serialize/atomic/open", "serialize/atomic/write",
// "serialize/atomic/torn", "serialize/atomic/rename".
Status WriteFileAtomic(const std::string& path, std::string_view contents);

Result<std::string> ReadFileToString(const std::string& path);

// ---- Stream primitives ----
// Raw tensor records (rank, dims, row-major floats) with no CRC frame of
// their own; callers embed them inside a framed payload.
Status WriteTensor(std::ostream& os, const Tensor& tensor);
Result<Tensor> ReadTensor(std::istream& is);

// ---- Tensor collections ----
// File layout: magic "PLTT", CRC frame, tensor count, tensors.
Status SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);
Result<std::vector<Tensor>> LoadTensors(const std::string& path);

// ---- Module state ----
// Serializes Module::StateTensors() in order (magic "PLTM"). Saving reads
// through the const state surface; loading writes through
// Module::MutableStateTensors() and verifies that the stored shapes match
// the module's structure.
Status SaveModule(const std::string& path, const nn::Module& module);
Status LoadModule(const std::string& path, nn::Module& module);

// In-memory round trip (used to model the cloud->edge transfer and to
// measure the transfer payload in bytes). The string carries the same
// CRC frame as the on-disk format, so an embedded payload (e.g. inside a
// deployment artifact) detects corruption independently.
std::string SerializeModuleToString(const nn::Module& module);
Status DeserializeModuleFromString(const std::string& payload,
                                   nn::Module& module);

}  // namespace serialize
}  // namespace pilote

#endif  // PILOTE_SERIALIZE_IO_H_
