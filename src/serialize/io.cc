#include "serialize/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"

namespace pilote {
namespace serialize {
namespace {

constexpr uint32_t kTensorFileMagic = 0x504C5454;  // "PLTT"
constexpr uint32_t kModuleFileMagic = 0x504C544D;  // "PLTM"
// v1: [magic][version][u64 count][records] with no integrity check.
// v2: [magic][version][u64 payload_size][u32 payload_crc][payload] where
//     payload is the v1 body ([u64 count][records]).
constexpr uint32_t kLegacyFormatVersion = 1;
constexpr uint32_t kFormatVersion = 2;

void WriteU32(std::ostream& os, uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& os, uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

Result<uint32_t> ReadU32(std::istream& is) {
  uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated stream reading u32");
  return value;
}

Result<uint64_t> ReadU64(std::istream& is) {
  uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated stream reading u64");
  return value;
}

// Wraps an already-serialized payload in the v2 CRC frame.
std::string FramePayload(uint32_t magic, const std::string& payload) {
  std::ostringstream os(std::ios::binary);
  WriteU32(os, magic);
  WriteU32(os, kFormatVersion);
  WriteU64(os, static_cast<uint64_t>(payload.size()));
  WriteU32(os, Crc32(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return os.str();
}

// Checks magic/version and hands back a stream positioned at the body
// ([u64 count][records]). For v2 the payload is extracted and CRC-checked
// into `owned_payload` first; for v1 the original stream is used as-is.
Result<std::istream*> OpenBody(std::istream& is, uint32_t expected_magic,
                               std::istringstream& owned_payload) {
  PILOTE_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(is));
  if (magic != expected_magic) {
    return Status::DataLoss("bad magic number");
  }
  PILOTE_ASSIGN_OR_RETURN(uint32_t version, ReadU32(is));
  if (version == kLegacyFormatVersion) {
    return &is;  // pre-CRC format: body follows the version word directly
  }
  if (version != kFormatVersion) {
    return Status::DataLoss("unsupported format version " +
                            std::to_string(version));
  }
  PILOTE_ASSIGN_OR_RETURN(uint64_t payload_size, ReadU64(is));
  PILOTE_ASSIGN_OR_RETURN(uint32_t expected_crc, ReadU32(is));
  if (payload_size > (1ULL << 33)) {
    return Status::DataLoss("implausible payload size");
  }
  std::string payload(static_cast<size_t>(payload_size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is) return Status::DataLoss("truncated payload");
  uint32_t actual_crc = Crc32(payload);
  if (actual_crc != expected_crc) {
    return Status::DataLoss("payload checksum mismatch (stored " +
                            std::to_string(expected_crc) + ", computed " +
                            std::to_string(actual_crc) + ")");
  }
  owned_payload.str(std::move(payload));
  return &owned_payload;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("serialize/atomic/open"));
  {
    // Simulated torn write: a crash mid-write with no tmp/rename dance
    // would leave a prefix of the new contents at the destination. The
    // chaos suite arms this to prove loaders reject such a file.
    Status torn = PILOTE_FAILPOINT("serialize/atomic/torn");
    if (!torn.ok()) {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      if (os) {
        os.write(contents.data(),
                 static_cast<std::streamsize>(contents.size() / 2));
      }
      return torn;
    }
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) return Status::IoError("cannot open for write: " + tmp_path);
    Status write_fault = PILOTE_FAILPOINT("serialize/atomic/write");
    if (!write_fault.ok()) {
      os.close();
      std::remove(tmp_path.c_str());
      return write_fault;
    }
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp_path.c_str());
      return Status::IoError("failed writing " + tmp_path);
    }
  }
  Status rename_fault = PILOTE_FAILPOINT("serialize/atomic/rename");
  if (!rename_fault.ok()) {
    std::remove(tmp_path.c_str());
    return rename_fault;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " over " + path);
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is && !is.eof()) return Status::IoError("failed reading " + path);
  return buffer.str();
}

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  WriteU32(os, static_cast<uint32_t>(tensor.rank()));
  for (int i = 0; i < tensor.rank(); ++i) {
    WriteU64(os, static_cast<uint64_t>(tensor.dim(i)));
  }
  os.write(reinterpret_cast<const char*>(tensor.data()),
           static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!os) return Status::IoError("failed writing tensor");
  return Status::Ok();
}

Result<Tensor> ReadTensor(std::istream& is) {
  PILOTE_ASSIGN_OR_RETURN(uint32_t rank, ReadU32(is));
  if (rank > 8) return Status::DataLoss("implausible tensor rank");
  std::vector<int64_t> dims;
  dims.reserve(rank);
  int64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint64_t dim, ReadU64(is));
    if (dim > (1ULL << 32)) return Status::DataLoss("implausible dimension");
    dims.push_back(static_cast<int64_t>(dim));
    numel *= static_cast<int64_t>(dim);
  }
  Tensor tensor((Shape(dims)));
  is.read(reinterpret_cast<char*>(tensor.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!is) return Status::DataLoss("truncated tensor payload");
  return tensor;
}

namespace {

Status WriteTensorListBody(std::ostream& os,
                           const std::vector<const Tensor*>& tensors) {
  WriteU64(os, static_cast<uint64_t>(tensors.size()));
  for (const Tensor* tensor : tensors) {
    PILOTE_RETURN_IF_ERROR(WriteTensor(os, *tensor));
  }
  if (!os) return Status::IoError("failed writing tensor list");
  return Status::Ok();
}

}  // namespace

Status SaveTensors(const std::string& path,
                   const std::vector<Tensor>& tensors) {
  std::vector<const Tensor*> refs;
  refs.reserve(tensors.size());
  for (const Tensor& tensor : tensors) refs.push_back(&tensor);
  std::ostringstream body(std::ios::binary);
  PILOTE_RETURN_IF_ERROR(WriteTensorListBody(body, refs));
  return WriteFileAtomic(path, FramePayload(kTensorFileMagic, body.str()));
}

Result<std::vector<Tensor>> LoadTensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  std::istringstream owned;
  PILOTE_ASSIGN_OR_RETURN(std::istream * body,
                          OpenBody(is, kTensorFileMagic, owned));
  PILOTE_ASSIGN_OR_RETURN(uint64_t count, ReadU64(*body));
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PILOTE_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(*body));
    tensors.push_back(std::move(tensor));
  }
  return tensors;
}

namespace {

std::string SerializeModuleBody(const nn::Module& module) {
  std::vector<const Tensor*> refs = module.StateTensors();
  std::ostringstream body(std::ios::binary);
  Status status = WriteTensorListBody(body, refs);
  // Writing to a memory stream only fails on logic errors, never I/O.
  PILOTE_CHECK(status.ok()) << status.ToString();
  return body.str();
}

Status ReadModuleBody(std::istream& is, nn::Module& module) {
  std::vector<Tensor*> state = module.MutableStateTensors();
  PILOTE_ASSIGN_OR_RETURN(uint64_t count, ReadU64(is));
  if (count != state.size()) {
    return Status::DataLoss("module state count mismatch: stored " +
                            std::to_string(count) + ", module has " +
                            std::to_string(state.size()));
  }
  for (Tensor* slot : state) {
    PILOTE_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(is));
    if (tensor.shape() != slot->shape()) {
      return Status::DataLoss("module state shape mismatch: stored " +
                              tensor.shape().ToString() + ", module has " +
                              slot->shape().ToString());
    }
    *slot = std::move(tensor);
  }
  return Status::Ok();
}

Status ReadFramedModule(std::istream& is, nn::Module& module) {
  std::istringstream owned;
  PILOTE_ASSIGN_OR_RETURN(std::istream * body,
                          OpenBody(is, kModuleFileMagic, owned));
  return ReadModuleBody(*body, module);
}

}  // namespace

Status SaveModule(const std::string& path, const nn::Module& module) {
  return WriteFileAtomic(
      path, FramePayload(kModuleFileMagic, SerializeModuleBody(module)));
}

Status LoadModule(const std::string& path, nn::Module& module) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  return ReadFramedModule(is, module);
}

std::string SerializeModuleToString(const nn::Module& module) {
  return FramePayload(kModuleFileMagic, SerializeModuleBody(module));
}

Status DeserializeModuleFromString(const std::string& payload,
                                   nn::Module& module) {
  std::istringstream is(payload, std::ios::binary);
  return ReadFramedModule(is, module);
}

}  // namespace serialize
}  // namespace pilote
