#include "serialize/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace pilote {
namespace serialize {
namespace {

constexpr uint32_t kTensorFileMagic = 0x504C5454;  // "PLTT"
constexpr uint32_t kModuleFileMagic = 0x504C544D;  // "PLTM"
constexpr uint32_t kFormatVersion = 1;

void WriteU32(std::ostream& os, uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& os, uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

Result<uint32_t> ReadU32(std::istream& is) {
  uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated stream reading u32");
  return value;
}

Result<uint64_t> ReadU64(std::istream& is) {
  uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated stream reading u64");
  return value;
}

Status WriteHeader(std::ostream& os, uint32_t magic, uint64_t count) {
  WriteU32(os, magic);
  WriteU32(os, kFormatVersion);
  WriteU64(os, count);
  if (!os) return Status::IoError("failed writing header");
  return Status::Ok();
}

Result<uint64_t> ReadHeader(std::istream& is, uint32_t expected_magic) {
  PILOTE_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(is));
  if (magic != expected_magic) {
    return Status::DataLoss("bad magic number");
  }
  PILOTE_ASSIGN_OR_RETURN(uint32_t version, ReadU32(is));
  if (version != kFormatVersion) {
    return Status::DataLoss("unsupported format version " +
                            std::to_string(version));
  }
  return ReadU64(is);
}

}  // namespace

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  WriteU32(os, static_cast<uint32_t>(tensor.rank()));
  for (int i = 0; i < tensor.rank(); ++i) {
    WriteU64(os, static_cast<uint64_t>(tensor.dim(i)));
  }
  os.write(reinterpret_cast<const char*>(tensor.data()),
           static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!os) return Status::IoError("failed writing tensor");
  return Status::Ok();
}

Result<Tensor> ReadTensor(std::istream& is) {
  PILOTE_ASSIGN_OR_RETURN(uint32_t rank, ReadU32(is));
  if (rank > 8) return Status::DataLoss("implausible tensor rank");
  std::vector<int64_t> dims;
  dims.reserve(rank);
  int64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint64_t dim, ReadU64(is));
    if (dim > (1ULL << 32)) return Status::DataLoss("implausible dimension");
    dims.push_back(static_cast<int64_t>(dim));
    numel *= static_cast<int64_t>(dim);
  }
  Tensor tensor((Shape(dims)));
  is.read(reinterpret_cast<char*>(tensor.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!is) return Status::DataLoss("truncated tensor payload");
  return tensor;
}

Status SaveTensors(const std::string& path,
                   const std::vector<Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);
  PILOTE_RETURN_IF_ERROR(WriteHeader(os, kTensorFileMagic, tensors.size()));
  for (const Tensor& tensor : tensors) {
    PILOTE_RETURN_IF_ERROR(WriteTensor(os, tensor));
  }
  return Status::Ok();
}

Result<std::vector<Tensor>> LoadTensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  PILOTE_ASSIGN_OR_RETURN(uint64_t count, ReadHeader(is, kTensorFileMagic));
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PILOTE_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(is));
    tensors.push_back(std::move(tensor));
  }
  return tensors;
}

namespace {

Status WriteModuleState(std::ostream& os, nn::Module& module) {
  std::vector<Tensor*> state = module.StateTensors();
  PILOTE_RETURN_IF_ERROR(WriteHeader(os, kModuleFileMagic, state.size()));
  for (const Tensor* tensor : state) {
    PILOTE_RETURN_IF_ERROR(WriteTensor(os, *tensor));
  }
  return Status::Ok();
}

Status ReadModuleState(std::istream& is, nn::Module& module) {
  std::vector<Tensor*> state = module.StateTensors();
  PILOTE_ASSIGN_OR_RETURN(uint64_t count, ReadHeader(is, kModuleFileMagic));
  if (count != state.size()) {
    return Status::DataLoss("module state count mismatch: stored " +
                            std::to_string(count) + ", module has " +
                            std::to_string(state.size()));
  }
  for (Tensor* slot : state) {
    PILOTE_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(is));
    if (tensor.shape() != slot->shape()) {
      return Status::DataLoss("module state shape mismatch: stored " +
                              tensor.shape().ToString() + ", module has " +
                              slot->shape().ToString());
    }
    *slot = std::move(tensor);
  }
  return Status::Ok();
}

}  // namespace

Status SaveModule(const std::string& path, nn::Module& module) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);
  return WriteModuleState(os, module);
}

Status LoadModule(const std::string& path, nn::Module& module) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);
  return ReadModuleState(is, module);
}

std::string SerializeModuleToString(nn::Module& module) {
  std::ostringstream os(std::ios::binary);
  Status status = WriteModuleState(os, module);
  PILOTE_CHECK(status.ok()) << status.ToString();
  return os.str();
}

Status DeserializeModuleFromString(const std::string& payload,
                                   nn::Module& module) {
  std::istringstream is(payload, std::ios::binary);
  return ReadModuleState(is, module);
}

}  // namespace serialize
}  // namespace pilote
