#include "serialize/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace pilote {
namespace serialize {

uint16_t FloatToHalf(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  uint32_t mantissa = bits & 0x7FFFFFu;

  if (((bits >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN.
    return static_cast<uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0u));
  }
  if (exponent >= 0x1F) {
    // Overflow -> inf.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<uint16_t>(sign);  // underflow -> 0
    // Subnormal half: shift in the implicit leading 1.
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    uint32_t half_mantissa = mantissa >> shift;
    // Round to nearest even.
    const uint32_t rem = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mantissa & 1u))) {
      ++half_mantissa;
    }
    return static_cast<uint16_t>(sign | half_mantissa);
  }
  uint32_t half_mantissa = mantissa >> 13;
  const uint32_t rem = mantissa & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mantissa & 1u))) {
    ++half_mantissa;
    if (half_mantissa == 0x400u) {  // mantissa carry into exponent
      half_mantissa = 0;
      ++exponent;
      if (exponent >= 0x1F) return static_cast<uint16_t>(sign | 0x7C00u);
    }
  }
  return static_cast<uint16_t>(sign | (static_cast<uint32_t>(exponent) << 10) |
                               half_mantissa);
}

float HalfToFloat(uint16_t half) {
  const uint32_t sign = (static_cast<uint32_t>(half) & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1Fu;
  const uint32_t mantissa = half & 0x3FFu;
  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

QuantizedTensor QuantizedTensor::Quantize(const Tensor& tensor,
                                          QuantMode mode) {
  QuantizedTensor q;
  q.mode_ = mode;
  q.shape_ = tensor.shape();
  const int64_t n = tensor.numel();
  switch (mode) {
    case QuantMode::kFloat32: {
      q.bytes_.resize(static_cast<size_t>(n) * sizeof(float));
      std::memcpy(q.bytes_.data(), tensor.data(), q.bytes_.size());
      break;
    }
    case QuantMode::kFloat16: {
      q.bytes_.resize(static_cast<size_t>(n) * sizeof(uint16_t));
      auto* out = reinterpret_cast<uint16_t*>(q.bytes_.data());
      for (int64_t i = 0; i < n; ++i) out[i] = FloatToHalf(tensor[i]);
      break;
    }
    case QuantMode::kInt8: {
      float lo = 0.0f;
      float hi = 0.0f;
      if (n > 0) {
        lo = *std::min_element(tensor.data(), tensor.data() + n);
        hi = *std::max_element(tensor.data(), tensor.data() + n);
      }
      const float range = std::max(hi - lo, 1e-12f);
      q.scale_ = range / 255.0f;
      q.offset_ = lo + 128.0f * q.scale_;
      q.bytes_.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const float normalized = (tensor[i] - q.offset_) / q.scale_;
        const int quantized =
            static_cast<int>(std::lround(normalized)) + 128;
        q.bytes_[static_cast<size_t>(i)] =
            static_cast<uint8_t>(std::clamp(quantized, 0, 255));
      }
      break;
    }
  }
  return q;
}

Tensor QuantizedTensor::Dequantize() const {
  Tensor out(shape_);
  const int64_t n = out.numel();
  switch (mode_) {
    case QuantMode::kFloat32: {
      PILOTE_CHECK_EQ(bytes_.size(), static_cast<size_t>(n) * sizeof(float));
      std::memcpy(out.data(), bytes_.data(), bytes_.size());
      break;
    }
    case QuantMode::kFloat16: {
      PILOTE_CHECK_EQ(bytes_.size(), static_cast<size_t>(n) * sizeof(uint16_t));
      const auto* in = reinterpret_cast<const uint16_t*>(bytes_.data());
      for (int64_t i = 0; i < n; ++i) out[i] = HalfToFloat(in[i]);
      break;
    }
    case QuantMode::kInt8: {
      PILOTE_CHECK_EQ(bytes_.size(), static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        out[i] = scale_ * (static_cast<float>(bytes_[static_cast<size_t>(i)]) -
                           128.0f) +
                 offset_;
      }
      break;
    }
  }
  return out;
}

int64_t QuantizedTensor::SizeBytes() const {
  // Payload plus affine metadata and shape bookkeeping.
  return static_cast<int64_t>(bytes_.size()) + 2 * sizeof(float) +
         static_cast<int64_t>(shape_.rank()) * sizeof(int64_t);
}

}  // namespace serialize
}  // namespace pilote
