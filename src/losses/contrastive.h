#ifndef PILOTE_LOSSES_CONTRASTIVE_H_
#define PILOTE_LOSSES_CONTRASTIVE_H_

#include "autograd/variable.h"

namespace pilote {
namespace losses {

// Functional form of the negative-pair hinge.
enum class ContrastiveForm {
  // The paper's Eq. 2: Y * d^2 + (1 - Y) * max(0, m^2 - d^2).
  // Note: the gradient of the hinge vanishes as d -> 0, so two classes
  // collapsed onto the same embedding point cannot be pushed apart.
  kSquaredHinge,
  // Hadsell-Chopra-LeCun (2006): Y * d^2 + (1 - Y) * max(0, m - d)^2.
  // Finite repulsion near d = 0; the robust choice for incremental updates
  // where a new class may land exactly on an old cluster.
  kHadsell,
};

// Supervised margin contrastive loss over a batch of embedded pairs,
// averaged over the batch. `left` and `right` are [n, d] embeddings;
// `similar` is a length-n 0/1 tensor (Y = 1 for same-class pairs).
autograd::Variable ContrastiveLoss(
    const autograd::Variable& left, const autograd::Variable& right,
    const Tensor& similar, float margin,
    ContrastiveForm form = ContrastiveForm::kSquaredHinge);

// Forward-only value on plain tensors (validation / monitoring path).
float ContrastiveLossValue(const Tensor& left, const Tensor& right,
                           const Tensor& similar, float margin,
                           ContrastiveForm form = ContrastiveForm::kSquaredHinge);

}  // namespace losses
}  // namespace pilote

#endif  // PILOTE_LOSSES_CONTRASTIVE_H_
