#include "losses/contrastive.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "common/macros.h"
#include "common/numerics_guard.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace losses {
namespace {

// Keeps Sqrt differentiable at collapsed pairs.
constexpr float kSqrtEps = 1e-12f;

}  // namespace

autograd::Variable ContrastiveLoss(const autograd::Variable& left,
                                   const autograd::Variable& right,
                                   const Tensor& similar, float margin,
                                   ContrastiveForm form) {
  PILOTE_TRACE_SPAN("losses/contrastive_forward");
  namespace ag = autograd;
  const int64_t n = left.value().rows();
  PILOTE_CHECK_EQ(right.value().rows(), n);
  PILOTE_CHECK_EQ(similar.numel(), n);
  PILOTE_CHECK_GT(margin, 0.0f);

  PILOTE_CHECK_NUMERICS("ContrastiveLoss left embedding", left.value());
  PILOTE_CHECK_NUMERICS("ContrastiveLoss right embedding", right.value());

  ag::Variable y = ag::Variable::Constant(similar);
  Tensor one_minus_y_t(similar.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float yi = similar[i];
    PILOTE_CHECK(yi == 0.0f || yi == 1.0f) << "similar must be 0/1, got " << yi;
    one_minus_y_t[i] = 1.0f - yi;
  }
  ag::Variable one_minus_y = ag::Variable::Constant(one_minus_y_t);

  // d2[i] = ||left_i - right_i||^2
  ag::Variable d2 = ag::RowSum(ag::Square(ag::Sub(left, right)));
  ag::Variable pos = ag::Mul(y, d2);
  ag::Variable hinge;
  switch (form) {
    case ContrastiveForm::kSquaredHinge:
      // max(0, m^2 - d^2)
      hinge = ag::Relu(ag::AddScalar(ag::Neg(d2), margin * margin));
      break;
    case ContrastiveForm::kHadsell: {
      // max(0, m - d)^2 with d = sqrt(d2 + eps)
      ag::Variable d = ag::Sqrt(d2, kSqrtEps);
      hinge = ag::Square(ag::Relu(ag::AddScalar(ag::Neg(d), margin)));
      break;
    }
  }
  ag::Variable neg = ag::Mul(one_minus_y, hinge);
  ag::Variable loss = ag::Mean(ag::Add(pos, neg));
  PILOTE_CHECK_NUMERICS("ContrastiveLoss output", loss.value());
  return loss;
}

float ContrastiveLossValue(const Tensor& left, const Tensor& right,
                           const Tensor& similar, float margin,
                           ContrastiveForm form) {
  const int64_t n = left.rows();
  PILOTE_CHECK_EQ(right.rows(), n);
  PILOTE_CHECK_EQ(similar.numel(), n);
  PILOTE_CHECK_GT(n, 0);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float d2 = 0.0f;
    const float* pl = left.row(i);
    const float* pr = right.row(i);
    for (int64_t c = 0; c < left.cols(); ++c) {
      const float diff = pl[c] - pr[c];
      d2 += diff * diff;
    }
    float hinge = 0.0f;
    switch (form) {
      case ContrastiveForm::kSquaredHinge:
        hinge = std::max(0.0f, margin * margin - d2);
        break;
      case ContrastiveForm::kHadsell: {
        const float gap = std::max(0.0f, margin - std::sqrt(d2));
        hinge = gap * gap;
        break;
      }
    }
    total += similar[i] * d2 + (1.0f - similar[i]) * hinge;
  }
  const float loss = static_cast<float>(total / static_cast<double>(n));
  PILOTE_CHECK_NUMERICS_SCALAR("ContrastiveLossValue", loss);
  return loss;
}

}  // namespace losses
}  // namespace pilote
