#ifndef PILOTE_LOSSES_PAIR_SAMPLER_H_
#define PILOTE_LOSSES_PAIR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pilote {
namespace losses {

// Which candidate pairs feed the contrastive loss.
enum class PairStrategy {
  // Random pairs over one sample set, balanced 50/50 positive/negative.
  // Used for cloud pre-training and the re-trained baseline.
  kBalancedRandom,
  // PILOTE's reduced pair set (Sec 5.2): (old exemplar x new sample) cross
  // pairs — negatives by construction — plus (new x new) pairs. Old-old
  // structure is pinned by the distillation term, so old-old pairs are
  // omitted, reducing the pair pool to C(n_t, 2) + |D_o|*|D_n|.
  kCrossAndNew,
  // Uniform random pairs over the union of both sets (the unreduced
  // alternative; kept for the pair-strategy ablation).
  kAllPairs,
};

// A batch of feature pairs for the contrastive loss.
struct PairBatch {
  Tensor left;     // [b, d]
  Tensor right;    // [b, d]
  Tensor similar;  // [b], 1.0 when the pair shares a class
  // True where `left` is an old-class exemplar of a cross pair. PILOTE's
  // trainer treats those rows as constants (stop-gradient): distillation
  // already pins the old side, so the contrastive push moves only the new
  // sample (Sec 5.2). Empty when the strategy produces no cross pairs.
  std::vector<bool> left_is_old;
};

// Stochastic pair generator over one or two labeled sample sets.
// Deterministic given the seed.
class PairSampler {
 public:
  // Single-set sampler (kBalancedRandom or kAllPairs).
  PairSampler(Tensor features, std::vector<int> labels, PairStrategy strategy,
              uint64_t seed);

  // Two-set sampler for the incremental phase: `old_*` is the exemplar
  // support set, `new_*` the incoming new-class samples.
  PairSampler(Tensor old_features, std::vector<int> old_labels,
              Tensor new_features, std::vector<int> new_labels,
              PairStrategy strategy, uint64_t seed);

  // Draws a batch of pairs. batch_size >= 1.
  PairBatch Next(int batch_size);

  // Size of the candidate pair pool implied by the strategy (analytic; the
  // sampler never materializes it). Reported by the pair ablation bench.
  int64_t CandidatePairCount() const;

  PairStrategy strategy() const { return strategy_; }

 private:
  struct IndexedSet {
    Tensor features;
    std::vector<int> labels;
    // Per-class row indices, keyed by dense position in `classes`.
    std::vector<int> classes;
    std::vector<std::vector<int>> rows_by_class;
  };

  static IndexedSet BuildIndex(Tensor features, std::vector<int> labels);

  // Draws a (set, row) positive pair within `set`.
  void SamplePositiveWithin(const IndexedSet& set, int* left, int* right);
  // Draws a negative pair within `set` (two distinct classes).
  void SampleNegativeWithin(const IndexedSet& set, int* left, int* right);

  PairStrategy strategy_;
  Rng rng_;
  IndexedSet old_;   // single-set mode stores its data here
  IndexedSet new_;   // rows empty in single-set mode
  bool two_sets_ = false;
};

}  // namespace losses
}  // namespace pilote

#endif  // PILOTE_LOSSES_PAIR_SAMPLER_H_
