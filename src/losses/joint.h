#ifndef PILOTE_LOSSES_JOINT_H_
#define PILOTE_LOSSES_JOINT_H_

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/macros.h"
#include "common/numerics_guard.h"

namespace pilote {
namespace losses {

// PILOTE's joint objective (Algo 1 line 10):
//   L = alpha * L_disti + (1 - alpha) * L_contra,  alpha in [0, 1].
// alpha = 1 freezes the old embedding space entirely; alpha = 0 degenerates
// to the re-trained baseline. The paper uses alpha = 0.5.
inline autograd::Variable JointLoss(const autograd::Variable& distillation,
                                    const autograd::Variable& contrastive,
                                    float alpha) {
  PILOTE_CHECK(alpha >= 0.0f && alpha <= 1.0f) << "alpha=" << alpha;
  autograd::Variable loss =
      autograd::Add(autograd::MulScalar(distillation, alpha),
                    autograd::MulScalar(contrastive, 1.0f - alpha));
  PILOTE_CHECK_NUMERICS("JointLoss output", loss.value());
  return loss;
}

}  // namespace losses
}  // namespace pilote

#endif  // PILOTE_LOSSES_JOINT_H_
