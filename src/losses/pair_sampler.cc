#include "losses/pair_sampler.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace losses {
namespace {

// Number of classes in `set` that can produce a positive pair.
int NumClassesWithPairs(const std::vector<std::vector<int>>& rows_by_class) {
  int count = 0;
  for (const auto& rows : rows_by_class) {
    if (rows.size() >= 2) ++count;
  }
  return count;
}

}  // namespace

PairSampler::IndexedSet PairSampler::BuildIndex(Tensor features,
                                                std::vector<int> labels) {
  PILOTE_CHECK_EQ(features.rank(), 2);
  PILOTE_CHECK_EQ(features.rows(), static_cast<int64_t>(labels.size()));
  IndexedSet set;
  set.features = std::move(features);
  set.labels = std::move(labels);
  std::vector<int> sorted_classes = set.labels;
  std::sort(sorted_classes.begin(), sorted_classes.end());
  sorted_classes.erase(
      std::unique(sorted_classes.begin(), sorted_classes.end()),
      sorted_classes.end());
  set.classes = sorted_classes;
  set.rows_by_class.resize(set.classes.size());
  for (size_t r = 0; r < set.labels.size(); ++r) {
    const auto it = std::lower_bound(set.classes.begin(), set.classes.end(),
                                     set.labels[r]);
    set.rows_by_class[static_cast<size_t>(it - set.classes.begin())].push_back(
        static_cast<int>(r));
  }
  return set;
}

PairSampler::PairSampler(Tensor features, std::vector<int> labels,
                         PairStrategy strategy, uint64_t seed)
    : strategy_(strategy), rng_(seed) {
  PILOTE_CHECK(strategy != PairStrategy::kCrossAndNew)
      << "kCrossAndNew requires the two-set constructor";
  old_ = BuildIndex(std::move(features), std::move(labels));
  PILOTE_CHECK_GE(old_.labels.size(), 2u) << "need at least two samples";
}

PairSampler::PairSampler(Tensor old_features, std::vector<int> old_labels,
                         Tensor new_features, std::vector<int> new_labels,
                         PairStrategy strategy, uint64_t seed)
    : strategy_(strategy), rng_(seed), two_sets_(true) {
  old_ = BuildIndex(std::move(old_features), std::move(old_labels));
  new_ = BuildIndex(std::move(new_features), std::move(new_labels));
  PILOTE_CHECK(!old_.labels.empty());
  PILOTE_CHECK(!new_.labels.empty());
  PILOTE_CHECK_EQ(old_.features.cols(), new_.features.cols());
}

void PairSampler::SamplePositiveWithin(const IndexedSet& set, int* left,
                                       int* right) {
  // Pick uniformly among classes that have at least two samples, then two
  // distinct rows of that class.
  std::vector<int> eligible;
  for (size_t c = 0; c < set.rows_by_class.size(); ++c) {
    if (set.rows_by_class[c].size() >= 2) eligible.push_back(static_cast<int>(c));
  }
  PILOTE_CHECK(!eligible.empty()) << "no class has two samples";
  const auto& rows = set.rows_by_class[static_cast<size_t>(
      eligible[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int>(eligible.size()) - 1))])];
  const int i = rng_.UniformInt(0, static_cast<int>(rows.size()) - 1);
  int j = rng_.UniformInt(0, static_cast<int>(rows.size()) - 2);
  if (j >= i) ++j;
  *left = rows[static_cast<size_t>(i)];
  *right = rows[static_cast<size_t>(j)];
}

void PairSampler::SampleNegativeWithin(const IndexedSet& set, int* left,
                                       int* right) {
  PILOTE_CHECK_GE(set.classes.size(), 2u) << "need two classes for negatives";
  const int ca = rng_.UniformInt(0, static_cast<int>(set.classes.size()) - 1);
  int cb = rng_.UniformInt(0, static_cast<int>(set.classes.size()) - 2);
  if (cb >= ca) ++cb;
  const auto& rows_a = set.rows_by_class[static_cast<size_t>(ca)];
  const auto& rows_b = set.rows_by_class[static_cast<size_t>(cb)];
  *left = rows_a[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int>(rows_a.size()) - 1))];
  *right = rows_b[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int>(rows_b.size()) - 1))];
}

PairBatch PairSampler::Next(int batch_size) {
  PILOTE_CHECK_GE(batch_size, 1);
  PILOTE_METRIC_COUNT("losses/pairs_sampled", batch_size);
  const int64_t d = old_.features.cols();
  PairBatch batch;
  batch.left = Tensor(Shape::Matrix(batch_size, d));
  batch.right = Tensor(Shape::Matrix(batch_size, d));
  batch.similar = Tensor(Shape::Vector(batch_size));
  if (strategy_ == PairStrategy::kCrossAndNew) {
    batch.left_is_old.assign(static_cast<size_t>(batch_size), false);
  }

  auto copy_row = [d](Tensor& dst, int64_t dst_row, const Tensor& src,
                      int src_row) {
    std::memcpy(dst.row(dst_row), src.row(src_row),
                static_cast<size_t>(d) * sizeof(float));
  };

  for (int b = 0; b < batch_size; ++b) {
    int left = 0;
    int right = 0;
    float similar = 0.0f;
    switch (strategy_) {
      case PairStrategy::kBalancedRandom: {
        const bool can_pos = NumClassesWithPairs(old_.rows_by_class) > 0;
        const bool can_neg = old_.classes.size() >= 2;
        PILOTE_CHECK(can_pos || can_neg);
        const bool positive = can_pos && (!can_neg || rng_.Bernoulli(0.5));
        if (positive) {
          SamplePositiveWithin(old_, &left, &right);
          similar = 1.0f;
        } else {
          SampleNegativeWithin(old_, &left, &right);
        }
        copy_row(batch.left, b, old_.features, left);
        copy_row(batch.right, b, old_.features, right);
        break;
      }
      case PairStrategy::kAllPairs: {
        // Uniform over the union; `similar` from labels.
        const int total = static_cast<int>(old_.labels.size()) +
                          static_cast<int>(new_.labels.size());
        PILOTE_CHECK_GE(total, 2);
        const int i = rng_.UniformInt(0, total - 1);
        int j = rng_.UniformInt(0, total - 2);
        if (j >= i) ++j;
        auto resolve = [&](int idx, Tensor& dst, int64_t dst_row) -> int {
          const int n_old = static_cast<int>(old_.labels.size());
          if (idx < n_old) {
            copy_row(dst, dst_row, old_.features, idx);
            return old_.labels[static_cast<size_t>(idx)];
          }
          copy_row(dst, dst_row, new_.features, idx - n_old);
          return new_.labels[static_cast<size_t>(idx - n_old)];
        };
        const int label_i = resolve(i, batch.left, b);
        const int label_j = resolve(j, batch.right, b);
        similar = (label_i == label_j) ? 1.0f : 0.0f;
        break;
      }
      case PairStrategy::kCrossAndNew: {
        PILOTE_CHECK(two_sets_);
        const bool can_pos = NumClassesWithPairs(new_.rows_by_class) > 0;
        const bool positive = can_pos && rng_.Bernoulli(0.5);
        if (positive) {
          // (new, new) same-class pair.
          SamplePositiveWithin(new_, &left, &right);
          copy_row(batch.left, b, new_.features, left);
          copy_row(batch.right, b, new_.features, right);
          similar = 1.0f;
        } else {
          // Cross pair: an old exemplar against a new sample. Classes are
          // disjoint between the two sets, so the pair is negative.
          left = rng_.UniformInt(0, static_cast<int>(old_.labels.size()) - 1);
          right = rng_.UniformInt(0, static_cast<int>(new_.labels.size()) - 1);
          copy_row(batch.left, b, old_.features, left);
          copy_row(batch.right, b, new_.features, right);
          batch.left_is_old[static_cast<size_t>(b)] = true;
          PILOTE_DCHECK(old_.labels[static_cast<size_t>(left)] !=
                        new_.labels[static_cast<size_t>(right)]);
        }
        break;
      }
    }
    batch.similar[b] = similar;
  }
  return batch;
}

int64_t PairSampler::CandidatePairCount() const {
  const int64_t n_old = static_cast<int64_t>(old_.labels.size());
  const int64_t n_new = static_cast<int64_t>(new_.labels.size());
  switch (strategy_) {
    case PairStrategy::kBalancedRandom:
      return n_old * (n_old - 1) / 2;
    case PairStrategy::kAllPairs: {
      const int64_t total = n_old + n_new;
      return total * (total - 1) / 2;
    }
    case PairStrategy::kCrossAndNew:
      return n_new * (n_new - 1) / 2 + n_old * n_new;
  }
  return 0;
}

}  // namespace losses
}  // namespace pilote
