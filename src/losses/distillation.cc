#include "losses/distillation.h"

#include "autograd/ops.h"
#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace losses {

autograd::Variable DistillationLoss(const autograd::Variable& student,
                                    const Tensor& teacher) {
  namespace ag = autograd;
  PILOTE_CHECK(student.value().shape() == teacher.shape())
      << "distillation embedding shape mismatch";
  ag::Variable target = ag::Variable::Constant(teacher);
  // Mean over rows of the per-sample squared embedding drift.
  return ag::Mean(ag::RowSum(ag::Square(ag::Sub(student, target))));
}

float DistillationLossValue(const Tensor& student, const Tensor& teacher) {
  PILOTE_CHECK(student.shape() == teacher.shape());
  PILOTE_CHECK_GT(student.rows(), 0);
  return SquaredDistance(student, teacher) /
         static_cast<float>(student.rows());
}

}  // namespace losses
}  // namespace pilote
