#include "losses/distillation.h"

#include "autograd/ops.h"
#include "common/macros.h"
#include "common/numerics_guard.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace losses {

autograd::Variable DistillationLoss(const autograd::Variable& student,
                                    const Tensor& teacher) {
  PILOTE_TRACE_SPAN("losses/distillation_forward");
  namespace ag = autograd;
  PILOTE_CHECK(student.value().shape() == teacher.shape())
      << "distillation embedding shape mismatch";
  PILOTE_CHECK_NUMERICS("DistillationLoss student embedding", student.value());
  PILOTE_CHECK_NUMERICS("DistillationLoss teacher embedding", teacher);
  ag::Variable target = ag::Variable::Constant(teacher);
  // Mean over rows of the per-sample squared embedding drift.
  ag::Variable loss = ag::Mean(ag::RowSum(ag::Square(ag::Sub(student, target))));
  PILOTE_CHECK_NUMERICS("DistillationLoss output", loss.value());
  return loss;
}

float DistillationLossValue(const Tensor& student, const Tensor& teacher) {
  PILOTE_CHECK(student.shape() == teacher.shape());
  PILOTE_CHECK_GT(student.rows(), 0);
  const float loss =
      SquaredDistance(student, teacher) / static_cast<float>(student.rows());
  PILOTE_CHECK_NUMERICS_SCALAR("DistillationLossValue", loss);
  return loss;
}

}  // namespace losses
}  // namespace pilote
