#ifndef PILOTE_LOSSES_DISTILLATION_H_
#define PILOTE_LOSSES_DISTILLATION_H_

#include "autograd/variable.h"

namespace pilote {
namespace losses {

// Embedding distillation loss (Algo 1 line 11):
//   L_disti = sum_i ||phi_new(x_i) - phi_old(x_i)||^2
// averaged over the batch for scale stability. `student` is the current
// model's embedding of the old-class exemplars ([n, d], gradient-tracked);
// `teacher` is the frozen pre-update model's embedding of the same inputs.
autograd::Variable DistillationLoss(const autograd::Variable& student,
                                    const Tensor& teacher);

// Forward-only value.
float DistillationLossValue(const Tensor& student, const Tensor& teacher);

}  // namespace losses
}  // namespace pilote

#endif  // PILOTE_LOSSES_DISTILLATION_H_
