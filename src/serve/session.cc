#include "serve/session.h"

#include <utility>

#include "common/macros.h"

namespace pilote {
namespace serve {

namespace {

const core::StreamingOptions& Validated(
    const core::StreamingOptions& options) {
  Status valid = core::ValidateStreamingOptions(options);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  return options;
}

}  // namespace

Session::Session(SessionId id, std::shared_ptr<LearnerHandle> learner,
                 const core::StreamingOptions& options)
    : id_(id),
      learner_(std::move(learner)),
      options_(Validated(options)),
      assembler_(options_.window_length, options_.denoise_half_width),
      recent_(options_.vote_window) {
  PILOTE_CHECK(learner_ != nullptr);
}

std::optional<Tensor> Session::AppendSample(const Tensor& sample) {
  // hotpath-ok: per-session mutex, uncontended in steady state
  MutexLock lock(mutex_);
  // The feature row's ownership moves to the predict request, so it is the
  // one unavoidable per-window allocation on the ingest side.
  Tensor features;  // hotpath-ok: per-window output, handed to the request
  if (!assembler_.Append(sample, &features)) return std::nullopt;
  return features;
}

int Session::CompleteWindow(int raw_label) {
  // hotpath-ok: per-session mutex, uncontended in steady state
  MutexLock lock(mutex_);
  recent_.Push(raw_label);
  last_smoothed_ = recent_.MajorityLabel();
  ++windows_classified_;
  return last_smoothed_;
}

Prediction Session::LastPrediction() const {
  // hotpath-ok: per-session mutex, uncontended in steady state
  MutexLock lock(mutex_);
  Prediction p;
  p.label = last_smoothed_;
  p.degraded = true;
  return p;
}

int64_t Session::windows_classified() const {
  MutexLock lock(mutex_);
  return windows_classified_;
}

}  // namespace serve
}  // namespace pilote
