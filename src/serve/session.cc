#include "serve/session.h"

#include <utility>

#include "common/macros.h"
#include "core/streaming_classifier.h"
#include "har/feature_extractor.h"
#include "har/preprocessing.h"
#include "har/sensor_layout.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace serve {

Session::Session(SessionId id, std::shared_ptr<LearnerHandle> learner,
                 const core::StreamingOptions& options)
    : id_(id), learner_(std::move(learner)), options_(options) {
  PILOTE_CHECK(learner_ != nullptr);
  Status valid = core::ValidateStreamingOptions(options_);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  buffer_.reserve(static_cast<size_t>(options_.window_length));
}

std::optional<Tensor> Session::AppendSample(const Tensor& sample) {
  PILOTE_CHECK_EQ(sample.rank(), 1);
  PILOTE_CHECK_EQ(sample.dim(0), har::kNumChannels);
  MutexLock lock(mutex_);
  buffer_.push_back(sample.Reshape(Shape::Matrix(1, har::kNumChannels)));
  if (static_cast<int>(buffer_.size()) < options_.window_length) {
    return std::nullopt;
  }
  Tensor window = ConcatRows(buffer_);
  buffer_.clear();
  window = har::DenoiseMovingAverage(window, options_.denoise_half_width);
  return har::ExtractFeatures(window).Reshape(
      Shape::Matrix(1, har::kNumFeatures));
}

int Session::CompleteWindow(int raw_label) {
  MutexLock lock(mutex_);
  recent_.push_back(raw_label);
  while (static_cast<int>(recent_.size()) > options_.vote_window) {
    recent_.pop_front();
  }
  last_smoothed_ = core::MajorityVoteLabel(recent_);
  ++windows_classified_;
  return last_smoothed_;
}

Prediction Session::LastPrediction() const {
  MutexLock lock(mutex_);
  Prediction p;
  p.label = last_smoothed_;
  p.degraded = true;
  return p;
}

int64_t Session::windows_classified() const {
  MutexLock lock(mutex_);
  return windows_classified_;
}

}  // namespace serve
}  // namespace pilote
