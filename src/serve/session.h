#ifndef PILOTE_SERVE_SESSION_H_
#define PILOTE_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/thread_annotations.h"
#include "common/hot_path.h"
#include "core/config.h"
#include "core/vote_ring.h"
#include "har/window_assembler.h"
#include "serve/learner_handle.h"
#include "serve/types.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serve {

// Per-device stream state: the sample buffer of the in-flight window plus
// the majority-vote history, mirroring core::StreamingClassifier but split
// at the window boundary so the classification itself can be batched
// across sessions. The ingest thread assembles windows (AppendSample);
// the batching engine delivers labels (CompleteWindow). All state is
// guarded by one per-session mutex; ordering between the two sides is the
// engine's FIFO queue.
class Session {
 public:
  Session(SessionId id, std::shared_ptr<LearnerHandle> learner,
          const core::StreamingOptions& options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }
  const std::shared_ptr<LearnerHandle>& learner() const { return learner_; }
  const core::StreamingOptions& options() const { return options_; }

  // Feeds one sensor sample [har::kNumChannels]. When the sample completes
  // a window, runs the paper's preprocessing (denoise + feature
  // extraction) and returns the [1, kNumFeatures] raw feature row ready
  // for batched classification.
  PILOTE_HOT_PATH std::optional<Tensor> AppendSample(const Tensor& sample)
      PILOTE_EXCLUDES(mutex_);

  // Records the raw label of a completed window and returns the smoothed
  // majority-vote label (the stream's user-facing prediction).
  PILOTE_HOT_PATH int CompleteWindow(int raw_label) PILOTE_EXCLUDES(mutex_);

  // Last smoothed label, degraded-flagged — what a deadline miss returns.
  Prediction LastPrediction() const PILOTE_EXCLUDES(mutex_);

  int64_t windows_classified() const PILOTE_EXCLUDES(mutex_);

 private:
  const SessionId id_;
  const std::shared_ptr<LearnerHandle> learner_;
  const core::StreamingOptions options_;

  mutable Mutex mutex_;
  // Current-window sample buffer, preallocated (hot-path discipline).
  har::WindowAssembler assembler_ PILOTE_GUARDED_BY(mutex_);
  // Last vote_window raw labels, fixed-capacity.
  core::VoteRing recent_ PILOTE_GUARDED_BY(mutex_);
  int last_smoothed_ PILOTE_GUARDED_BY(mutex_) = kNoPrediction;
  int64_t windows_classified_ PILOTE_GUARDED_BY(mutex_) = 0;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_SESSION_H_
