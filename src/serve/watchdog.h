#ifndef PILOTE_SERVE_WATCHDOG_H_
#define PILOTE_SERVE_WATCHDOG_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/labels.h"
#include "serve/batching_engine.h"
#include "serve/types.h"

namespace pilote {
namespace serve {

// One detected stall episode (edge-triggered: a second event for the same
// reason is only emitted after the condition has cleared in between).
struct StallEvent {
  enum class Reason {
    // Queue non-empty but the worker made no progress for
    // watchdog_stall_after_ms — a wedged or pathologically slow flush.
    kFlushStale,
    // Queue depth reached watchdog_queue_watermark * queue_capacity —
    // ingest is outrunning the batcher and backpressure is imminent.
    kQueueWatermark,
  };
  Reason reason = Reason::kFlushStale;
  int64_t queue_depth = 0;
  double flush_age_ms = 0.0;  // time since last worker progress
};

const char* StallReasonName(StallEvent::Reason reason);

// Stall detector over one BatchingEngine: a polling thread (or explicit
// PollOnceForTesting calls) watches queue-depth watermarks and flush age,
// appends structured StallEvents to a bounded buffer, logs them, and
// counts them in the serve/stalls_total{reason=...} family. The watchdog
// only reads engine counters — it can never block or slow the serve path.
class Watchdog {
 public:
  // `engine` must outlive the watchdog. Options: watchdog_poll_ms (0 means
  // Start() is a no-op and only PollOnceForTesting drives detection),
  // watchdog_stall_after_ms, watchdog_queue_watermark, queue_capacity.
  Watchdog(BatchingEngine* engine, const ServeOptions& options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start() PILOTE_EXCLUDES(mutex_);
  void Stop() PILOTE_EXCLUDES(mutex_);

  // One detection pass, exactly what the polling thread runs per tick.
  // Deterministic test surface: pause the engine, fill the queue, advance
  // past the stall threshold, poll, assert the event.
  void PollOnceForTesting() PILOTE_EXCLUDES(mutex_) { Poll(); }

  // Copy of the (bounded) event buffer, oldest first.
  std::vector<StallEvent> Events() const PILOTE_EXCLUDES(mutex_);

  int64_t stalls_detected() const {
    return stalls_detected_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kMaxBufferedEvents = 128;
  static constexpr size_t kFlushStaleSlot = 0;
  static constexpr size_t kQueueWatermarkSlot = 1;

  void Loop() PILOTE_EXCLUDES(mutex_);
  void Poll() PILOTE_EXCLUDES(mutex_);
  void Emit(StallEvent::Reason reason, int64_t depth, double flush_age_ms)
      PILOTE_REQUIRES(mutex_);

  BatchingEngine* const engine_;
  const ServeOptions options_;
  const obs::CounterFamily stalls_;  // unguarded: handles are lock-free

  mutable Mutex mutex_;
  CondVar stop_cv_;  // unguarded: internally synchronized
  bool running_ PILOTE_GUARDED_BY(mutex_) = false;
  bool stop_requested_ PILOTE_GUARDED_BY(mutex_) = false;
  // Rising-edge latches: true while the matching condition holds, so each
  // episode emits exactly one event.
  bool flush_stalled_ PILOTE_GUARDED_BY(mutex_) = false;
  bool watermark_stalled_ PILOTE_GUARDED_BY(mutex_) = false;
  // Steady-clock ns when the queue was last observed going empty->nonempty;
  // 0 while empty. Bounds flush age so a burst arriving after a long idle
  // stretch is not mistaken for a stall (the worker's last_progress stamp
  // is legitimately old while it sleeps in an empty-queue pop).
  int64_t nonempty_since_ns_ PILOTE_GUARDED_BY(mutex_) = 0;
  std::vector<StallEvent> events_ PILOTE_GUARDED_BY(mutex_);
  std::atomic<int64_t> stalls_detected_{0};
  // unguarded: written in Start, joined in Stop; control-plane calls are
  // serialized by the caller.
  std::thread thread_;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_WATCHDOG_H_
