#ifndef PILOTE_SERVE_LEARNER_HANDLE_H_
#define PILOTE_SERVE_LEARNER_HANDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/hot_path.h"
#include "common/thread_annotations.h"
#include "core/edge_learner.h"

namespace pilote {
namespace serve {

// Concurrency wrapper around one EdgeLearner shared by many sessions (the
// paper's fan-out shape: one cloud artifact seeds a fleet of device
// streams). Reads take the shared side of a reader-writer lock and only
// reach EdgeLearner's const surface; LearnNewClasses takes the exclusive
// side, which quiesces every stream predicting through this learner until
// the incremental update (and its prototype rebuild) completes.
class LearnerHandle {
 public:
  explicit LearnerHandle(std::unique_ptr<core::EdgeLearner> learner);

  // Builds the learner through the validating core factory; propagates its
  // Status for bad strategies/artifacts instead of aborting.
  static Result<std::shared_ptr<LearnerHandle>> Create(
      const std::string& strategy, const core::CloudArtifact& artifact,
      const core::PiloteConfig& config);

  // Batched NCM inference under the shared lock: one scaler pass + one
  // backbone forward + one NCM pass for all rows.
  std::vector<int> PredictBatch(const Tensor& raw_features) const
      PILOTE_EXCLUDES(mutex_);

  // PredictBatch with a fault hook: the "serve/predict" failpoint can
  // inject a transient kUnavailable here, which the batching engine's
  // bounded retry-with-backoff absorbs. The plain PredictBatch above stays
  // infallible for callers outside the serving path.
  PILOTE_HOT_PATH Result<std::vector<int>> TryPredictBatch(
      const Tensor& raw_features) const
      PILOTE_EXCLUDES(mutex_);

  // Incremental update under the exclusive lock. Non-OK means the learner
  // rejected or rolled back the update (see
  // core::EdgeLearner::LearnNewClasses); the serving state is unchanged.
  Result<core::TrainReport> LearnNewClasses(const data::Dataset& d_new)
      PILOTE_EXCLUDES(mutex_);

  // Immutable after construction; lock-free.
  int64_t input_dim() const { return input_dim_; }

  // Snapshot of the learner's mutation counter. Deliberately lock-free:
  // the counter is an atomic inside EdgeLearner, so this read is safe
  // without the handle's lock even while LearnNewClasses is running.
  int64_t model_version() const PILOTE_NO_THREAD_SAFETY_ANALYSIS {
    return learner_->model_version();
  }

  // Version of the learner's live compiled inference plan (-1 while it is
  // serving eagerly). Lock-free for the same reason as model_version():
  // the tag is an atomic inside EdgeLearner.
  int64_t plan_version() const PILOTE_NO_THREAD_SAFETY_ANALYSIS {
    return learner_->plan_version();
  }

  // Number of classes currently known, under the shared lock.
  int64_t NumKnownClasses() const PILOTE_EXCLUDES(mutex_);

  // Toggles the learner's compiled inference plan under the exclusive
  // lock (quiescing in-flight predictions, like LearnNewClasses). Serving
  // is correct either way — bench_serving uses this to measure the
  // plan-vs-eager throughput delta on identical workloads.
  void SetCompiledInferenceEnabled(bool enabled) PILOTE_EXCLUDES(mutex_);

 private:
  mutable SharedMutex mutex_;
  std::unique_ptr<core::EdgeLearner> learner_ PILOTE_PT_GUARDED_BY(mutex_);
  const int64_t input_dim_;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_LEARNER_HANDLE_H_
