#include "serve/learner_handle.h"

#include <utility>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace pilote {
namespace serve {
namespace {

int64_t CheckedInputDim(const core::EdgeLearner* learner) {
  PILOTE_CHECK(learner != nullptr);
  return learner->config().backbone.input_dim;
}

}  // namespace

LearnerHandle::LearnerHandle(std::unique_ptr<core::EdgeLearner> learner)
    : learner_(std::move(learner)), input_dim_(CheckedInputDim(learner_.get())) {}

Result<std::shared_ptr<LearnerHandle>> LearnerHandle::Create(
    const std::string& strategy, const core::CloudArtifact& artifact,
    const core::PiloteConfig& config) {
  PILOTE_ASSIGN_OR_RETURN(std::unique_ptr<core::EdgeLearner> learner,
                          core::MakeEdgeLearner(strategy, artifact, config));
  return std::make_shared<LearnerHandle>(std::move(learner));
}

std::vector<int> LearnerHandle::PredictBatch(const Tensor& raw_features) const {
  ReaderLock lock(mutex_);
  return learner_->PredictBatch(raw_features);
}

Result<std::vector<int>> LearnerHandle::TryPredictBatch(
    const Tensor& raw_features) const {
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("serve/predict"));
  ReaderLock lock(mutex_);
  return learner_->PredictBatch(raw_features);
}

Result<core::TrainReport> LearnerHandle::LearnNewClasses(
    const data::Dataset& d_new) {
  PILOTE_TRACE_SPAN("serve/learn_new_classes");
  WriterLock lock(mutex_);
  return learner_->LearnNewClasses(d_new);
}

int64_t LearnerHandle::NumKnownClasses() const {
  ReaderLock lock(mutex_);
  return static_cast<int64_t>(learner_->known_classes().size());
}

void LearnerHandle::SetCompiledInferenceEnabled(bool enabled) {
  WriterLock lock(mutex_);
  learner_->SetCompiledInferenceEnabled(enabled);
}

}  // namespace serve
}  // namespace pilote
