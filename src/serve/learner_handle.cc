#include "serve/learner_handle.h"

#include <mutex>
#include <utility>

#include "obs/trace.h"

namespace pilote {
namespace serve {

LearnerHandle::LearnerHandle(std::unique_ptr<core::EdgeLearner> learner)
    : learner_(std::move(learner)) {
  PILOTE_CHECK(learner_ != nullptr);
  input_dim_ = learner_->config().backbone.input_dim;
}

Result<std::shared_ptr<LearnerHandle>> LearnerHandle::Create(
    const std::string& strategy, const core::CloudArtifact& artifact,
    const core::PiloteConfig& config) {
  PILOTE_ASSIGN_OR_RETURN(std::unique_ptr<core::EdgeLearner> learner,
                          core::MakeEdgeLearner(strategy, artifact, config));
  return std::make_shared<LearnerHandle>(std::move(learner));
}

std::vector<int> LearnerHandle::PredictBatch(const Tensor& raw_features) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return learner_->PredictBatch(raw_features);
}

core::TrainReport LearnerHandle::LearnNewClasses(const data::Dataset& d_new) {
  PILOTE_TRACE_SPAN("serve/learn_new_classes");
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return learner_->LearnNewClasses(d_new);
}

int64_t LearnerHandle::NumKnownClasses() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return static_cast<int64_t>(learner_->known_classes().size());
}

}  // namespace serve
}  // namespace pilote
