#include "serve/session_manager.h"

#include <string>
#include <utility>

#include "common/macros.h"
#include "har/sensor_layout.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace serve {

SessionManager::SessionManager(const ServeOptions& options)
    : options_(options),
      degraded_(obs::FamilyRegistry::Global().GetCounterFamily(
          "serve/degraded_total", "reason", {"deadline", "backpressure"})) {
  Status valid = ValidateServeOptions(options_);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.num_shards <= static_cast<int>(obs::kMaxLabelValues)) {
    std::vector<std::string> shard_ids;
    shard_ids.reserve(static_cast<size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
      shard_ids.push_back(std::to_string(s));
    }
    shard_sessions_ = obs::FamilyRegistry::Global().GetGaugeFamily(
        "serve/shard_sessions", "shard", shard_ids);
  }
  engine_ = std::make_unique<BatchingEngine>(options_);
  watchdog_ = std::make_unique<Watchdog>(engine_.get(), options_);
  watchdog_->Start();
}

SessionManager::~SessionManager() {
  watchdog_->Stop();
  engine_->Stop();
}

SessionManager::Shard& SessionManager::ShardFor(SessionId id) {
  return *shards_[id % shards_.size()];
}

Result<std::shared_ptr<Session>> SessionManager::FindSession(SessionId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mutex);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  return it->second;
}

void SessionManager::UpdateShardGauge(SessionId id) {
  if (!obs::Enabled() || shard_sessions_.size() == 0) return;
  const size_t shard_index = id % shards_.size();
  size_t count;
  {
    MutexLock lock(shards_[shard_index]->mutex);
    count = shards_[shard_index]->sessions.size();
  }
  shard_sessions_.At(shard_index).Set(static_cast<double>(count));
}

Result<SessionId> SessionManager::CreateSession(
    std::shared_ptr<LearnerHandle> learner,
    const core::StreamingOptions& options) {
  if (learner == nullptr) {
    return Status::InvalidArgument("CreateSession: learner handle is null");
  }
  PILOTE_RETURN_IF_ERROR(core::ValidateStreamingOptions(options));
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::make_shared<Session>(id, std::move(learner), options);
  Shard& shard = ShardFor(id);
  {
    MutexLock lock(shard.mutex);
    shard.sessions.emplace(id, std::move(session));
  }
  PILOTE_METRIC_GAUGE_SET("serve/sessions_active",
                          static_cast<double>(NumSessions()));
  UpdateShardGauge(id);
  return id;
}

Status SessionManager::CloseSession(SessionId id) {
  Shard& shard = ShardFor(id);
  {
    MutexLock lock(shard.mutex);
    if (shard.sessions.erase(id) == 0) {
      return Status::NotFound("no session with id " + std::to_string(id));
    }
  }
  PILOTE_METRIC_GAUGE_SET("serve/sessions_active",
                          static_cast<double>(NumSessions()));
  UpdateShardGauge(id);
  return Status::Ok();
}

Result<std::future<int>> SessionManager::SubmitWindow(SessionId id,
                                                      const Tensor& features) {
  PILOTE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(id));
  const int64_t input_dim = session->learner()->input_dim();
  if (features.rank() != 2 || features.rows() != 1 ||
      features.cols() != input_dim) {
    return Status::InvalidArgument(
        "SubmitWindow: expected a [1, " + std::to_string(input_dim) +
        "] feature row, got " + features.shape().ToString());
  }
  PredictRequest request;
  request.session = std::move(session);
  request.features = features;
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<int> done = request.done.get_future();
  if (!engine_->Submit(std::move(request))) {
    PILOTE_METRIC_COUNT("serve/backpressure_rejects", 1);
    if (obs::Enabled()) degraded_.At(kBackpressureSlot).Increment();
    return Status::ResourceExhausted(
        "serving queue full (capacity " +
        std::to_string(options_.queue_capacity) + ")");
  }
  return done;
}

Result<Prediction> SessionManager::PushWindow(
    SessionId id, const Tensor& features, std::chrono::microseconds deadline) {
  PILOTE_ASSIGN_OR_RETURN(std::future<int> done, SubmitWindow(id, features));
  if (deadline.count() > 0 &&
      done.wait_for(deadline) != std::future_status::ready) {
    // Deadline miss: degrade to the session's last smoothed label. The
    // in-flight window still completes later and updates the vote.
    PILOTE_METRIC_COUNT("serve/deadline_degraded", 1);
    if (obs::Enabled()) degraded_.At(kDeadlineSlot).Increment();
    PILOTE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(id));
    return session->LastPrediction();
  }
  Prediction p;
  p.label = done.get();
  p.degraded = false;
  return p;
}

Result<PushOutcome> SessionManager::PushBlock(
    SessionId id, const Tensor& samples, std::chrono::microseconds deadline) {
  if (samples.rank() != 2 || samples.cols() != har::kNumChannels) {
    return Status::InvalidArgument(
        "PushBlock: expected [t, " + std::to_string(har::kNumChannels) +
        "] raw samples, got " + samples.shape().ToString());
  }
  PILOTE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(id));
  PushOutcome outcome;
  for (int64_t t = 0; t < samples.rows(); ++t) {
    std::optional<Tensor> window = session->AppendSample(RowAt(samples, t));
    if (!window.has_value()) continue;
    Result<Prediction> prediction = PushWindow(id, *window, deadline);
    if (prediction.ok()) {
      outcome.predictions.push_back(prediction.value());
    } else if (prediction.status().code() == StatusCode::kResourceExhausted) {
      ++outcome.rejected_windows;
    } else {
      return prediction.status();
    }
  }
  return outcome;
}

Result<core::TrainReport> SessionManager::LearnNewClasses(
    SessionId id, const data::Dataset& d_new) {
  PILOTE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, FindSession(id));
  return session->learner()->LearnNewClasses(d_new);
}

int64_t SessionManager::NumSessions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += static_cast<int64_t>(shard->sessions.size());
  }
  return total;
}

}  // namespace serve
}  // namespace pilote
