#ifndef PILOTE_SERVE_SESSION_MANAGER_H_
#define PILOTE_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "obs/labels.h"
#include "serve/batching_engine.h"
#include "serve/learner_handle.h"
#include "serve/session.h"
#include "serve/types.h"
#include "serve/watchdog.h"

namespace pilote {
namespace serve {

// Multi-session front door of the edge serving layer. Owns per-device
// sessions behind N-way sharded mutexes (shard = id % num_shards) and one
// BatchingEngine that coalesces completed windows from every session into
// batched backbone forwards. Thread-safe: any number of ingest threads may
// push to distinct or identical sessions concurrently.
class SessionManager {
 public:
  explicit SessionManager(const ServeOptions& options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers a device stream predicting through `learner` (many sessions
  // may share one handle). kInvalidArgument on a null handle or bad
  // streaming options.
  Result<SessionId> CreateSession(std::shared_ptr<LearnerHandle> learner,
                                  const core::StreamingOptions& options);

  // kNotFound when the id was never created or already closed. Windows of
  // the session still in flight are classified and discarded.
  Status CloseSession(SessionId id);

  // Async path: enqueues one completed [1, input_dim] feature window for
  // batched classification and returns a future of the smoothed label.
  // kResourceExhausted when the batching queue is full (backpressure);
  // kInvalidArgument on a shape mismatch; kNotFound for unknown ids.
  Result<std::future<int>> SubmitWindow(SessionId id, const Tensor& features);

  // Sync path with a deadline: blocks until the batched prediction lands
  // or `deadline` elapses, then degrades to the session's last
  // majority-vote label (kNoPrediction before the first window) with
  // degraded=true. deadline <= 0 waits without bound.
  Result<Prediction> PushWindow(SessionId id, const Tensor& features,
                                std::chrono::microseconds deadline);

  // Raw-sample convenience: feeds a [t, har::kNumChannels] block through
  // the session's window assembly, pushing each completed window with
  // `deadline`. Backpressure-rejected windows are counted, not retried.
  Result<PushOutcome> PushBlock(SessionId id, const Tensor& samples,
                                std::chrono::microseconds deadline);

  // Incremental update through the session's learner. Takes the learner's
  // exclusive lock, quiescing every stream that predicts through it for
  // the duration of the update.
  Result<core::TrainReport> LearnNewClasses(SessionId id,
                                            const data::Dataset& d_new);

  int64_t NumSessions() const;

  // The engine, for tests (pause/resume) and benchmarks (flush stats).
  BatchingEngine& engine() { return *engine_; }

  // The stall detector (always constructed; its polling thread only runs
  // when options.watchdog_poll_ms > 0).
  Watchdog& watchdog() { return *watchdog_; }

 private:
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<SessionId, std::shared_ptr<Session>> sessions
        PILOTE_GUARDED_BY(mutex);
  };

  static constexpr size_t kDeadlineSlot = 0;
  static constexpr size_t kBackpressureSlot = 1;

  Shard& ShardFor(SessionId id);
  Result<std::shared_ptr<Session>> FindSession(SessionId id);
  // Refreshes serve/shard_sessions{shard=...} for the shard owning `id`.
  void UpdateShardGauge(SessionId id);

  const ServeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<SessionId> next_id_{1};
  // serve/degraded_total{reason=deadline|backpressure}; the fault reason
  // is counted inside the engine.
  const obs::CounterFamily degraded_;
  // Per-shard session gauges; empty when num_shards exceeds the bounded
  // label cardinality (the aggregate serve/sessions_active still updates).
  obs::GaugeFamily shard_sessions_;
  // Declared last: the engine stops (draining its queue, which holds
  // shared_ptr<Session> references) before the shards are torn down; the
  // watchdog, which polls the engine, goes first of all.
  std::unique_ptr<BatchingEngine> engine_;
  std::unique_ptr<Watchdog> watchdog_;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_SESSION_MANAGER_H_
