#ifndef PILOTE_SERVE_TYPES_H_
#define PILOTE_SERVE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pilote {
namespace serve {

// Identifies one device stream within a SessionManager. Ids are assigned
// by the manager, never reused, and shard routing is id % num_shards.
using SessionId = uint64_t;

// Returned for degraded predictions before any window of the session has
// been classified.
inline constexpr int kNoPrediction = -1;

// Serving-layer tuning knobs. Validate with ValidateServeOptions before
// constructing a SessionManager from untrusted configuration.
struct ServeOptions {
  // Session-table shards; each shard has its own mutex so concurrent
  // ingest threads for different devices rarely contend.
  int num_shards = 4;
  // Cross-stream coalescing: the batcher flushes at `max_batch` windows or
  // `max_delay_us` after the first pending window, whichever comes first.
  // max_batch == 1 disables batching (the row-at-a-time baseline).
  int max_batch = 16;
  int64_t max_delay_us = 2000;
  // Bound on windows awaiting a batch slot. A full queue rejects new
  // windows with kResourceExhausted instead of blocking ingest.
  int64_t queue_capacity = 256;
  // Transient-fault handling: a batch whose learner forward returns
  // kUnavailable is retried up to `predict_retries` times, sleeping
  // `retry_backoff_us << attempt` between attempts. Requests that exhaust
  // the budget complete degraded with the session's last smoothed label
  // (same contract as a deadline miss). Non-transient codes are not
  // retried.
  int predict_retries = 3;
  int64_t retry_backoff_us = 100;
  // Slow-window exemplar policy (recording itself is gated on
  // obs::Enabled()): a completed window whose end-to-end latency is at
  // least `slow_window_ms` is captured into the obs::SlowWindows exemplar
  // ring with its per-stage breakdown. 0 selects auto mode: capture
  // whenever a window lands in (or establishes) the top occupied latency
  // bucket seen so far — the windows that define the tail.
  double slow_window_ms = 0.0;
  // Stall watchdog (off when watchdog_poll_ms == 0). Every poll it checks
  // the batching engine: a non-empty queue with no worker progress for
  // `watchdog_stall_after_ms` is a flush-stale stall; queue depth at or
  // above `watchdog_queue_watermark` * queue_capacity is a watermark
  // stall. Events are edge-triggered (one per episode).
  int64_t watchdog_poll_ms = 0;
  int64_t watchdog_stall_after_ms = 200;
  double watchdog_queue_watermark = 0.9;
};

inline Status ValidateServeOptions(const ServeOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1, got " +
                                   std::to_string(options.max_batch));
  }
  if (options.max_delay_us < 0) {
    return Status::InvalidArgument("max_delay_us must be >= 0, got " +
                                   std::to_string(options.max_delay_us));
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1, got " +
                                   std::to_string(options.queue_capacity));
  }
  if (options.predict_retries < 0) {
    return Status::InvalidArgument("predict_retries must be >= 0, got " +
                                   std::to_string(options.predict_retries));
  }
  if (options.retry_backoff_us < 0) {
    return Status::InvalidArgument("retry_backoff_us must be >= 0, got " +
                                   std::to_string(options.retry_backoff_us));
  }
  if (options.slow_window_ms < 0.0) {
    return Status::InvalidArgument("slow_window_ms must be >= 0, got " +
                                   std::to_string(options.slow_window_ms));
  }
  if (options.watchdog_poll_ms < 0) {
    return Status::InvalidArgument("watchdog_poll_ms must be >= 0, got " +
                                   std::to_string(options.watchdog_poll_ms));
  }
  if (options.watchdog_stall_after_ms < 1) {
    return Status::InvalidArgument(
        "watchdog_stall_after_ms must be >= 1, got " +
        std::to_string(options.watchdog_stall_after_ms));
  }
  if (!(options.watchdog_queue_watermark > 0.0 &&
        options.watchdog_queue_watermark <= 1.0)) {
    return Status::InvalidArgument(
        "watchdog_queue_watermark must be in (0, 1], got " +
        std::to_string(options.watchdog_queue_watermark));
  }
  return Status::Ok();
}

// One classified (or degraded) window as seen by the caller.
struct Prediction {
  int label = kNoPrediction;
  // True when the request deadline passed before the batch completed and
  // `label` is the session's last majority-vote label instead (the paper's
  // activities change on multi-second timescales, so the previous smoothed
  // label is the best available answer under overload).
  bool degraded = false;
};

// Result of pushing a block of raw samples through a session.
struct PushOutcome {
  std::vector<Prediction> predictions;  // one per completed window
  // Windows dropped by queue backpressure (kResourceExhausted on the
  // single-window path). The stream itself stays consistent: rejected
  // windows simply never reach the vote.
  int64_t rejected_windows = 0;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_TYPES_H_
