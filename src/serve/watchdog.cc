#include "serve/watchdog.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace pilote {
namespace serve {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StallReasonName(StallEvent::Reason reason) {
  switch (reason) {
    case StallEvent::Reason::kFlushStale:
      return "flush_stale";
    case StallEvent::Reason::kQueueWatermark:
      return "queue_watermark";
  }
  return "unknown";
}

Watchdog::Watchdog(BatchingEngine* engine, const ServeOptions& options)
    : engine_(engine),
      options_(options),
      stalls_(obs::FamilyRegistry::Global().GetCounterFamily(
          "serve/stalls_total", "reason",
          {"flush_stale", "queue_watermark"})) {
  PILOTE_CHECK(engine != nullptr);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (options_.watchdog_poll_ms <= 0) return;
  MutexLock lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  // lifetime-ok: Loop's `this` is the watchdog itself; Stop() (called by
  // the destructor) joins the thread before the object is destroyed
  thread_ = std::thread(&Watchdog::Loop, this);
  running_ = true;
}

void Watchdog::Stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
  MutexLock lock(mutex_);
  running_ = false;
  stop_requested_ = false;
}

void Watchdog::Loop() {
  const auto interval = std::chrono::milliseconds(options_.watchdog_poll_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (true) {
    {
      MutexLock lock(mutex_);
      while (!stop_requested_ && std::chrono::steady_clock::now() < next) {
        stop_cv_.WaitUntil(mutex_, next);
      }
      if (stop_requested_) return;
    }
    Poll();
    next += interval;
  }
}

void Watchdog::Poll() {
  const int64_t depth = engine_->queue_depth();
  const int64_t now_ns = SteadyNowNs();
  MutexLock lock(mutex_);

  if (depth == 0) {
    nonempty_since_ns_ = 0;
    flush_stalled_ = false;
  } else if (nonempty_since_ns_ == 0) {
    nonempty_since_ns_ = now_ns;
  }

  // Flush age: time since the worker last made progress, but never counted
  // from before the queue became non-empty (an idle worker's progress stamp
  // is legitimately stale).
  double flush_age_ms = 0.0;
  if (depth > 0) {
    const int64_t since_ns =
        std::max(engine_->last_progress_ns(), nonempty_since_ns_);
    flush_age_ms = static_cast<double>(now_ns - since_ns) / 1e6;
    const bool stale =
        flush_age_ms >= static_cast<double>(options_.watchdog_stall_after_ms);
    if (stale && !flush_stalled_) {
      flush_stalled_ = true;
      Emit(StallEvent::Reason::kFlushStale, depth, flush_age_ms);
    } else if (!stale) {
      flush_stalled_ = false;
    }
  }

  const double watermark = options_.watchdog_queue_watermark *
                           static_cast<double>(options_.queue_capacity);
  const bool above = static_cast<double>(depth) >= watermark;
  if (above && !watermark_stalled_) {
    watermark_stalled_ = true;
    Emit(StallEvent::Reason::kQueueWatermark, depth, flush_age_ms);
  } else if (!above) {
    watermark_stalled_ = false;
  }
}

void Watchdog::Emit(StallEvent::Reason reason, int64_t depth,
                    double flush_age_ms) {
  StallEvent event;
  event.reason = reason;
  event.queue_depth = depth;
  event.flush_age_ms = flush_age_ms;
  if (events_.size() < kMaxBufferedEvents) {
    events_.push_back(event);
  } else {
    // Overwrite-oldest keeps the newest episodes visible to late readers.
    events_.erase(events_.begin());
    events_.push_back(event);
  }
  stalls_detected_.fetch_add(1, std::memory_order_relaxed);
  const size_t slot = reason == StallEvent::Reason::kFlushStale
                          ? kFlushStaleSlot
                          : kQueueWatermarkSlot;
  if (obs::Enabled()) stalls_.At(slot).Increment();
  PILOTE_LOG(Warning) << "serve stall detected: " << StallReasonName(reason)
                      << " queue_depth=" << depth
                      << " flush_age_ms=" << flush_age_ms;
}

std::vector<StallEvent> Watchdog::Events() const {
  MutexLock lock(mutex_);
  return events_;
}

}  // namespace serve
}  // namespace pilote
