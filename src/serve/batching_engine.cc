#include "serve/batching_engine.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/macros.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/learner_handle.h"

namespace pilote {
namespace serve {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BatchingEngine::BatchingEngine(const ServeOptions& options)
    : options_(options),
      queue_(static_cast<size_t>(options.queue_capacity)),
      stage_ms_(obs::FamilyRegistry::Global().GetHistogramFamily(
          "serve/stage_ms", "stage", {"queue_wait", "batch_wait", "predict"})),
      degraded_(obs::FamilyRegistry::Global().GetCounterFamily(
          "serve/degraded_total", "reason", {"fault"})),
      last_progress_ns_(SteadyNowNs()) {
  Status valid = ValidateServeOptions(options_);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  // lifetime-ok: Stop() (called by the destructor) joins worker_ before
  // `this` is destroyed
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchingEngine::~BatchingEngine() { Stop(); }

bool BatchingEngine::Submit(PredictRequest request) {
  const bool accepted = queue_.TryPush(std::move(request));
  PILOTE_METRIC_GAUGE_SET("serve/queue_depth",
                          static_cast<double>(queue_.size()));
  return accepted;
}

void BatchingEngine::Stop() {
  {
    MutexLock lock(pause_mutex_);
    stopping_ = true;
    paused_ = false;
  }
  pause_cv_.NotifyAll();
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

int64_t BatchingEngine::batches_flushed() const {
  MutexLock lock(stats_mutex_);
  return batches_flushed_;
}

void BatchingEngine::PauseForTesting() {
  MutexLock lock(pause_mutex_);
  paused_ = true;
  // Kick the worker out of a blocking pop so it reaches the pause gate,
  // then wait for it to park: on return, nothing drains the queue until
  // ResumeForTesting.
  queue_.Interrupt();
  while (!parked_ && !stopping_) {
    pause_cv_.Wait(pause_mutex_);
  }
}

void BatchingEngine::ResumeForTesting() {
  {
    MutexLock lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.NotifyAll();
}

void BatchingEngine::WorkerLoop() {
  std::vector<PredictRequest> batch;
  while (true) {
    {
      MutexLock lock(pause_mutex_);
      if (paused_ && !stopping_) {
        parked_ = true;
        pause_cv_.NotifyAll();
        while (paused_ && !stopping_) {
          pause_cv_.Wait(pause_mutex_);
        }
        parked_ = false;
      }
    }
    if (!queue_.PopBatch(batch, static_cast<size_t>(options_.max_batch),
                         std::chrono::microseconds(options_.max_delay_us))) {
      break;  // closed and drained
    }
    last_progress_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
    if (batch.empty()) continue;  // interrupted pop: re-check the gate
    if (obs::Enabled()) {
      const auto dequeued = std::chrono::steady_clock::now();
      for (PredictRequest& request : batch) request.dequeue_time = dequeued;
    }
    ProcessBatch(batch);
    last_progress_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  }
}

void BatchingEngine::ProcessBatch(std::vector<PredictRequest>& batch) {
  PILOTE_TRACE_SPAN("serve/process_batch");
  alloc::AllocationScope alloc_scope;
  {
    // Surfaced by the annotation pass: this counter was declared guarded by
    // stats_mutex_ but no path ever advanced it, so batches_flushed()
    // always reported 0.
    MutexLock lock(stats_mutex_);  // hotpath-ok: uncontended stats tick
    ++batches_flushed_;
  }
  PILOTE_METRIC_COUNT("serve/batches", 1);
  PILOTE_METRIC_HISTOGRAM("serve/batch_size",
                          static_cast<double>(batch.size()));
  PILOTE_METRIC_GAUGE_SET("serve/queue_depth",
                          static_cast<double>(queue_.size()));

  // Group requests by learner, preserving arrival order within each group,
  // so each distinct learner gets exactly one batched forward. The group
  // index is member scratch: it grows to the distinct-learner high-water
  // mark once and is reused (capacity-preserving clear) ever after.
  group_count_ = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const LearnerHandle* key = batch[i].session->learner().get();
    size_t g = 0;
    for (; g < group_count_; ++g) {
      if (group_keys_[g] == key) break;
    }
    if (g == group_count_) {
      if (group_count_ == group_keys_.size()) {
        group_keys_.push_back(nullptr);  // hotpath-ok: high-water growth
        group_rows_.emplace_back();      // hotpath-ok: high-water growth
      }
      group_keys_[g] = key;
      group_rows_[g].clear();
      ++group_count_;
    }
    group_rows_[g].push_back(i);  // hotpath-ok: capacity reused across flushes
  }

  for (size_t g = 0; g < group_count_; ++g) {
    const std::vector<size_t>& rows = group_rows_[g];
    const int64_t dim = batch[rows.front()].features.cols();
    const int64_t n = static_cast<int64_t>(rows.size());
    // Assemble the [n, dim] forward input in the reused member buffer:
    // same values and layout as ConcatRows of the request rows, without
    // the per-flush tensor vector and concat allocation.
    if (flush_features_.rank() != 2 || flush_features_.cols() != dim) {
      flush_features_ =
          Tensor(Shape::Matrix(n, dim));  // hotpath-ok: first flush only
    } else {
      flush_features_.ResizeRows(n);
    }
    for (size_t k = 0; k < rows.size(); ++k) {
      const Tensor& row = batch[rows[k]].features;
      PILOTE_DCHECK(row.rank() == 2 && row.rows() == 1 && row.cols() == dim);
      std::memcpy(flush_features_.row(static_cast<int64_t>(k)), row.data(),
                  static_cast<size_t>(dim) * sizeof(float));
    }
    const Tensor& features = flush_features_;

    // Bounded retry-with-backoff on transient faults: the learner forward
    // may report kUnavailable (in production a device-side brownout, in the
    // chaos suite the "serve/predict" failpoint). Anything else fails the
    // batch immediately — retrying a deterministic error only burns the
    // latency budget.
    const auto predict_start = std::chrono::steady_clock::now();
    Result<std::vector<int>> labels =
        group_keys_[g]->TryPredictBatch(features);
    for (int attempt = 0;
         !labels.ok() && labels.status().code() == StatusCode::kUnavailable &&
         attempt < options_.predict_retries;
         ++attempt) {
      PILOTE_METRIC_COUNT("serve/faults_injected", 1);
      if (options_.retry_backoff_us > 0) {
        // hotpath-ok: fault-retry backoff, cold path by construction
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.retry_backoff_us << attempt));
      }
      labels = group_keys_[g]->TryPredictBatch(features);
      if (labels.ok()) PILOTE_METRIC_COUNT("serve/recoveries", 1);
    }

    if (!labels.ok()) {
      // Retry budget exhausted (or non-transient): complete every request
      // degraded with the session's last smoothed label, leaving the vote
      // history untouched — the same contract as a deadline miss.
      PILOTE_METRIC_COUNT("serve/faults_injected", 1);
      CountDegradedFault(static_cast<int64_t>(rows.size()));
      for (size_t k = 0; k < rows.size(); ++k) {
        PredictRequest& request = batch[rows[k]];
        request.done.set_value(request.session->LastPrediction().label);
      }
      continue;
    }

    const auto predict_end = std::chrono::steady_clock::now();
    PILOTE_CHECK_EQ(labels.value().size(), rows.size());
    for (size_t k = 0; k < rows.size(); ++k) {
      PredictRequest& request = batch[rows[k]];
      const int smoothed = request.session->CompleteWindow(labels.value()[k]);
      request.done.set_value(smoothed);
      using MilliDouble = std::chrono::duration<double, std::milli>;
      const double request_ms =
          MilliDouble(std::chrono::steady_clock::now() - request.enqueue_time)
              .count();
      PILOTE_METRIC_HISTOGRAM("serve/request_ms", request_ms);
      if (obs::Enabled()) {
        RecordStages(request, predict_start, predict_end, request_ms);
      }
    }
  }

  // Runtime side of the hot-path discipline: with PILOTE_ALLOC_STATS armed
  // (or a ScopedTracking in scope), every flush reports how often the
  // worker thread hit the allocator. bench_serving and the allocation-pin
  // test read these back through the metrics registry.
  if (alloc::TrackingEnabled()) {
    PILOTE_METRIC_COUNT("serve/flush_allocs", alloc_scope.count());
    PILOTE_METRIC_COUNT("serve/flush_alloc_bytes", alloc_scope.bytes());
    PILOTE_METRIC_HISTOGRAM("serve/window_allocs",
                            static_cast<double>(alloc_scope.count()) /
                                static_cast<double>(batch.size()));
  }
}

// hotpath-ok: one relaxed-atomic bump on the cold fault path; the bare
// `Add` call must not enter the hot-path call graph, where it would alias
// the tensor Add by name.
void BatchingEngine::CountDegradedFault(int64_t rows) {
  if (obs::Enabled()) degraded_.At(0).Add(rows);
}

void BatchingEngine::RecordStages(
    const PredictRequest& request,
    std::chrono::steady_clock::time_point predict_start,
    std::chrono::steady_clock::time_point predict_end, double request_ms) {
  using MilliDouble = std::chrono::duration<double, std::milli>;
  const double queue_wait_ms =
      MilliDouble(request.dequeue_time - request.enqueue_time).count();
  const double batch_wait_ms =
      MilliDouble(predict_start - request.dequeue_time).count();
  const double predict_ms = MilliDouble(predict_end - predict_start).count();
  stage_ms_.At(kQueueWaitSlot).Record(queue_wait_ms);
  stage_ms_.At(kBatchWaitSlot).Record(batch_wait_ms);
  stage_ms_.At(kPredictSlot).Record(predict_ms);

  // Slow-window exemplar policy: an explicit slow_window_ms threshold, or
  // (auto mode) any window landing in / establishing the top occupied
  // latency bucket observed so far.
  bool slow = false;
  if (options_.slow_window_ms > 0.0) {
    slow = request_ms >= options_.slow_window_ms;
  } else {
    const int bucket = obs::Histogram::BucketIndex(request_ms);
    int top = top_bucket_.load(std::memory_order_relaxed);
    if (bucket >= top) {
      slow = true;
      while (bucket > top &&
             !top_bucket_.compare_exchange_weak(top, bucket,
                                                std::memory_order_relaxed)) {
      }
    }
  }
  if (slow) {
    obs::SlowWindowExemplar exemplar;
    exemplar.session_id = request.session->id();
    exemplar.model_version = request.session->learner()->model_version();
    exemplar.queue_wait_ms = queue_wait_ms;
    exemplar.batch_wait_ms = batch_wait_ms;
    exemplar.predict_ms = predict_ms;
    exemplar.total_ms = request_ms;
    obs::SlowWindows().Record(exemplar);
  }
}

}  // namespace serve
}  // namespace pilote
