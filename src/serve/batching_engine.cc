#include "serve/batching_engine.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/learner_handle.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace serve {

BatchingEngine::BatchingEngine(const ServeOptions& options)
    : options_(options),
      queue_(static_cast<size_t>(options.queue_capacity)) {
  Status valid = ValidateServeOptions(options_);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchingEngine::~BatchingEngine() { Stop(); }

bool BatchingEngine::Submit(PredictRequest request) {
  const bool accepted = queue_.TryPush(std::move(request));
  PILOTE_METRIC_GAUGE_SET("serve/queue_depth",
                          static_cast<double>(queue_.size()));
  return accepted;
}

void BatchingEngine::Stop() {
  {
    MutexLock lock(pause_mutex_);
    stopping_ = true;
    paused_ = false;
  }
  pause_cv_.NotifyAll();
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

int64_t BatchingEngine::batches_flushed() const {
  MutexLock lock(stats_mutex_);
  return batches_flushed_;
}

void BatchingEngine::PauseForTesting() {
  MutexLock lock(pause_mutex_);
  paused_ = true;
  // Kick the worker out of a blocking pop so it reaches the pause gate,
  // then wait for it to park: on return, nothing drains the queue until
  // ResumeForTesting.
  queue_.Interrupt();
  while (!parked_ && !stopping_) {
    pause_cv_.Wait(pause_mutex_);
  }
}

void BatchingEngine::ResumeForTesting() {
  {
    MutexLock lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.NotifyAll();
}

void BatchingEngine::WorkerLoop() {
  std::vector<PredictRequest> batch;
  while (true) {
    {
      MutexLock lock(pause_mutex_);
      if (paused_ && !stopping_) {
        parked_ = true;
        pause_cv_.NotifyAll();
        while (paused_ && !stopping_) {
          pause_cv_.Wait(pause_mutex_);
        }
        parked_ = false;
      }
    }
    if (!queue_.PopBatch(batch, static_cast<size_t>(options_.max_batch),
                         std::chrono::microseconds(options_.max_delay_us))) {
      break;  // closed and drained
    }
    if (batch.empty()) continue;  // interrupted pop: re-check the gate
    ProcessBatch(batch);
  }
}

void BatchingEngine::ProcessBatch(std::vector<PredictRequest>& batch) {
  PILOTE_TRACE_SPAN("serve/process_batch");
  {
    // Surfaced by the annotation pass: this counter was declared guarded by
    // stats_mutex_ but no path ever advanced it, so batches_flushed()
    // always reported 0.
    MutexLock lock(stats_mutex_);
    ++batches_flushed_;
  }
  PILOTE_METRIC_COUNT("serve/batches", 1);
  PILOTE_METRIC_HISTOGRAM("serve/batch_size",
                          static_cast<double>(batch.size()));
  PILOTE_METRIC_GAUGE_SET("serve/queue_depth",
                          static_cast<double>(queue_.size()));

  // Group requests by learner, preserving arrival order within each group,
  // so each distinct learner gets exactly one batched forward.
  std::vector<std::vector<size_t>> groups;
  std::vector<const LearnerHandle*> group_keys;
  for (size_t i = 0; i < batch.size(); ++i) {
    const LearnerHandle* key = batch[i].session->learner().get();
    size_t g = 0;
    for (; g < group_keys.size(); ++g) {
      if (group_keys[g] == key) break;
    }
    if (g == group_keys.size()) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }

  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<Tensor> rows;
    rows.reserve(groups[g].size());
    for (size_t i : groups[g]) rows.push_back(batch[i].features);
    const Tensor features = ConcatRows(rows);

    // Bounded retry-with-backoff on transient faults: the learner forward
    // may report kUnavailable (in production a device-side brownout, in the
    // chaos suite the "serve/predict" failpoint). Anything else fails the
    // batch immediately — retrying a deterministic error only burns the
    // latency budget.
    Result<std::vector<int>> labels = group_keys[g]->TryPredictBatch(features);
    for (int attempt = 0;
         !labels.ok() && labels.status().code() == StatusCode::kUnavailable &&
         attempt < options_.predict_retries;
         ++attempt) {
      PILOTE_METRIC_COUNT("serve/faults_injected", 1);
      if (options_.retry_backoff_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.retry_backoff_us << attempt));
      }
      labels = group_keys[g]->TryPredictBatch(features);
      if (labels.ok()) PILOTE_METRIC_COUNT("serve/recoveries", 1);
    }

    if (!labels.ok()) {
      // Retry budget exhausted (or non-transient): complete every request
      // degraded with the session's last smoothed label, leaving the vote
      // history untouched — the same contract as a deadline miss.
      PILOTE_METRIC_COUNT("serve/faults_injected", 1);
      for (size_t k = 0; k < groups[g].size(); ++k) {
        PredictRequest& request = batch[groups[g][k]];
        request.done.set_value(request.session->LastPrediction().label);
      }
      continue;
    }

    PILOTE_CHECK_EQ(labels.value().size(), groups[g].size());
    for (size_t k = 0; k < groups[g].size(); ++k) {
      PredictRequest& request = batch[groups[g][k]];
      const int smoothed = request.session->CompleteWindow(labels.value()[k]);
      request.done.set_value(smoothed);
      using MilliDouble = std::chrono::duration<double, std::milli>;
      const double request_ms =
          MilliDouble(std::chrono::steady_clock::now() - request.enqueue_time)
              .count();
      PILOTE_METRIC_HISTOGRAM("serve/request_ms", request_ms);
    }
  }
}

}  // namespace serve
}  // namespace pilote
