#ifndef PILOTE_SERVE_BATCHING_ENGINE_H_
#define PILOTE_SERVE_BATCHING_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "common/bounded_queue.h"
#include "serve/session.h"
#include "serve/types.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serve {

// One completed feature window awaiting classification.
struct PredictRequest {
  std::shared_ptr<Session> session;
  Tensor features;  // [1, input_dim] raw feature row
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<int> done;  // fulfilled with the smoothed label
};

// Pulls completed windows from every session through one bounded MPSC
// queue and coalesces them into batched backbone forwards: each drained
// batch is grouped by learner, concatenated, and classified with a single
// PredictBatch per learner (one GEMM chain for K windows instead of K).
// Flushes on max_batch or max_delay_us, whichever comes first. A full
// queue makes Submit fail — the manager turns that into
// kResourceExhausted backpressure.
class BatchingEngine {
 public:
  explicit BatchingEngine(const ServeOptions& options);
  ~BatchingEngine();

  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  // Non-blocking; false when the queue is full (backpressure) or the
  // engine is stopped. On false the request's promise is untouched.
  bool Submit(PredictRequest request);

  // Closes the queue, drains remaining requests (their promises are
  // fulfilled) and joins the worker. Idempotent.
  void Stop();

  int64_t queue_depth() const { return static_cast<int64_t>(queue_.size()); }
  int64_t batches_flushed() const;

  // Test hooks: while paused the worker stops draining the queue, which
  // makes backpressure and deadline misses deterministic to provoke.
  void PauseForTesting();
  void ResumeForTesting();

 private:
  void WorkerLoop();
  void ProcessBatch(std::vector<PredictRequest>& batch);

  const ServeOptions options_;
  BoundedQueue<PredictRequest> queue_;

  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  bool parked_ = false;  // worker is waiting at the pause gate
  bool stopping_ = false;

  mutable std::mutex stats_mutex_;
  int64_t batches_flushed_ = 0;

  std::thread worker_;
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_BATCHING_ENGINE_H_
