#ifndef PILOTE_SERVE_BATCHING_ENGINE_H_
#define PILOTE_SERVE_BATCHING_ENGINE_H_

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/hot_path.h"
#include "common/thread_annotations.h"
#include "obs/labels.h"
#include "serve/session.h"
#include "serve/types.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serve {

// One completed feature window awaiting classification. The timestamps
// split end-to-end latency into stages: enqueue->dequeue is queue wait,
// dequeue->forward start is batch wait (grouping/assembly plus waiting for
// earlier groups in the flush), forward start->completion is predict.
struct PredictRequest {
  std::shared_ptr<Session> session;
  Tensor features;  // [1, input_dim] raw feature row
  std::chrono::steady_clock::time_point enqueue_time;
  // Stamped by the worker when the request leaves the queue (only while
  // metric recording is enabled; unused otherwise).
  std::chrono::steady_clock::time_point dequeue_time;
  std::promise<int> done;  // fulfilled with the smoothed label
};

// Pulls completed windows from every session through one bounded MPSC
// queue and coalesces them into batched backbone forwards: each drained
// batch is grouped by learner, concatenated, and classified with a single
// PredictBatch per learner (one GEMM chain for K windows instead of K).
// Flushes on max_batch or max_delay_us, whichever comes first. A full
// queue makes Submit fail — the manager turns that into
// kResourceExhausted backpressure.
class BatchingEngine {
 public:
  explicit BatchingEngine(const ServeOptions& options);
  ~BatchingEngine();

  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  // Non-blocking; false when the queue is full (backpressure) or the
  // engine is stopped. On false the request's promise is untouched.
  bool Submit(PredictRequest request);

  // Closes the queue, drains remaining requests (their promises are
  // fulfilled) and joins the worker. Idempotent.
  void Stop() PILOTE_EXCLUDES(pause_mutex_);

  int64_t queue_depth() const { return static_cast<int64_t>(queue_.size()); }
  int64_t queue_capacity() const { return options_.queue_capacity; }
  int64_t batches_flushed() const PILOTE_EXCLUDES(stats_mutex_);

  // Steady-clock nanoseconds of the worker's last liveness signal (a flush
  // completed, or an idle pop timed out on an empty queue). The watchdog's
  // flush-age input: a non-empty queue plus a stale value means the worker
  // is stuck, not idle.
  int64_t last_progress_ns() const {
    return last_progress_ns_.load(std::memory_order_relaxed);
  }

  // Test hooks: while paused the worker stops draining the queue, which
  // makes backpressure and deadline misses deterministic to provoke.
  void PauseForTesting() PILOTE_EXCLUDES(pause_mutex_);
  void ResumeForTesting() PILOTE_EXCLUDES(pause_mutex_);

 private:
  void WorkerLoop() PILOTE_EXCLUDES(pause_mutex_);
  PILOTE_HOT_PATH void ProcessBatch(std::vector<PredictRequest>& batch)
      PILOTE_EXCLUDES(stats_mutex_);
  // Stage histograms + slow-window exemplar capture for one completed
  // request (called on the success path so stage counts match
  // serve/request_ms).
  PILOTE_HOT_PATH void RecordStages(const PredictRequest& request,
                                    std::chrono::steady_clock::time_point
                                        predict_start,
                                    std::chrono::steady_clock::time_point
                                        predict_end,
                                    double request_ms);
  // Bumps serve/degraded_total{reason="fault"} for `rows` requests.
  void CountDegradedFault(int64_t rows);

  const ServeOptions options_;
  BoundedQueue<PredictRequest> queue_;  // unguarded: internally synchronized

  Mutex pause_mutex_ PILOTE_ACQUIRED_BEFORE(stats_mutex_);
  CondVar pause_cv_;  // unguarded: internally synchronized
  bool paused_ PILOTE_GUARDED_BY(pause_mutex_) = false;
  // Worker is waiting at the pause gate.
  bool parked_ PILOTE_GUARDED_BY(pause_mutex_) = false;
  bool stopping_ PILOTE_GUARDED_BY(pause_mutex_) = false;

  mutable Mutex stats_mutex_;
  int64_t batches_flushed_ PILOTE_GUARDED_BY(stats_mutex_) = 0;

  // Flush scratch, reused across flushes so the steady state never hits
  // the allocator: the group index and the assembled feature matrix keep
  // their capacity between ProcessBatch calls (hot-path discipline).
  // Row indices into the drained batch, one list per distinct learner.
  std::vector<std::vector<size_t>> group_rows_;   // unguarded: worker only
  std::vector<const LearnerHandle*> group_keys_;  // unguarded: worker only
  size_t group_count_ = 0;                        // unguarded: worker only
  Tensor flush_features_;                         // unguarded: worker only

  // Per-stage latency family, slots kQueueWaitSlot/kBatchWaitSlot/
  // kPredictSlot of serve/stage_ms{stage=...}. Resolved once here so the
  // worker records through stable handles, lock- and alloc-free.
  static constexpr size_t kQueueWaitSlot = 0;
  static constexpr size_t kBatchWaitSlot = 1;
  static constexpr size_t kPredictSlot = 2;
  const obs::HistogramFamily stage_ms_;  // unguarded: handles are lock-free
  // serve/degraded_total{reason="fault"} slot (deadline/backpressure
  // reasons are counted by the SessionManager).
  const obs::CounterFamily degraded_;  // unguarded: handles are lock-free

  // Worker liveness (see last_progress_ns()).
  std::atomic<int64_t> last_progress_ns_;
  // Highest occupied serve/request_ms bucket; the auto slow-window
  // exemplar threshold when slow_window_ms == 0.
  std::atomic<int> top_bucket_{0};

  std::thread worker_;  // unguarded: started in ctor, joined in Stop
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_BATCHING_ENGINE_H_
