#ifndef PILOTE_SERVE_BATCHING_ENGINE_H_
#define PILOTE_SERVE_BATCHING_ENGINE_H_

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/hot_path.h"
#include "common/thread_annotations.h"
#include "serve/session.h"
#include "serve/types.h"
#include "tensor/tensor.h"

namespace pilote {
namespace serve {

// One completed feature window awaiting classification.
struct PredictRequest {
  std::shared_ptr<Session> session;
  Tensor features;  // [1, input_dim] raw feature row
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<int> done;  // fulfilled with the smoothed label
};

// Pulls completed windows from every session through one bounded MPSC
// queue and coalesces them into batched backbone forwards: each drained
// batch is grouped by learner, concatenated, and classified with a single
// PredictBatch per learner (one GEMM chain for K windows instead of K).
// Flushes on max_batch or max_delay_us, whichever comes first. A full
// queue makes Submit fail — the manager turns that into
// kResourceExhausted backpressure.
class BatchingEngine {
 public:
  explicit BatchingEngine(const ServeOptions& options);
  ~BatchingEngine();

  BatchingEngine(const BatchingEngine&) = delete;
  BatchingEngine& operator=(const BatchingEngine&) = delete;

  // Non-blocking; false when the queue is full (backpressure) or the
  // engine is stopped. On false the request's promise is untouched.
  bool Submit(PredictRequest request);

  // Closes the queue, drains remaining requests (their promises are
  // fulfilled) and joins the worker. Idempotent.
  void Stop() PILOTE_EXCLUDES(pause_mutex_);

  int64_t queue_depth() const { return static_cast<int64_t>(queue_.size()); }
  int64_t batches_flushed() const PILOTE_EXCLUDES(stats_mutex_);

  // Test hooks: while paused the worker stops draining the queue, which
  // makes backpressure and deadline misses deterministic to provoke.
  void PauseForTesting() PILOTE_EXCLUDES(pause_mutex_);
  void ResumeForTesting() PILOTE_EXCLUDES(pause_mutex_);

 private:
  void WorkerLoop() PILOTE_EXCLUDES(pause_mutex_);
  PILOTE_HOT_PATH void ProcessBatch(std::vector<PredictRequest>& batch)
      PILOTE_EXCLUDES(stats_mutex_);

  const ServeOptions options_;
  BoundedQueue<PredictRequest> queue_;  // unguarded: internally synchronized

  Mutex pause_mutex_ PILOTE_ACQUIRED_BEFORE(stats_mutex_);
  CondVar pause_cv_;  // unguarded: internally synchronized
  bool paused_ PILOTE_GUARDED_BY(pause_mutex_) = false;
  // Worker is waiting at the pause gate.
  bool parked_ PILOTE_GUARDED_BY(pause_mutex_) = false;
  bool stopping_ PILOTE_GUARDED_BY(pause_mutex_) = false;

  mutable Mutex stats_mutex_;
  int64_t batches_flushed_ PILOTE_GUARDED_BY(stats_mutex_) = 0;

  // Flush scratch, reused across flushes so the steady state never hits
  // the allocator: the group index and the assembled feature matrix keep
  // their capacity between ProcessBatch calls (hot-path discipline).
  // Row indices into the drained batch, one list per distinct learner.
  std::vector<std::vector<size_t>> group_rows_;   // unguarded: worker only
  std::vector<const LearnerHandle*> group_keys_;  // unguarded: worker only
  size_t group_count_ = 0;                        // unguarded: worker only
  Tensor flush_features_;                         // unguarded: worker only

  std::thread worker_;  // unguarded: started in ctor, joined in Stop
};

}  // namespace serve
}  // namespace pilote

#endif  // PILOTE_SERVE_BATCHING_ENGINE_H_
