#ifndef PILOTE_SCENARIO_SCENARIO_H_
#define PILOTE_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "har/activity.h"
#include "scenario/event.h"
#include "scenario/report.h"

namespace pilote {
namespace scenario {

// Regression gates a scenario's metrics must clear (checked by the
// labeled ctests and, with tolerance, by the bench baseline diff).
// Defaults are vacuous so a spec only states the gates it cares about.
struct ScenarioThresholds {
  double min_final_average_accuracy = 0.0;
  double min_average_incremental_accuracy = 0.0;
  double max_forgetting = 1.0;
};

// A named, seeded continual-learning scenario: cloud pretraining on the
// base classes followed by a scripted event stream. Everything that
// influences the run is in here, so (spec -> report) is a pure function
// and the report JSON is reproducible byte-for-byte.
struct ScenarioSpec {
  std::string name;
  uint64_t seed = 1;
  // MakeEdgeLearner strategy: "pretrained", "retrained", "pilote", "gdumb".
  std::string strategy = "pilote";
  core::PiloteConfig config;
  // Task 0: classes the cloud pretrains on.
  std::vector<har::Activity> base_activities;
  int64_t base_samples_per_class = 60;
  // Rows per class in each task's fixed (undrifted) eval set.
  int64_t eval_samples_per_class = 24;
  std::vector<ScenarioEvent> events;
  ScenarioThresholds thresholds;
};

// Replays `spec`: pretrains on the base classes, builds the edge learner,
// walks the events, and records one full accuracy-matrix row after task 0
// and after every kClassArrival. Eval sets are drawn once, undrifted,
// from a generator seeded independently of the training stream — drift
// events change what the learner trains on, never what it is graded on.
// kInvalidArgument for a malformed spec (no base classes, an arrival of
// an already-introduced class, a revisit of an unknown one); propagates
// any learner/pretrainer error.
Result<ScenarioReport> RunScenario(const ScenarioSpec& spec);

// kFailedPrecondition naming the first metric outside its threshold.
Status CheckThresholds(const ScenarioSpec& spec,
                       const ScenarioReport& report);

}  // namespace scenario
}  // namespace pilote

#endif  // PILOTE_SCENARIO_SCENARIO_H_
