#include "scenario/scenario.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/support_set.h"
#include "data/dataset.h"
#include "har/har_dataset.h"

namespace pilote {
namespace scenario {
namespace {

std::vector<int> LabelsOf(const std::vector<har::Activity>& activities) {
  std::vector<int> labels;
  labels.reserve(activities.size());
  for (har::Activity activity : activities) {
    labels.push_back(har::ActivityLabel(activity));
  }
  return labels;
}

// One task's fixed eval set: per-class rows from the (undrifted) eval
// generator, concatenated in the spec's class order.
data::Dataset DrawEvalSet(har::HarDataGenerator& generator,
                          const std::vector<har::Activity>& activities,
                          int64_t per_class) {
  std::vector<data::Dataset> parts;
  parts.reserve(activities.size());
  for (har::Activity activity : activities) {
    parts.push_back(generator.Generate(activity, per_class));
  }
  return data::Dataset::Concat(parts);
}

// Contaminated recordings: with probability `noise` a new-class row's
// window actually captured a random already-known activity; the label
// keeps claiming the new class. Coin flips and replacement draws come
// from dedicated streams so toggling noise does not shift the rest of
// the scenario.
data::Dataset ContaminateRows(const data::Dataset& clean,
                              const std::vector<int>& known_classes,
                              double noise, har::HarDataGenerator& stream,
                              Rng& coin) {
  Tensor features = clean.features();
  const int64_t dim = features.cols();
  for (int64_t row = 0; row < features.rows(); ++row) {
    if (!coin.Bernoulli(noise)) continue;
    const size_t pick = static_cast<size_t>(
        coin.UniformUint64(known_classes.size()));
    const auto activity = static_cast<har::Activity>(known_classes[pick]);
    const data::Dataset replacement = stream.Generate(activity, 1);
    for (int64_t d = 0; d < dim; ++d) {
      features(row, d) = replacement.features()(0, d);
    }
  }
  return data::Dataset(std::move(features), clean.labels());
}

}  // namespace

Result<ScenarioReport> RunScenario(const ScenarioSpec& spec) {
  if (spec.base_activities.empty()) {
    return Status::InvalidArgument("scenario \"" + spec.name +
                                   "\": no base activities");
  }

  // Task layout: task 0 is the pretraining base, then one task per
  // arrival. Validated up front so a malformed spec fails before the
  // expensive pretrain.
  std::vector<std::vector<int>> task_classes;
  task_classes.push_back(LabelsOf(spec.base_activities));
  std::set<int> introduced(task_classes[0].begin(), task_classes[0].end());
  for (const ScenarioEvent& event : spec.events) {
    switch (event.kind) {
      case EventKind::kClassArrival: {
        if (event.activities.empty() || event.samples_per_class <= 0) {
          return Status::InvalidArgument(
              "scenario \"" + spec.name +
              "\": arrival without classes/samples");
        }
        std::vector<int> labels = LabelsOf(event.activities);
        for (int label : labels) {
          if (!introduced.insert(label).second) {
            return Status::InvalidArgument(
                "scenario \"" + spec.name + "\": class " +
                std::to_string(label) + " arrives twice");
          }
        }
        task_classes.push_back(std::move(labels));
        break;
      }
      case EventKind::kRevisit:
        for (int label : LabelsOf(event.activities)) {
          if (introduced.count(label) == 0) {
            return Status::InvalidArgument(
                "scenario \"" + spec.name + "\": revisit of class " +
                std::to_string(label) + " before it is introduced");
          }
        }
        if (event.activities.empty() || event.samples_per_class <= 0) {
          return Status::InvalidArgument(
              "scenario \"" + spec.name +
              "\": revisit without classes/samples");
        }
        break;
      case EventKind::kLabelNoise:
        if (event.label_noise < 0.0 || event.label_noise >= 1.0) {
          return Status::InvalidArgument(
              "scenario \"" + spec.name + "\": label noise " +
              std::to_string(event.label_noise) + " outside [0, 1)");
        }
        break;
      default:
        break;
    }
  }
  const int num_tasks = static_cast<int>(task_classes.size());

  ScenarioReport report;
  report.name = spec.name;
  report.seed = spec.seed;
  report.strategy = spec.strategy;
  report.task_classes = task_classes;
  report.chance_accuracy = 1.0 / static_cast<double>(introduced.size());

  // Independent streams: training data (drift applies here), fixed eval
  // sets, and label-noise coin flips never share RNG state, so each knob
  // can change without silently reshuffling the others.
  har::HarDataGenerator stream(spec.seed);
  har::HarDataGenerator eval_stream(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  Rng noise_rng(spec.seed ^ 0xC2B2AE3D27D4EB4FULL);

  std::vector<data::Dataset> eval_sets;
  eval_sets.reserve(task_classes.size());
  for (int task = 0; task < num_tasks; ++task) {
    std::vector<har::Activity> activities;
    for (int label : task_classes[static_cast<size_t>(task)]) {
      activities.push_back(static_cast<har::Activity>(label));
    }
    eval_sets.push_back(
        DrawEvalSet(eval_stream, activities, spec.eval_samples_per_class));
  }

  data::Dataset d_base = stream.GenerateBalanced(spec.base_samples_per_class,
                                                 spec.base_activities);
  core::CloudPretrainer pretrainer(spec.config);
  PILOTE_ASSIGN_OR_RETURN(core::CloudPretrainResult pretrain,
                          pretrainer.Run(d_base));
  PILOTE_ASSIGN_OR_RETURN(
      std::unique_ptr<core::EdgeLearner> learner,
      core::MakeEdgeLearner(spec.strategy, pretrain.artifact, spec.config));

  // Records a complete matrix row (all tasks, future ones included — the
  // upper triangle is the forward-transfer probe).
  eval::TaskAccuracyMatrix matrix(num_tasks);
  std::vector<std::vector<double>> rows;
  const auto record_row = [&](int after_task) {
    std::vector<double> row(static_cast<size_t>(num_tasks), 0.0);
    for (int task = 0; task < num_tasks; ++task) {
      const double accuracy =
          learner->Evaluate(eval_sets[static_cast<size_t>(task)]);
      matrix.Set(after_task, task, accuracy);
      row[static_cast<size_t>(task)] = accuracy;
    }
    rows.push_back(std::move(row));
  };
  record_row(0);

  int task_index = 0;
  int checkpoint_index = 0;
  int revisit_index = 0;
  double label_noise = 0.0;
  for (const ScenarioEvent& event : spec.events) {
    switch (event.kind) {
      case EventKind::kDrift:
        stream.simulator().SetDrift(event.drift);
        break;

      case EventKind::kLabelNoise:
        label_noise = event.label_noise;
        break;

      case EventKind::kClassArrival: {
        std::vector<data::Dataset> parts;
        for (har::Activity activity : event.activities) {
          parts.push_back(
              stream.Generate(activity, event.samples_per_class));
        }
        data::Dataset d_new = data::Dataset::Concat(parts);
        if (label_noise > 0.0) {
          d_new = ContaminateRows(d_new, learner->known_classes(),
                                  label_noise, stream, noise_rng);
        }
        Result<core::TrainReport> learned = learner->LearnNewClasses(d_new);
        PILOTE_RETURN_IF_ERROR(learned.status());
        ++task_index;
        record_row(task_index);
        break;
      }

      case EventKind::kRevisit: {
        core::SupportSet updated = learner->support();
        for (har::Activity activity : event.activities) {
          const int label = har::ActivityLabel(activity);
          if (!updated.HasClass(label)) {
            return Status::InvalidArgument(
                "scenario \"" + spec.name + "\": revisit of unknown class " +
                std::to_string(label));
          }
          data::Dataset fresh =
              stream.Generate(activity, event.samples_per_class);
          updated.SetClassExemplars(
              label, pretrain.artifact.scaler.Transform(fresh.features()));
        }
        updated.TrimPerClass(spec.config.exemplars_per_class);
        PILOTE_RETURN_IF_ERROR(
            learner->ApplySupportSetUpdate(std::move(updated)));
        std::vector<data::Dataset> probe_parts;
        for (int task = 0; task <= task_index; ++task) {
          data::Dataset part =
              eval_sets[static_cast<size_t>(task)].FilterByClasses(
                  LabelsOf(event.activities));
          if (!part.empty()) probe_parts.push_back(std::move(part));
        }
        report.extras.emplace_back(
            "revisit" + std::to_string(revisit_index) + "_old_acc",
            learner->Evaluate(data::Dataset::Concat(probe_parts)));
        ++revisit_index;
        break;
      }

      case EventKind::kUserShift: {
        const har::SensorDrift previous = stream.simulator().drift();
        stream.simulator().SetDrift(
            har::SensorDrift::UserProfile(event.user_id, event.severity));
        // The user's world: drifted draws of every class known right now.
        std::vector<har::Activity> known;
        for (int label : learner->known_classes()) {
          known.push_back(static_cast<har::Activity>(label));
        }
        std::vector<data::Dataset> adapt_parts;
        std::vector<data::Dataset> eval_parts;
        for (har::Activity activity : known) {
          adapt_parts.push_back(
              stream.Generate(activity, event.samples_per_class));
          eval_parts.push_back(
              stream.Generate(activity, event.samples_per_class));
        }
        const data::Dataset user_eval = data::Dataset::Concat(eval_parts);
        const std::string prefix =
            "user" + std::to_string(event.user_id);
        report.extras.emplace_back(prefix + "_acc_before_adapt",
                                   learner->Evaluate(user_eval));
        for (const data::Dataset& part : adapt_parts) {
          PILOTE_RETURN_IF_ERROR(learner->AdaptPrototype(
              part.label(0), part.features(), event.adapt_rate));
        }
        report.extras.emplace_back(prefix + "_acc_after_adapt",
                                   learner->Evaluate(user_eval));
        stream.simulator().SetDrift(previous);
        break;
      }

      case EventKind::kCheckpoint: {
        std::vector<data::Dataset> seen(
            eval_sets.begin(), eval_sets.begin() + task_index + 1);
        report.extras.emplace_back(
            "checkpoint" + std::to_string(checkpoint_index) + "_seen_acc",
            learner->Evaluate(data::Dataset::Concat(seen)));
        ++checkpoint_index;
        break;
      }
    }
  }

  report.accuracy_matrix = std::move(rows);
  PILOTE_ASSIGN_OR_RETURN(
      report.metrics, eval::ComputeClMetrics(matrix, report.chance_accuracy));
  return report;
}

Status CheckThresholds(const ScenarioSpec& spec,
                       const ScenarioReport& report) {
  const ScenarioThresholds& gates = spec.thresholds;
  const eval::ClMetrics& metrics = report.metrics;
  if (metrics.final_average_accuracy < gates.min_final_average_accuracy) {
    return Status::FailedPrecondition(
        "scenario \"" + spec.name + "\": final_average_accuracy " +
        std::to_string(metrics.final_average_accuracy) + " below gate " +
        std::to_string(gates.min_final_average_accuracy));
  }
  if (metrics.average_incremental_accuracy <
      gates.min_average_incremental_accuracy) {
    return Status::FailedPrecondition(
        "scenario \"" + spec.name + "\": average_incremental_accuracy " +
        std::to_string(metrics.average_incremental_accuracy) +
        " below gate " +
        std::to_string(gates.min_average_incremental_accuracy));
  }
  if (metrics.forgetting > gates.max_forgetting) {
    return Status::FailedPrecondition(
        "scenario \"" + spec.name + "\": forgetting " +
        std::to_string(metrics.forgetting) + " above gate " +
        std::to_string(gates.max_forgetting));
  }
  return Status::Ok();
}

}  // namespace scenario
}  // namespace pilote
