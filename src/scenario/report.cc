#include "scenario/report.h"

#include <cstdio>
#include <string>

namespace pilote {
namespace scenario {
namespace {

// Shortest round-trippable-enough form; "%.9g" keeps accuracies exact to
// well below any threshold tolerance and never emits locale-dependent
// grouping (the process runs under the default "C" locale).
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return std::string(buffer);
}

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string ScenarioReport::ToJson() const {
  std::string json = "{\n";
  json += "  \"scenario\": " + Quote(name) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"strategy\": " + Quote(strategy) + ",\n";
  json += "  \"chance_accuracy\": " + FormatDouble(chance_accuracy) + ",\n";
  json += "  \"num_tasks\": " + std::to_string(task_classes.size()) + ",\n";

  json += "  \"task_classes\": [";
  for (size_t t = 0; t < task_classes.size(); ++t) {
    if (t > 0) json += ", ";
    json += "[";
    for (size_t c = 0; c < task_classes[t].size(); ++c) {
      if (c > 0) json += ", ";
      json += std::to_string(task_classes[t][c]);
    }
    json += "]";
  }
  json += "],\n";

  json += "  \"accuracy_matrix\": [\n";
  for (size_t i = 0; i < accuracy_matrix.size(); ++i) {
    json += "    [";
    for (size_t j = 0; j < accuracy_matrix[i].size(); ++j) {
      if (j > 0) json += ", ";
      json += FormatDouble(accuracy_matrix[i][j]);
    }
    json += i + 1 < accuracy_matrix.size() ? "],\n" : "]\n";
  }
  json += "  ],\n";

  json += "  \"metrics\": {\n";
  json += "    \"average_incremental_accuracy\": " +
          FormatDouble(metrics.average_incremental_accuracy) + ",\n";
  json += "    \"final_average_accuracy\": " +
          FormatDouble(metrics.final_average_accuracy) + ",\n";
  json += "    \"forgetting\": " + FormatDouble(metrics.forgetting) + ",\n";
  json += "    \"backward_transfer\": " +
          FormatDouble(metrics.backward_transfer) + ",\n";
  if (metrics.has_forward_transfer) {
    json += "    \"forward_transfer\": " +
            FormatDouble(metrics.forward_transfer) + ",\n";
  }
  json += "    \"has_forward_transfer\": ";
  json += metrics.has_forward_transfer ? "true" : "false";
  json += "\n  },\n";

  json += "  \"extras\": {";
  for (size_t k = 0; k < extras.size(); ++k) {
    json += k > 0 ? ",\n    " : "\n    ";
    json += Quote(extras[k].first) + ": " + FormatDouble(extras[k].second);
  }
  json += extras.empty() ? "}\n" : "\n  }\n";
  json += "}\n";
  return json;
}

}  // namespace scenario
}  // namespace pilote
