#ifndef PILOTE_SCENARIO_REPORT_H_
#define PILOTE_SCENARIO_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/metrics.h"

namespace pilote {
namespace scenario {

// The full outcome of one scenario run. Plain data, fully determined by
// (spec, seed): no wall-clock, pointers, or environment leak in, so the
// same run serializes to byte-identical JSON every time — the property
// the determinism golden test and the CI artifact diff rely on.
struct ScenarioReport {
  std::string name;
  uint64_t seed = 0;
  std::string strategy;
  // Forward-transfer baseline: accuracy of uninformed guessing over every
  // class the scenario ever introduces.
  double chance_accuracy = 0.0;
  // Class labels of each task (task 0 = cloud pretraining classes).
  std::vector<std::vector<int>> task_classes;
  // Full accuracy matrix: accuracy_matrix[i][j] = accuracy on task j's
  // eval set after checkpoint i (rows are recorded complete, so the
  // upper triangle carries the forward-transfer probes).
  std::vector<std::vector<double>> accuracy_matrix;
  eval::ClMetrics metrics;
  // Named scalar observations recorded by non-task events (checkpoints,
  // revisits, user shifts), in event order.
  std::vector<std::pair<std::string, double>> extras;

  // Deterministic JSON: fixed key order, insertion-ordered extras,
  // locale-independent "%.9g" doubles. Ends with a trailing newline.
  std::string ToJson() const;
};

}  // namespace scenario
}  // namespace pilote

#endif  // PILOTE_SCENARIO_REPORT_H_
