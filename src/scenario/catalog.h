#ifndef PILOTE_SCENARIO_CATALOG_H_
#define PILOTE_SCENARIO_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "scenario/scenario.h"

namespace pilote {
namespace scenario {

// The named regression matrix: every spec here runs end-to-end as a
// seeded ctest (label "scenario", one test per name) and through
// bench_scenarios into the committed JSON baseline. Names are stable
// identifiers — CI artifact keys and ctest names derive from them.
//
//   class_arrival        two sequential single-class increments
//   recalibration_drift  sensor recalibration before the increment
//   label_noise          contaminated new-class recordings
//   class_revisit        old class re-recorded between two arrivals
//   user_shift           per-user drift + on-device prototype adaptation
//   long_horizon         three increments with drift, noise, checkpoints
std::vector<ScenarioSpec> AllScenarios();

// kNotFound listing the known names when `name` is not in the catalog.
Result<ScenarioSpec> FindScenario(const std::string& name);

}  // namespace scenario
}  // namespace pilote

#endif  // PILOTE_SCENARIO_CATALOG_H_
