#include "scenario/catalog.h"

#include <utility>

namespace pilote {
namespace scenario {
namespace {

using har::Activity;

// Scenario-scale config: the Small test backbone with a slightly leaner
// pretrain (the matrix runs six pretrains per ctest invocation) and an
// edge-realistic exemplar budget.
core::PiloteConfig ScenarioConfig(uint64_t seed) {
  core::PiloteConfig config = core::PiloteConfig::Small();
  config.pretrain.max_epochs = 12;
  config.pretrain.batches_per_epoch = 72;
  config.exemplars_per_class = 40;
  config.seed = seed;
  return config;
}

ScenarioSpec BaseSpec(std::string name, uint64_t seed,
                      std::vector<Activity> base) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.seed = seed;
  spec.strategy = "pilote";
  spec.config = ScenarioConfig(seed);
  spec.base_activities = std::move(base);
  spec.base_samples_per_class = 60;
  spec.eval_samples_per_class = 24;
  return spec;
}

// Two classes arrive one at a time — the paper's core increment loop,
// doubled to expose forgetting across more than one update.
ScenarioSpec ClassArrivalSpec() {
  ScenarioSpec spec = BaseSpec(
      "class_arrival", 11,
      {Activity::kDrive, Activity::kEscooter, Activity::kStill});
  spec.events = {
      ClassArrival({Activity::kWalk}, 40),
      ClassArrival({Activity::kRun}, 40),
  };
  spec.thresholds.min_final_average_accuracy = 0.75;
  spec.thresholds.min_average_incremental_accuracy = 0.75;
  spec.thresholds.max_forgetting = 0.25;
  return spec;
}

// The device is re-mounted / recalibrated before the new class shows up:
// offsets on the inertial and barometric channels plus a raised noise
// floor. The increment must survive training on the drifted stream while
// being graded on the nominal eval draw.
ScenarioSpec RecalibrationDriftSpec() {
  ScenarioSpec spec = BaseSpec(
      "recalibration_drift", 12,
      {Activity::kDrive, Activity::kEscooter, Activity::kStill,
       Activity::kWalk});
  har::SensorDrift drift;
  drift.accel_offset[0] = 0.6;
  drift.accel_offset[2] = -0.4;
  drift.gyro_offset[1] = 0.05;
  drift.baro_offset = 0.8;
  drift.noise_floor_scale = 1.5;
  spec.events = {
      DriftTo(drift),
      ClassArrival({Activity::kRun}, 40),
  };
  spec.thresholds.min_final_average_accuracy = 0.70;
  spec.thresholds.min_average_incremental_accuracy = 0.70;
  spec.thresholds.max_forgetting = 0.25;
  return spec;
}

// 15% of the "running" recordings actually captured some old activity.
ScenarioSpec LabelNoiseSpec() {
  ScenarioSpec spec = BaseSpec(
      "label_noise", 13,
      {Activity::kDrive, Activity::kEscooter, Activity::kStill,
       Activity::kWalk});
  spec.events = {
      LabelNoise(0.15),
      ClassArrival({Activity::kRun}, 40),
  };
  spec.thresholds.min_final_average_accuracy = 0.70;
  spec.thresholds.min_average_incremental_accuracy = 0.70;
  spec.thresholds.max_forgetting = 0.30;
  return spec;
}

// Interleaving: an old class is re-recorded between two arrivals and its
// exemplars refreshed from the new recording.
ScenarioSpec ClassRevisitSpec() {
  ScenarioSpec spec = BaseSpec(
      "class_revisit", 14,
      {Activity::kDrive, Activity::kEscooter, Activity::kStill});
  spec.events = {
      ClassArrival({Activity::kWalk}, 40),
      Revisit({Activity::kDrive}, 40),
      ClassArrival({Activity::kRun}, 40),
  };
  spec.thresholds.min_final_average_accuracy = 0.70;
  spec.thresholds.min_average_incremental_accuracy = 0.70;
  spec.thresholds.max_forgetting = 0.30;
  return spec;
}

// One user's gait/placement distribution shifts; the device personalizes
// the prototypes from the user's own stream. The before/after accuracies
// land in the report extras and are asserted by the ctest.
ScenarioSpec UserShiftSpec() {
  ScenarioSpec spec = BaseSpec(
      "user_shift", 15,
      {Activity::kDrive, Activity::kEscooter, Activity::kStill,
       Activity::kWalk});
  spec.events = {
      ClassArrival({Activity::kRun}, 40),
      UserShift(/*user_id=*/7, /*severity=*/0.8,
                /*samples_per_class=*/24, /*adapt_rate=*/0.35),
  };
  spec.thresholds.min_final_average_accuracy = 0.70;
  spec.thresholds.min_average_incremental_accuracy = 0.70;
  spec.thresholds.max_forgetting = 0.25;
  return spec;
}

// A device lifetime in miniature: three increments interleaved with a
// mid-life recalibration, degraded labeling late in life, and accuracy
// checkpoints between updates.
ScenarioSpec LongHorizonSpec() {
  ScenarioSpec spec = BaseSpec(
      "long_horizon", 16, {Activity::kDrive, Activity::kStill});
  har::SensorDrift drift;
  drift.accel_offset[1] = 0.3;
  drift.gait_freq_scale = 1.08;
  drift.noise_floor_scale = 1.25;
  spec.events = {
      ClassArrival({Activity::kEscooter}, 40),
      Checkpoint(),
      DriftTo(drift),
      ClassArrival({Activity::kWalk}, 40),
      Checkpoint(),
      LabelNoise(0.1),
      ClassArrival({Activity::kRun}, 40),
      Checkpoint(),
  };
  spec.thresholds.min_final_average_accuracy = 0.65;
  spec.thresholds.min_average_incremental_accuracy = 0.70;
  spec.thresholds.max_forgetting = 0.40;
  return spec;
}

}  // namespace

std::vector<ScenarioSpec> AllScenarios() {
  return {ClassArrivalSpec(),  RecalibrationDriftSpec(), LabelNoiseSpec(),
          ClassRevisitSpec(),  UserShiftSpec(),          LongHorizonSpec()};
}

Result<ScenarioSpec> FindScenario(const std::string& name) {
  std::string known;
  for (ScenarioSpec& spec : AllScenarios()) {
    if (spec.name == name) return std::move(spec);
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  return Status::NotFound("no scenario named \"" + name +
                          "\" (known: " + known + ")");
}

}  // namespace scenario
}  // namespace pilote
