#ifndef PILOTE_SCENARIO_EVENT_H_
#define PILOTE_SCENARIO_EVENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "har/activity.h"
#include "har/sensor_simulator.h"

namespace pilote {
namespace scenario {

// One scripted step of a long-horizon continual-learning stream. A
// scenario is a seeded sequence of these events replayed against a fresh
// edge learner (see scenario.h); the grammar covers the situations the
// paper's edge deployment meets over a device lifetime.
enum class EventKind {
  // New classes arrive and are integrated with LearnNewClasses. Every
  // arrival is a task boundary: the runner records one full row of the
  // task-accuracy matrix after the update.
  kClassArrival,
  // The sensor stack drifts (recalibration offsets, gait shift, noise
  // floor): all subsequently generated windows come from the drifted
  // simulator. Sticky until the next kDrift event; an identity
  // SensorDrift restores the nominal stream.
  kDrift,
  // Sets the label-noise level: each subsequent new-class row is, with
  // this probability, a contaminated recording (the window actually
  // captures a random already-known activity but keeps the new label).
  // Sticky until the next kLabelNoise event.
  kLabelNoise,
  // Fresh recordings of already-known classes re-enter the stream and
  // replace their support-set exemplars (ApplySupportSetUpdate). Not a
  // task boundary; records a `revisit<k>_old_acc` extra.
  kRevisit,
  // One user's device distribution shifts (SensorDrift::UserProfile) and
  // the learner personalizes via AdaptPrototype on the user's unlabeled
  // stream. Records `user<id>_acc_before_adapt` / `_after_adapt` extras
  // on a drifted eval draw; the pre-event drift is restored afterwards.
  kUserShift,
  // Mid-stream accuracy probe over the eval sets of every task seen so
  // far; records a `checkpoint<k>_seen_acc` extra. Not a task boundary.
  kCheckpoint,
};

struct ScenarioEvent {
  EventKind kind = EventKind::kCheckpoint;
  // kClassArrival / kRevisit: the classes; kUserShift uses every class
  // known at event time instead.
  std::vector<har::Activity> activities;
  // Rows generated per class (arrival, revisit, user-shift adapt/eval).
  int64_t samples_per_class = 0;
  har::SensorDrift drift;     // kDrift
  double label_noise = 0.0;   // kLabelNoise
  uint64_t user_id = 0;       // kUserShift
  double severity = 0.0;      // kUserShift: UserProfile severity
  double adapt_rate = 0.0;    // kUserShift: AdaptPrototype rate
};

inline ScenarioEvent ClassArrival(std::vector<har::Activity> activities,
                                  int64_t samples_per_class) {
  ScenarioEvent event;
  event.kind = EventKind::kClassArrival;
  event.activities = std::move(activities);
  event.samples_per_class = samples_per_class;
  return event;
}

inline ScenarioEvent DriftTo(const har::SensorDrift& drift) {
  ScenarioEvent event;
  event.kind = EventKind::kDrift;
  event.drift = drift;
  return event;
}

inline ScenarioEvent LabelNoise(double probability) {
  ScenarioEvent event;
  event.kind = EventKind::kLabelNoise;
  event.label_noise = probability;
  return event;
}

inline ScenarioEvent Revisit(std::vector<har::Activity> activities,
                             int64_t samples_per_class) {
  ScenarioEvent event;
  event.kind = EventKind::kRevisit;
  event.activities = std::move(activities);
  event.samples_per_class = samples_per_class;
  return event;
}

inline ScenarioEvent UserShift(uint64_t user_id, double severity,
                               int64_t samples_per_class,
                               double adapt_rate) {
  ScenarioEvent event;
  event.kind = EventKind::kUserShift;
  event.user_id = user_id;
  event.severity = severity;
  event.samples_per_class = samples_per_class;
  event.adapt_rate = adapt_rate;
  return event;
}

inline ScenarioEvent Checkpoint() {
  ScenarioEvent event;
  event.kind = EventKind::kCheckpoint;
  return event;
}

}  // namespace scenario
}  // namespace pilote

#endif  // PILOTE_SCENARIO_EVENT_H_
