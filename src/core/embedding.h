#ifndef PILOTE_CORE_EMBEDDING_H_
#define PILOTE_CORE_EMBEDDING_H_

#include "nn/module.h"
#include "tensor/tensor.h"

namespace pilote {
namespace core {

// Inference-mode embedding of a feature batch [n, in] -> [n, d]: switches
// the model to eval (running batch-norm statistics), runs a gradient-free
// forward pass, and restores the previous mode.
Tensor Embed(nn::Module& model, const Tensor& features);

// Embeds rows in chunks of `batch_size` to bound peak memory on large sets.
Tensor EmbedBatched(nn::Module& model, const Tensor& features,
                    int64_t batch_size = 512);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_EMBEDDING_H_
