#ifndef PILOTE_CORE_SUPPORT_SET_H_
#define PILOTE_CORE_SUPPORT_SET_H_

#include <map>
#include <vector>

#include "data/dataset.h"
#include "serialize/quantize.h"
#include "tensor/tensor.h"

namespace pilote {
namespace core {

// The on-device exemplar cache P = (P^1, ..., P^t): per-class feature rows
// kept in herding order (so trimming keeps the most representative prefix).
// Raw features — not embeddings — are stored because the model keeps
// evolving on the edge and prototypes must be re-embedded after updates.
class SupportSet {
 public:
  SupportSet() = default;

  // Replaces the exemplars of `label`. Rows should already be in selection
  // (herding) order.
  void SetClassExemplars(int label, Tensor features);

  bool HasClass(int label) const { return exemplars_.count(label) > 0; }
  const Tensor& ClassExemplars(int label) const;
  std::vector<int> Classes() const;
  int64_t NumClasses() const { return static_cast<int64_t>(exemplars_.size()); }
  int64_t CountForClass(int label) const;
  int64_t TotalExemplars() const;

  // Trims every class to at most `per_class` exemplars (keeps the prefix).
  void TrimPerClass(int64_t per_class);
  // Enforces a total cache budget of K exemplars: per Algo 1 line 1 each
  // class keeps m = K / num_classes.
  void EnforceCacheSize(int64_t cache_size);

  // Flattens the cache into one labeled dataset (training input D_0).
  data::Dataset ToDataset() const;

  // Device storage footprint of the exemplar payload under a compression
  // mode (float32 / float16 / int8).
  int64_t StorageBytes(serialize::QuantMode mode) const;

  // Round-trips every class through quantization, modeling a cache that is
  // physically stored compressed (lossy for fp16/int8).
  SupportSet QuantizeRoundTrip(serialize::QuantMode mode) const;

 private:
  std::map<int, Tensor> exemplars_;  // label -> [m_label, d]
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_SUPPORT_SET_H_
