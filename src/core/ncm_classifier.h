#ifndef PILOTE_CORE_NCM_CLASSIFIER_H_
#define PILOTE_CORE_NCM_CLASSIFIER_H_

#include <vector>

#include "common/hot_path.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace pilote {

namespace exec {
class PlanBuilder;
struct ValueRef;
}  // namespace exec

namespace core {

// Distance used between an embedding and a prototype.
enum class NcmDistance {
  kSquaredEuclidean,  // the paper's Eq. 1
  kCosine,            // 1 - cos(x, mu); scale-invariant alternative
};

// Nearest-class-mean classifier over class prototypes (paper Eq. 1):
//   y* = argmin_y dist(phi(x), mu_y),  mu_y = mean of class-y exemplar
// embeddings. Works purely in the embedding space; the caller supplies the
// embeddings (see core::Embed).
class NcmClassifier {
 public:
  explicit NcmClassifier(NcmDistance distance = NcmDistance::kSquaredEuclidean)
      : distance_(distance) {}

  // Registers (or replaces) the prototype of `label`.
  void SetPrototype(int label, Tensor prototype);

  // Computes mu_y as the mean of `embeddings` rows and registers it.
  void SetPrototypeFromEmbeddings(int label, const Tensor& embeddings);

  void Clear();

  bool HasPrototype(int label) const;
  const Tensor& prototype(int label) const;
  // Generation-checked view of a prototype's elements (common/span.h):
  // pointer+size in release; in debug, dereferencing after the prototype
  // is replaced (SetPrototype) or the support set reshuffles is
  // CHECK-fatal instead of silently reading a stale mean.
  ConstSpan<float> prototype_view(int label) const;
  // The stacked [k, d] prototype matrix row for the i-th label of
  // Labels(), straight from the predict-path cache.
  ConstSpan<float> prototype_row_view(int index) const;
  // Labels in ascending order.
  std::vector<int> Labels() const;
  int64_t NumClasses() const { return static_cast<int64_t>(labels_.size()); }
  int64_t embedding_dim() const;

  // Nearest-prototype label per row of `embeddings` [n, d].
  PILOTE_HOT_PATH std::vector<int> Predict(const Tensor& embeddings) const;

  // Distance of each row to each prototype under the configured metric,
  // columns ordered as Labels() -> [n, k].
  PILOTE_HOT_PATH Tensor DistanceMatrix(const Tensor& embeddings) const;

  NcmDistance distance() const { return distance_; }

  // Records the classify tail (distances + argmin over Labels()) onto a
  // compiled inference plan, reading the cached prototype matrix and norms
  // so the plan is bit-identical to Predict(). Returns kFailedPrecondition
  // with no prototypes and kUnimplemented for the cosine metric (callers
  // fall back to the eager path).
  Status CapturePredict(exec::PlanBuilder& plan,
                        exec::ValueRef embeddings) const;

  // Bytes needed to store the prototypes (float32).
  int64_t StorageBytes() const;

 private:
  int IndexOf(int label) const;
  // Refreshes the stacked prototype matrix and its row norms after a
  // prototype mutation.
  void RebuildCache();

  NcmDistance distance_ = NcmDistance::kSquaredEuclidean;
  std::vector<int> labels_;          // sorted
  std::vector<Tensor> prototypes_;   // aligned with labels_
  // Prototypes stacked into one [k, d] matrix plus their squared row
  // norms, rebuilt on every prototype mutation (SetPrototype / Clear) so
  // the predict path neither allocates prototype temporaries nor redoes
  // the k*d norm reduction per call. The cached norms are the exact
  // RowSquaredNorm output, keeping distances bit-identical.
  Tensor proto_matrix_;
  Tensor proto_sq_norms_;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_NCM_CLASSIFIER_H_
