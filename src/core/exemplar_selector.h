#ifndef PILOTE_CORE_EXEMPLAR_SELECTOR_H_
#define PILOTE_CORE_EXEMPLAR_SELECTOR_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace pilote {
namespace core {

// How class exemplars are chosen for the edge support set (the two
// strategies compared in the paper's Figure 6).
enum class SelectionStrategy {
  // Algo 1 lines 5-6 (iCaRL-style herding): greedily pick the sample whose
  // inclusion keeps the running exemplar mean closest to the class
  // prototype. The selection is ordered: any prefix of the result is itself
  // the best herding subset, so trimming the support set never reselects.
  kRepresentative,
  // Uniform random subset.
  kRandom,
};

const char* SelectionStrategyName(SelectionStrategy strategy);

// Selects `count` row indices of `class_features` (all rows share one
// class). For kRepresentative, `model` embeds the rows; for kRandom the
// model is unused. count is clamped to the number of rows.
std::vector<int64_t> SelectExemplars(nn::Module& model,
                                     const Tensor& class_features,
                                     int64_t count,
                                     SelectionStrategy strategy, Rng& rng);

// Herding over precomputed embeddings [n, d] (exposed for testing and for
// callers that already embedded the rows).
std::vector<int64_t> HerdingSelect(const Tensor& embeddings, int64_t count);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_EXEMPLAR_SELECTOR_H_
