#ifndef PILOTE_CORE_STREAMING_CLASSIFIER_H_
#define PILOTE_CORE_STREAMING_CLASSIFIER_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/hot_path.h"
#include "core/edge_learner.h"
#include "core/vote_ring.h"
#include "har/preprocessing.h"
#include "har/window_assembler.h"

namespace pilote {
namespace core {

// Majority label over the trailing window of raw labels; ties break toward
// the most recent label. Reference implementation of the vote semantics:
// the hot paths (StreamingClassifier and the serving layer's sessions) use
// the allocation-free core::VoteRing, whose agreement with this function
// is pinned by test so the smoothing semantics cannot diverge. CHECKs
// against an empty history.
int MajorityVoteLabel(const std::deque<int>& recent);

// On-device streaming inference: consumes the raw sensor stream sample by
// sample, runs the paper's preprocessing (denoise + 1 s segmentation +
// feature extraction), classifies every completed window and smooths the
// prediction with a majority vote over the last `vote_window` windows
// (activities change on multi-second timescales, so a vote suppresses
// isolated misclassifications — the "post-processing" the paper's Sec 2.3
// alludes to).
class StreamingClassifier {
 public:
  // One config source for all streaming consumers: the same struct lives in
  // PiloteConfig::streaming, so serving sessions and standalone classifiers
  // cannot drift apart. Validate with core::ValidateStreamingOptions.
  using Options = StreamingOptions;

  // `learner` must outlive the classifier; its current model/prototypes
  // are used for every window (so incremental updates apply immediately).
  StreamingClassifier(const EdgeLearner* learner, const Options& options);

  // Feeds one sensor sample [har::kNumChannels]. Returns a prediction
  // when this sample completes a window, std::nullopt otherwise.
  PILOTE_HOT_PATH std::optional<int> PushSample(const Tensor& sample);

  // Feeds a [t, kNumChannels] block; returns one label per completed
  // window, in order.
  std::vector<int> PushBlock(const Tensor& samples);

  // Most recent smoothed prediction (NotFound before the first window).
  Result<int> CurrentActivity() const;

  // Raw (unsmoothed) per-window labels seen so far.
  const std::vector<int>& window_history() const { return window_history_; }
  int64_t windows_classified() const {
    return static_cast<int64_t>(window_history_.size());
  }

 private:
  int ClassifyWindow();
  int MajorityVote() const;

  const EdgeLearner* learner_;
  Options options_;
  har::WindowAssembler assembler_;  // preallocated current-window buffer
  VoteRing recent_;                 // last vote_window raw labels
  Tensor features_;                 // [1, kNumFeatures] scratch, reused
  std::vector<int> window_history_;
  std::optional<int> current_;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_STREAMING_CLASSIFIER_H_
