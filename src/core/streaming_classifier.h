#ifndef PILOTE_CORE_STREAMING_CLASSIFIER_H_
#define PILOTE_CORE_STREAMING_CLASSIFIER_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/edge_learner.h"
#include "har/preprocessing.h"

namespace pilote {
namespace core {

// On-device streaming inference: consumes the raw sensor stream sample by
// sample, runs the paper's preprocessing (denoise + 1 s segmentation +
// feature extraction), classifies every completed window and smooths the
// prediction with a majority vote over the last `vote_window` windows
// (activities change on multi-second timescales, so a vote suppresses
// isolated misclassifications — the "post-processing" the paper's Sec 2.3
// alludes to).
class StreamingClassifier {
 public:
  struct Options {
    int window_length = har::kWindowLength;
    int denoise_half_width = 1;
    int vote_window = 3;  // majority vote span; 1 disables smoothing
  };

  // `learner` must outlive the classifier; its current model/prototypes
  // are used for every window (so incremental updates apply immediately).
  StreamingClassifier(EdgeLearner* learner, const Options& options);

  // Feeds one sensor sample [har::kNumChannels]. Returns a prediction
  // when this sample completes a window, std::nullopt otherwise.
  std::optional<int> PushSample(const Tensor& sample);

  // Feeds a [t, kNumChannels] block; returns one label per completed
  // window, in order.
  std::vector<int> PushBlock(const Tensor& samples);

  // Most recent smoothed prediction (NotFound before the first window).
  Result<int> CurrentActivity() const;

  // Raw (unsmoothed) per-window labels seen so far.
  const std::vector<int>& window_history() const { return window_history_; }
  int64_t windows_classified() const {
    return static_cast<int64_t>(window_history_.size());
  }

 private:
  int ClassifyWindow();
  int MajorityVote() const;

  EdgeLearner* learner_;
  Options options_;
  std::vector<Tensor> buffer_;           // samples of the current window
  std::deque<int> recent_;               // last vote_window raw labels
  std::vector<int> window_history_;
  std::optional<int> current_;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_STREAMING_CLASSIFIER_H_
