#include "core/embedding.h"

#include <algorithm>
#include <vector>

#include "autograd/variable.h"
#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

Tensor Embed(nn::Module& model, const Tensor& features) {
  PILOTE_CHECK_EQ(features.rank(), 2);
  // Only touch the mode flag when the model is actually in training mode:
  // an eval-mode forward is then a pure read, so concurrent inference
  // (the serving layer's shared-lock predict path) stays race-free.
  const bool was_training = model.training();
  if (was_training) model.SetTraining(false);
  autograd::Variable out =
      model.Forward(autograd::Variable::Constant(features));
  if (was_training) model.SetTraining(true);
  return out.value();
}

// hotpath-ok: autograd forward allocates per-op tape nodes; this is the
// eager fallback — steady-state serving replays the compiled plan
// (src/exec/), which removes them.
Tensor EmbedBatched(nn::Module& model, const Tensor& features,
                    int64_t batch_size) {
  PILOTE_CHECK_GT(batch_size, 0);
  const int64_t n = features.rows();
  if (n <= batch_size) return Embed(model, features);
  std::vector<Tensor> chunks;
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(n, begin + batch_size);
    chunks.push_back(Embed(model, SliceRows(features, begin, end)));
  }
  return ConcatRows(chunks);
}

}  // namespace core
}  // namespace pilote
