#ifndef PILOTE_CORE_EDGE_LEARNER_H_
#define PILOTE_CORE_EDGE_LEARNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/hot_path.h"
#include "core/cloud.h"
#include "core/config.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "data/dataset.h"
#include "exec/executor.h"

namespace pilote {
namespace core {

// Base of the three edge-side learners the paper compares (Sec 6.1.3).
// Construction deserializes the cloud artifact (modeling the transfer),
// rebuilds the class prototypes and is immediately ready for inference.
// LearnNewClasses integrates a batch of new-class samples; each subclass
// implements the paper's corresponding update strategy.
//
// Thread-safety contract (what the serving layer's shard locks enforce
// through the type system): every const member is a pure read and safe to
// call concurrently with other const members; every mutation goes through
// a named non-const operation (LearnNewClasses, ApplySupportSetUpdate,
// EnforceSupportBudget, AdaptPrototype, RebuildPrototypes) that requires
// exclusive access.
// (The compiled-plan executor's scratch arena is the one piece of state a
// const Predict touches; its lock-free single-claimant gate keeps
// concurrent const calls safe — a loser of the claim race falls back to
// the eager path, which is pure.)
//
// Inference runs through a compiled plan (exec::InferencePlan) captured
// from the scaler + backbone + NCM tail after every completed mutation;
// the plan is version-tagged with model_version() and rebuilt
// transactionally (swap-on-commit: a failed capture leaves no plan and
// predictions fall back to the eager tape, never to a stale plan).
class EdgeLearner {
 public:
  EdgeLearner(const CloudArtifact& artifact, const PiloteConfig& config);
  // Adopts an already-deserialized backbone (the Result-returning factory
  // path, where payload corruption must surface as a Status, not a CHECK).
  // `model` must match `artifact.backbone_config`.
  EdgeLearner(std::unique_ptr<nn::MlpBackbone> model,
              const CloudArtifact& artifact, const PiloteConfig& config);
  virtual ~EdgeLearner() = default;

  EdgeLearner(const EdgeLearner&) = delete;
  EdgeLearner& operator=(const EdgeLearner&) = delete;

  // Integrates `d_new` (raw feature rows of previously unseen classes).
  // The rows of `d_new` are the entire new-class data available at the
  // extreme edge (D_n of Algo 1); the caller controls its size (Figure 7
  // sweeps it). Returns the training report (empty for the pre-trained
  // baseline, which does not train).
  //
  // Transactional: on any non-OK return — an empty or already-known input
  // (kInvalidArgument) or an injected/real mid-update fault — the learner
  // is rolled back to its pre-call state (model weights, support set,
  // prototypes, known classes and RNG stream are all bit-identical), so a
  // failed update can simply be retried. Strategy-specific work lives in
  // DoLearnNewClasses.
  // Failpoints: "core/learn/begin", "core/learn/mid", "core/learn/commit".
  Result<TrainReport> LearnNewClasses(const data::Dataset& d_new);

  // NCM inference on raw feature rows.
  PILOTE_HOT_PATH std::vector<int> Predict(const Tensor& raw_features) const;
  // Batched inference entry point for the serving layer: identical labels
  // to Predict (the embedding and NCM stages are row-independent), but
  // skips the per-row latency bookkeeping so one call costs one scaler
  // pass, one backbone forward (a single GEMM chain for all K rows) and
  // one NCM pass.
  PILOTE_HOT_PATH std::vector<int> PredictBatch(const Tensor& raw_features) const;
  // PredictBatch pinned to the eager tape (scaler pass + autograd forward +
  // cached NCM pass), bypassing the compiled plan. Labels are bit-identical
  // to PredictBatch; exposed so profiling and tests can compare the two
  // executions side by side.
  std::vector<int> PredictBatchEager(const Tensor& raw_features) const;
  // Accuracy on a raw-feature test set.
  double Evaluate(const data::Dataset& raw_test) const;

  // Embeds raw feature rows (scaling + model forward).
  Tensor EmbedRaw(const Tensor& raw_features) const;

  const NcmClassifier& classifier() const { return classifier_; }
  const SupportSet& support() const { return support_; }
  const nn::MlpBackbone& model() const { return *model_; }
  const std::vector<int>& known_classes() const { return known_classes_; }
  const PiloteConfig& config() const { return config_; }

  // Model footprint, exposed so profiling never needs mutable model access.
  int64_t ModelParameters() const;
  // Parameters + buffers, float32.
  int64_t ModelStateBytes() const;

  // Incremented on every completed mutation (prototype rebuild). Lets the
  // serving layer detect that a learner changed between two batches.
  int64_t model_version() const {
    return model_version_.load(std::memory_order_relaxed);
  }

  // Version the live compiled plan was captured at, or -1 when inference
  // is running eagerly (capture disabled, unsupported metric, or no
  // classes yet). Equals model_version() whenever a plan is live.
  int64_t plan_version() const {
    return plan_version_.load(std::memory_order_acquire);
  }
  // The live compiled plan, or nullptr when predictions run eagerly.
  // Shared so tests and profilers can replay it on their own executor.
  std::shared_ptr<const exec::InferencePlan> inference_plan() const {
    return plan_;
  }
  // Toggles compiled inference (on by default). Disabling drops the plan
  // and pins every Predict to the eager path; re-enabling recaptures.
  void SetCompiledInferenceEnabled(bool enabled);

  // Replaces the support set (e.g. with a quantize round-tripped cache
  // modeling compressed storage) and refreshes the prototypes. The new
  // classifier is built aside and swapped in only on success: a rejected
  // update (wrong exemplar width, empty class, injected fault) leaves the
  // live support set and prototypes untouched.
  // Failpoints: "core/support_update/begin", "core/support_update/embed".
  Status ApplySupportSetUpdate(SupportSet support);

  // Enforces a total cache budget of `cache_size` exemplars (Algo 1 line 1:
  // m = K / num_classes per class) and refreshes the prototypes.
  void EnforceSupportBudget(int64_t cache_size);

  // On-device personalization (lifelong prototypical adaptation in the
  // spirit of arXiv:2203.05692): blends the prototype of `label` toward
  // the mean embedding of the caller's raw rows,
  //   mu <- (1 - rate) * mu + rate * mean(phi(rows)),
  // leaving the support set and model weights untouched — a fleet-shared
  // artifact is nudged toward one user's distribution, and
  // RebuildPrototypes() (or any model update) re-derives the shared
  // prototypes, undoing the personalization. A named mutation like
  // LearnNewClasses: requires exclusive access, bumps model_version() and
  // recaptures the compiled plan. kInvalidArgument: unknown label, empty
  // rows, feature-width mismatch, or rate outside (0, 1].
  Status AdaptPrototype(int label, const Tensor& raw_features, double rate);

  // Re-embeds every support-set class and refreshes all prototypes
  // (required after any model update).
  void RebuildPrototypes();

 protected:
  // Strategy body, called by LearnNewClasses with the already-scaled new
  // data after validation and state snapshotting. Implementations mutate
  // freely; the wrapper restores the snapshot if they return non-OK.
  virtual Result<TrainReport> DoLearnNewClasses(
      const data::Dataset& scaled_new) = 0;

  // Adds new-class rows to the support set: keeps up to
  // config.exemplars_per_class rows per class, chosen uniformly at random
  // as in the paper ("enriches the support set with random new-class
  // data"), and registers the classes as known.
  void EnrichSupportSet(const data::Dataset& scaled_new);

  // Scales a raw dataset with the cloud scaler.
  data::Dataset Scale(const data::Dataset& raw) const;

  PiloteConfig config_;
  data::StandardScaler scaler_;
  std::unique_ptr<nn::MlpBackbone> model_;
  SupportSet support_;
  NcmClassifier classifier_;
  std::vector<int> known_classes_;
  Rng rng_;

 private:
  // Deep copy of every member a DoLearnNewClasses body may mutate.
  struct Snapshot {
    std::unique_ptr<nn::MlpBackbone> model;
    SupportSet support;
    NcmClassifier classifier;
    std::vector<int> known_classes;
    Rng rng;
  };
  Snapshot TakeSnapshot() const;
  void RestoreSnapshot(Snapshot snapshot);

  // Recaptures the compiled plan from the current scaler + model +
  // classifier. Called at the end of every completed mutation; any capture
  // failure leaves plan_ null (eager fallback) rather than a stale plan.
  void RebuildInferencePlan();
  // Runs the compiled plan if one is live and the arena claim succeeds.
  PILOTE_HOT_PATH bool TryPredictCompiled(const Tensor& raw_features,
                                          std::vector<int>* labels) const;

  std::atomic<int64_t> model_version_{0};
  bool compiled_inference_enabled_ = true;
  std::shared_ptr<const exec::InferencePlan> plan_;
  std::unique_ptr<exec::Executor> plan_executor_;
  std::atomic<int64_t> plan_version_{-1};
};

// Baseline 1 (Sec 6.1.3): the pre-trained model is used as-is; new classes
// only get prototypes from their (random) exemplars. No edge training.
class PretrainedLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;

 protected:
  Result<TrainReport> DoLearnNewClasses(
      const data::Dataset& scaled_new) override;
};

// Baseline 2 (Sec 6.1.3, Table 2's "without considering the catastrophic
// forgetting problem"): the pre-trained model is fine-tuned with the same
// incremental contrastive training as PILOTE, but with every forgetting
// counter-measure removed (no distillation, free batch-norm statistics,
// no anchoring of the old pair side).
class RetrainedLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;

 protected:
  Result<TrainReport> DoLearnNewClasses(
      const data::Dataset& scaled_new) override;
};

// PILOTE (Algo 1, edge part): joint distillation + contrastive objective
// over the reduced pair set (old x new cross pairs plus new x new pairs).
class PiloteLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;

 protected:
  Result<TrainReport> DoLearnNewClasses(
      const data::Dataset& scaled_new) override;
};

// Extra continual-learning baseline from the paper's related work
// (Prabhu et al., ECCV 2020): GDumb keeps a greedily balanced exemplar
// cache and, whenever queried, retrains the model FROM SCRATCH on the
// cache alone. It questions whether incremental methods beat the dumb
// strategy; here it inherits the siamese/NCM pipeline so the comparison
// is apples-to-apples.
class GdumbLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;

 protected:
  Result<TrainReport> DoLearnNewClasses(
      const data::Dataset& scaled_new) override;
};

// Validates that `artifact` can seed an edge learner under `config`:
// non-empty support set, exemplar width / backbone input agreement, and
// artifact/config backbone-dimension agreement. Returns kInvalidArgument
// describing the first violation.
Status ValidateArtifact(const CloudArtifact& artifact,
                        const PiloteConfig& config);

// Factory covering the strategies by name ("pretrained", "retrained",
// "pilote", "gdumb"). Returns kInvalidArgument for unknown names or an
// artifact that fails ValidateArtifact, and propagates the deserialization
// Status for corrupt model payloads — the device-facing entry point never
// aborts on a bad cloud transfer.
Result<std::unique_ptr<EdgeLearner>> MakeEdgeLearner(
    const std::string& strategy, const CloudArtifact& artifact,
    const PiloteConfig& config);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_EDGE_LEARNER_H_
