#ifndef PILOTE_CORE_EDGE_LEARNER_H_
#define PILOTE_CORE_EDGE_LEARNER_H_

#include <memory>
#include <vector>

#include "core/cloud.h"
#include "core/config.h"
#include "core/ncm_classifier.h"
#include "core/support_set.h"
#include "data/dataset.h"

namespace pilote {
namespace core {

// Base of the three edge-side learners the paper compares (Sec 6.1.3).
// Construction deserializes the cloud artifact (modeling the transfer),
// rebuilds the class prototypes and is immediately ready for inference.
// LearnNewClasses integrates a batch of new-class samples; each subclass
// implements the paper's corresponding update strategy.
class EdgeLearner {
 public:
  EdgeLearner(const CloudArtifact& artifact, const PiloteConfig& config);
  virtual ~EdgeLearner() = default;

  EdgeLearner(const EdgeLearner&) = delete;
  EdgeLearner& operator=(const EdgeLearner&) = delete;

  // Integrates `d_new` (raw feature rows of previously unseen classes).
  // The rows of `d_new` are the entire new-class data available at the
  // extreme edge (D_n of Algo 1); the caller controls its size (Figure 7
  // sweeps it). Returns the training report (empty for the pre-trained
  // baseline, which does not train).
  virtual TrainReport LearnNewClasses(const data::Dataset& d_new) = 0;

  // NCM inference on raw feature rows.
  std::vector<int> Predict(const Tensor& raw_features);
  // Accuracy on a raw-feature test set.
  double Evaluate(const data::Dataset& raw_test);

  // Embeds raw feature rows (scaling + model forward).
  Tensor EmbedRaw(const Tensor& raw_features);

  const NcmClassifier& classifier() const { return classifier_; }
  const SupportSet& support() const { return support_; }
  SupportSet& mutable_support() { return support_; }
  nn::MlpBackbone& model() { return *model_; }
  const std::vector<int>& known_classes() const { return known_classes_; }
  const PiloteConfig& config() const { return config_; }

  // Re-embeds every support-set class and refreshes all prototypes
  // (required after any model update).
  void RebuildPrototypes();

 protected:
  // Adds new-class rows to the support set: keeps up to
  // config.exemplars_per_class rows per class, chosen uniformly at random
  // as in the paper ("enriches the support set with random new-class
  // data"), and registers the classes as known.
  void EnrichSupportSet(const data::Dataset& scaled_new);

  // Scales a raw dataset with the cloud scaler.
  data::Dataset Scale(const data::Dataset& raw) const;

  PiloteConfig config_;
  data::StandardScaler scaler_;
  std::unique_ptr<nn::MlpBackbone> model_;
  SupportSet support_;
  NcmClassifier classifier_;
  std::vector<int> known_classes_;
  Rng rng_;
};

// Baseline 1 (Sec 6.1.3): the pre-trained model is used as-is; new classes
// only get prototypes from their (random) exemplars. No edge training.
class PretrainedLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;
  TrainReport LearnNewClasses(const data::Dataset& d_new) override;
};

// Baseline 2 (Sec 6.1.3, Table 2's "without considering the catastrophic
// forgetting problem"): the pre-trained model is fine-tuned with the same
// incremental contrastive training as PILOTE, but with every forgetting
// counter-measure removed (no distillation, free batch-norm statistics,
// no anchoring of the old pair side).
class RetrainedLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;
  TrainReport LearnNewClasses(const data::Dataset& d_new) override;
};

// PILOTE (Algo 1, edge part): joint distillation + contrastive objective
// over the reduced pair set (old x new cross pairs plus new x new pairs).
class PiloteLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;
  TrainReport LearnNewClasses(const data::Dataset& d_new) override;
};

// Extra continual-learning baseline from the paper's related work
// (Prabhu et al., ECCV 2020): GDumb keeps a greedily balanced exemplar
// cache and, whenever queried, retrains the model FROM SCRATCH on the
// cache alone. It questions whether incremental methods beat the dumb
// strategy; here it inherits the siamese/NCM pipeline so the comparison
// is apples-to-apples.
class GdumbLearner : public EdgeLearner {
 public:
  using EdgeLearner::EdgeLearner;
  TrainReport LearnNewClasses(const data::Dataset& d_new) override;
};

// Factory covering the strategies by name ("pretrained", "retrained",
// "pilote", "gdumb"); CHECK-fails on unknown names.
std::unique_ptr<EdgeLearner> MakeEdgeLearner(const std::string& strategy,
                                             const CloudArtifact& artifact,
                                             const PiloteConfig& config);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_EDGE_LEARNER_H_
