#include "core/edge_profile.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "common/alloc_tracker.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "serialize/quantize.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

std::string EdgeProfileReport::ToString() const {
  std::ostringstream os;
  os << "model: " << model_parameters << " params (" << model_bytes
     << " B)\n"
     << "support set: " << support_exemplars << " exemplars ("
     << support_bytes_fp32 << " B fp32, " << support_bytes_fp16
     << " B fp16, " << support_bytes_int8 << " B int8)\n"
     << "prototypes: " << prototype_bytes << " B\n"
     << "inference: " << inference_ms_per_window << " ms/window (p50 "
     << inference_p50_ms << ", p95 " << inference_p95_ms << ", p99 "
     << inference_p99_ms << ", p999 " << inference_p999_ms << "), "
     << inference_allocs_per_window
     << " allocs/window\n"
     << "exec: ";
  if (exec_plan_live) {
    os << "plan " << exec_plan_ms_per_window << " ms/window ("
       << exec_plan_allocs_per_window << " allocs) vs eager "
       << exec_eager_ms_per_window << " ms/window ("
       << exec_eager_allocs_per_window << " allocs)\n";
  } else {
    os << "no live plan (eager " << exec_eager_ms_per_window
       << " ms/window, " << exec_eager_allocs_per_window << " allocs)\n";
  }
  os << "training: ";
  if (std::isnan(train_epoch_seconds)) {
    os << "n/a";
  } else {
    os << train_epoch_seconds << " s/epoch";
  }
  return os.str();
}

EdgeProfileReport ProfileEdge(const EdgeLearner& learner,
                              const Tensor& probe_features,
                              const TrainReport* last_report) {
  EdgeProfileReport report;

  report.model_parameters = learner.ModelParameters();
  report.model_bytes = learner.ModelStateBytes();

  const SupportSet& support = learner.support();
  report.support_exemplars = support.TotalExemplars();
  report.support_bytes_fp32 =
      support.StorageBytes(serialize::QuantMode::kFloat32);
  report.support_bytes_fp16 =
      support.StorageBytes(serialize::QuantMode::kFloat16);
  report.support_bytes_int8 =
      support.StorageBytes(serialize::QuantMode::kInt8);
  report.prototype_bytes = learner.classifier().StorageBytes();

  // End-to-end inference latency (scaling + embedding + NCM). Predict()
  // feeds the shared "core/inference_window_ms" histogram; probing row by
  // row makes each recorded sample a true single-window latency, and the
  // before/after snapshot delta isolates this probe from any earlier
  // recordings in the process.
  PILOTE_CHECK_GT(probe_features.rows(), 0);
  obs::ScopedEnable enable_metrics;
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "core/inference_window_ms");
  const obs::HistogramSnapshot before = latency.Snapshot();
  // The allocation count includes the probe-row gather — one small
  // constant per window, same as the serve ingest handing a feature row
  // to the batcher — so the figure matches the deployed steady state.
  alloc::ScopedTracking track_allocs;
  alloc::AllocationScope alloc_scope;
  for (int64_t r = 0; r < probe_features.rows(); ++r) {
    learner.Predict(GatherRows(probe_features, {r}));
  }
  report.inference_allocs_per_window =
      static_cast<double>(alloc_scope.count()) /
      static_cast<double>(probe_features.rows());
  const obs::HistogramSnapshot probe =
      obs::Delta(before, latency.Snapshot());
  report.inference_ms_per_window = probe.Mean();
  report.inference_p50_ms = probe.Percentile(0.50);
  report.inference_p95_ms = probe.Percentile(0.95);
  report.inference_p99_ms = probe.Percentile(0.99);
  report.inference_p999_ms = probe.Percentile(0.999);

  // Compiled-plan vs eager-tape execution over the same rows. The rows are
  // pre-gathered and both loops warm up first, so each timed region covers
  // execution only — no gather, no arena growth, no first-call buffers.
  const int64_t n_rows = probe_features.rows();
  std::vector<Tensor> rows;
  rows.reserve(static_cast<size_t>(n_rows));
  for (int64_t r = 0; r < n_rows; ++r) {
    rows.push_back(GatherRows(probe_features, {r}));
  }
  using MilliDouble = std::chrono::duration<double, std::milli>;
  {
    learner.PredictBatchEager(rows.front());  // warm-up
    alloc::AllocationScope eager_scope;
    const auto start = std::chrono::steady_clock::now();
    for (const Tensor& row : rows) learner.PredictBatchEager(row);
    const auto end = std::chrono::steady_clock::now();
    report.exec_eager_ms_per_window =
        MilliDouble(end - start).count() / static_cast<double>(n_rows);
    report.exec_eager_allocs_per_window =
        static_cast<double>(eager_scope.count()) /
        static_cast<double>(n_rows);
  }
  std::shared_ptr<const exec::InferencePlan> plan = learner.inference_plan();
  if (plan != nullptr) {
    report.exec_plan_live = true;
    exec::Executor executor(std::move(plan));
    std::vector<int> labels;
    executor.RunClassify(rows.front(), &labels);  // warm-up: arena, labels
    alloc::AllocationScope plan_scope;
    const auto start = std::chrono::steady_clock::now();
    for (const Tensor& row : rows) executor.RunClassify(row, &labels);
    const auto end = std::chrono::steady_clock::now();
    report.exec_plan_ms_per_window =
        MilliDouble(end - start).count() / static_cast<double>(n_rows);
    report.exec_plan_allocs_per_window =
        static_cast<double>(plan_scope.count()) /
        static_cast<double>(n_rows);
  }

  if (last_report != nullptr) {
    report.train_epoch_seconds = last_report->mean_epoch_seconds;
  }
  return report;
}

}  // namespace core
}  // namespace pilote
