#include "core/edge_profile.h"

#include <sstream>

#include "common/timer.h"
#include "serialize/quantize.h"

namespace pilote {
namespace core {

std::string EdgeProfileReport::ToString() const {
  std::ostringstream os;
  os << "model: " << model_parameters << " params (" << model_bytes
     << " B)\n"
     << "support set: " << support_exemplars << " exemplars ("
     << support_bytes_fp32 << " B fp32, " << support_bytes_fp16
     << " B fp16, " << support_bytes_int8 << " B int8)\n"
     << "prototypes: " << prototype_bytes << " B\n"
     << "inference: " << inference_ms_per_window << " ms/window\n"
     << "training: " << train_epoch_seconds << " s/epoch";
  return os.str();
}

EdgeProfileReport ProfileEdge(EdgeLearner& learner,
                              const Tensor& probe_features,
                              const TrainReport* last_report) {
  EdgeProfileReport report;

  nn::MlpBackbone& model = learner.model();
  report.model_parameters = model.NumParameters();
  int64_t state_elements = 0;
  for (const Tensor* tensor : model.StateTensors()) {
    state_elements += tensor->numel();
  }
  report.model_bytes = state_elements * static_cast<int64_t>(sizeof(float));

  const SupportSet& support = learner.support();
  report.support_exemplars = support.TotalExemplars();
  report.support_bytes_fp32 =
      support.StorageBytes(serialize::QuantMode::kFloat32);
  report.support_bytes_fp16 =
      support.StorageBytes(serialize::QuantMode::kFloat16);
  report.support_bytes_int8 =
      support.StorageBytes(serialize::QuantMode::kInt8);
  report.prototype_bytes = learner.classifier().StorageBytes();

  // Amortized end-to-end inference latency (scaling + embedding + NCM).
  PILOTE_CHECK_GT(probe_features.rows(), 0);
  WallTimer timer;
  std::vector<int> predictions = learner.Predict(probe_features);
  report.inference_ms_per_window =
      timer.ElapsedMillis() / static_cast<double>(probe_features.rows());

  if (last_report != nullptr) {
    report.train_epoch_seconds = last_report->mean_epoch_seconds;
  }
  return report;
}

}  // namespace core
}  // namespace pilote
