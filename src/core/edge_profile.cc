#include "core/edge_profile.h"

#include <cmath>
#include <sstream>

#include "common/alloc_tracker.h"
#include "obs/metrics.h"
#include "serialize/quantize.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

std::string EdgeProfileReport::ToString() const {
  std::ostringstream os;
  os << "model: " << model_parameters << " params (" << model_bytes
     << " B)\n"
     << "support set: " << support_exemplars << " exemplars ("
     << support_bytes_fp32 << " B fp32, " << support_bytes_fp16
     << " B fp16, " << support_bytes_int8 << " B int8)\n"
     << "prototypes: " << prototype_bytes << " B\n"
     << "inference: " << inference_ms_per_window << " ms/window (p50 "
     << inference_p50_ms << ", p95 " << inference_p95_ms << ", p99 "
     << inference_p99_ms << ", p999 " << inference_p999_ms << "), "
     << inference_allocs_per_window
     << " allocs/window\n"
     << "training: ";
  if (std::isnan(train_epoch_seconds)) {
    os << "n/a";
  } else {
    os << train_epoch_seconds << " s/epoch";
  }
  return os.str();
}

EdgeProfileReport ProfileEdge(const EdgeLearner& learner,
                              const Tensor& probe_features,
                              const TrainReport* last_report) {
  EdgeProfileReport report;

  report.model_parameters = learner.ModelParameters();
  report.model_bytes = learner.ModelStateBytes();

  const SupportSet& support = learner.support();
  report.support_exemplars = support.TotalExemplars();
  report.support_bytes_fp32 =
      support.StorageBytes(serialize::QuantMode::kFloat32);
  report.support_bytes_fp16 =
      support.StorageBytes(serialize::QuantMode::kFloat16);
  report.support_bytes_int8 =
      support.StorageBytes(serialize::QuantMode::kInt8);
  report.prototype_bytes = learner.classifier().StorageBytes();

  // End-to-end inference latency (scaling + embedding + NCM). Predict()
  // feeds the shared "core/inference_window_ms" histogram; probing row by
  // row makes each recorded sample a true single-window latency, and the
  // before/after snapshot delta isolates this probe from any earlier
  // recordings in the process.
  PILOTE_CHECK_GT(probe_features.rows(), 0);
  obs::ScopedEnable enable_metrics;
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "core/inference_window_ms");
  const obs::HistogramSnapshot before = latency.Snapshot();
  // The allocation count includes the probe-row gather — one small
  // constant per window, same as the serve ingest handing a feature row
  // to the batcher — so the figure matches the deployed steady state.
  alloc::ScopedTracking track_allocs;
  alloc::AllocationScope alloc_scope;
  for (int64_t r = 0; r < probe_features.rows(); ++r) {
    learner.Predict(GatherRows(probe_features, {r}));
  }
  report.inference_allocs_per_window =
      static_cast<double>(alloc_scope.count()) /
      static_cast<double>(probe_features.rows());
  const obs::HistogramSnapshot probe =
      obs::Delta(before, latency.Snapshot());
  report.inference_ms_per_window = probe.Mean();
  report.inference_p50_ms = probe.Percentile(0.50);
  report.inference_p95_ms = probe.Percentile(0.95);
  report.inference_p99_ms = probe.Percentile(0.99);
  report.inference_p999_ms = probe.Percentile(0.999);

  if (last_report != nullptr) {
    report.train_epoch_seconds = last_report->mean_epoch_seconds;
  }
  return report;
}

}  // namespace core
}  // namespace pilote
