#include "core/streaming_classifier.h"

#include <algorithm>

#include "common/timer.h"
#include "har/feature_extractor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

StreamingClassifier::StreamingClassifier(const EdgeLearner* learner,
                                         const Options& options)
    : learner_(learner), options_(options) {
  PILOTE_CHECK(learner != nullptr);
  Status valid = ValidateStreamingOptions(options);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  buffer_.reserve(static_cast<size_t>(options.window_length));
}

std::optional<int> StreamingClassifier::PushSample(const Tensor& sample) {
  PILOTE_CHECK_EQ(sample.rank(), 1);
  PILOTE_CHECK_EQ(sample.dim(0), har::kNumChannels);
  buffer_.push_back(sample.Reshape(Shape::Matrix(1, har::kNumChannels)));
  if (static_cast<int>(buffer_.size()) < options_.window_length) {
    return std::nullopt;
  }
  return ClassifyWindow();
}

std::vector<int> StreamingClassifier::PushBlock(const Tensor& samples) {
  PILOTE_CHECK_EQ(samples.rank(), 2);
  PILOTE_CHECK_EQ(samples.cols(), har::kNumChannels);
  std::vector<int> predictions;
  for (int64_t t = 0; t < samples.rows(); ++t) {
    std::optional<int> label = PushSample(RowAt(samples, t));
    if (label.has_value()) predictions.push_back(*label);
  }
  return predictions;
}

int StreamingClassifier::ClassifyWindow() {
  PILOTE_TRACE_SPAN("core/classify_window");
  WallTimer timer;
  Tensor window = ConcatRows(buffer_);
  buffer_.clear();
  window = har::DenoiseMovingAverage(window, options_.denoise_half_width);
  Tensor features = har::ExtractFeatures(window)
                        .Reshape(Shape::Matrix(1, har::kNumFeatures));
  const int raw = learner_->Predict(features).front();
  PILOTE_METRIC_COUNT("core/windows_classified", 1);
  PILOTE_METRIC_HISTOGRAM("core/stream_window_ms",
                          timer.ElapsedSeconds() * 1e3);

  window_history_.push_back(raw);
  recent_.push_back(raw);
  while (static_cast<int>(recent_.size()) > options_.vote_window) {
    recent_.pop_front();
  }
  current_ = MajorityVote();
  return *current_;
}

int MajorityVoteLabel(const std::deque<int>& recent) {
  PILOTE_CHECK(!recent.empty());
  std::map<int, int> counts;
  for (int label : recent) ++counts[label];
  // Ties break toward the most recent label.
  int best = recent.back();
  int best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count || (count == best_count && label == recent.back())) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

int StreamingClassifier::MajorityVote() const {
  return MajorityVoteLabel(recent_);
}

Result<int> StreamingClassifier::CurrentActivity() const {
  if (!current_.has_value()) {
    return Status::NotFound("no complete window classified yet");
  }
  return *current_;
}

}  // namespace core
}  // namespace pilote
