#include "core/streaming_classifier.h"

#include <algorithm>
#include <map>

#include "common/timer.h"
#include "har/feature_extractor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

namespace {

const StreamingOptions& Validated(const StreamingOptions& options) {
  Status valid = ValidateStreamingOptions(options);
  PILOTE_CHECK(valid.ok()) << valid.ToString();
  return options;
}

}  // namespace

StreamingClassifier::StreamingClassifier(const EdgeLearner* learner,
                                         const Options& options)
    : learner_(learner),
      options_(Validated(options)),
      assembler_(options_.window_length, options_.denoise_half_width),
      recent_(options_.vote_window) {
  PILOTE_CHECK(learner != nullptr);
}

std::optional<int> StreamingClassifier::PushSample(const Tensor& sample) {
  if (!assembler_.Append(sample, &features_)) return std::nullopt;
  return ClassifyWindow();
}

std::vector<int> StreamingClassifier::PushBlock(const Tensor& samples) {
  PILOTE_CHECK_EQ(samples.rank(), 2);
  PILOTE_CHECK_EQ(samples.cols(), har::kNumChannels);
  std::vector<int> predictions;
  for (int64_t t = 0; t < samples.rows(); ++t) {
    std::optional<int> label = PushSample(RowAt(samples, t));
    if (label.has_value()) predictions.push_back(*label);
  }
  return predictions;
}

int StreamingClassifier::ClassifyWindow() {
  PILOTE_TRACE_SPAN("core/classify_window");
  WallTimer timer;
  // features_ was filled by the assembler when the window completed.
  const int raw = learner_->Predict(features_).front();
  PILOTE_METRIC_COUNT("core/windows_classified", 1);
  PILOTE_METRIC_HISTOGRAM("core/stream_window_ms",
                          timer.ElapsedSeconds() * 1e3);

  // hotpath-ok: unbounded raw-label telemetry by design
  window_history_.push_back(raw);
  recent_.Push(raw);
  current_ = MajorityVote();
  return *current_;
}

int MajorityVoteLabel(const std::deque<int>& recent) {
  PILOTE_CHECK(!recent.empty());
  std::map<int, int> counts;
  for (int label : recent) ++counts[label];
  // Ties break toward the most recent label.
  int best = recent.back();
  int best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count || (count == best_count && label == recent.back())) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

int StreamingClassifier::MajorityVote() const {
  return recent_.MajorityLabel();
}

Result<int> StreamingClassifier::CurrentActivity() const {
  if (!current_.has_value()) {
    return Status::NotFound("no complete window classified yet");
  }
  return *current_;
}

}  // namespace core
}  // namespace pilote
