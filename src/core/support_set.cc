#include "core/support_set.h"

#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

void SupportSet::SetClassExemplars(int label, Tensor features) {
  PILOTE_CHECK_EQ(features.rank(), 2);
  PILOTE_CHECK_GT(features.rows(), 0);
  if (!exemplars_.empty()) {
    PILOTE_CHECK_EQ(features.cols(), exemplars_.begin()->second.cols())
        << "feature dimension mismatch";
  }
  exemplars_[label] = std::move(features);
}

const Tensor& SupportSet::ClassExemplars(int label) const {
  const auto it = exemplars_.find(label);
  PILOTE_CHECK(it != exemplars_.end()) << "no exemplars for class " << label;
  return it->second;
}

std::vector<int> SupportSet::Classes() const {
  std::vector<int> classes;
  classes.reserve(exemplars_.size());
  for (const auto& [label, unused] : exemplars_) classes.push_back(label);
  return classes;
}

int64_t SupportSet::CountForClass(int label) const {
  const auto it = exemplars_.find(label);
  return it == exemplars_.end() ? 0 : it->second.rows();
}

int64_t SupportSet::TotalExemplars() const {
  int64_t total = 0;
  for (const auto& [label, features] : exemplars_) total += features.rows();
  return total;
}

void SupportSet::TrimPerClass(int64_t per_class) {
  PILOTE_CHECK_GT(per_class, 0);
  for (auto& [label, features] : exemplars_) {
    if (features.rows() > per_class) {
      features = SliceRows(features, 0, per_class);
    }
  }
}

void SupportSet::EnforceCacheSize(int64_t cache_size) {
  PILOTE_CHECK_GT(cache_size, 0);
  PILOTE_CHECK(!exemplars_.empty());
  const int64_t per_class = cache_size / NumClasses();
  PILOTE_CHECK_GT(per_class, 0)
      << "cache size " << cache_size << " too small for " << NumClasses()
      << " classes";
  TrimPerClass(per_class);
}

data::Dataset SupportSet::ToDataset() const {
  PILOTE_CHECK(!exemplars_.empty());
  std::vector<Tensor> features;
  std::vector<int> labels;
  for (const auto& [label, rows] : exemplars_) {
    features.push_back(rows);
    labels.insert(labels.end(), static_cast<size_t>(rows.rows()), label);
  }
  return data::Dataset(ConcatRows(features), std::move(labels));
}

int64_t SupportSet::StorageBytes(serialize::QuantMode mode) const {
  int64_t total = 0;
  for (const auto& [label, features] : exemplars_) {
    total += serialize::QuantizedTensor::Quantize(features, mode).SizeBytes();
  }
  return total;
}

SupportSet SupportSet::QuantizeRoundTrip(serialize::QuantMode mode) const {
  SupportSet result;
  for (const auto& [label, features] : exemplars_) {
    result.SetClassExemplars(
        label,
        serialize::QuantizedTensor::Quantize(features, mode).Dequantize());
  }
  return result;
}

}  // namespace core
}  // namespace pilote
