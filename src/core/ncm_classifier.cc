#include "core/ncm_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "exec/plan_builder.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

void NcmClassifier::SetPrototype(int label, Tensor prototype) {
  PILOTE_CHECK_EQ(prototype.rank(), 1);
  if (!labels_.empty()) {
    PILOTE_CHECK_EQ(prototype.dim(0), prototypes_.front().dim(0))
        << "prototype dimension mismatch";
  }
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) {
    prototypes_[static_cast<size_t>(it - labels_.begin())] =
        std::move(prototype);
    RebuildCache();
    return;
  }
  const size_t pos = static_cast<size_t>(it - labels_.begin());
  labels_.insert(it, label);
  prototypes_.insert(prototypes_.begin() + static_cast<ptrdiff_t>(pos),
                     std::move(prototype));
  RebuildCache();
}

void NcmClassifier::SetPrototypeFromEmbeddings(int label,
                                               const Tensor& embeddings) {
  PILOTE_CHECK_EQ(embeddings.rank(), 2);
  PILOTE_CHECK_GT(embeddings.rows(), 0);
  SetPrototype(label, ColumnMean(embeddings));
}

void NcmClassifier::Clear() {
  labels_.clear();
  prototypes_.clear();
  RebuildCache();
}

bool NcmClassifier::HasPrototype(int label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  return it != labels_.end() && *it == label;
}

int NcmClassifier::IndexOf(int label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  PILOTE_CHECK(it != labels_.end() && *it == label)
      << "no prototype for class " << label;
  return static_cast<int>(it - labels_.begin());
}

const Tensor& NcmClassifier::prototype(int label) const {
  return prototypes_[static_cast<size_t>(IndexOf(label))];
}

ConstSpan<float> NcmClassifier::prototype_view(int label) const {
  return prototypes_[static_cast<size_t>(IndexOf(label))].span();
}

ConstSpan<float> NcmClassifier::prototype_row_view(int index) const {
  PILOTE_CHECK(!prototypes_.empty()) << "no prototypes registered";
  PILOTE_CHECK(index >= 0 &&
               index < static_cast<int>(prototypes_.size()))
      << "prototype index out of range";
  return proto_matrix_.row_span(index);
}

std::vector<int> NcmClassifier::Labels() const { return labels_; }

int64_t NcmClassifier::embedding_dim() const {
  PILOTE_CHECK(!prototypes_.empty());
  return prototypes_.front().dim(0);
}

void NcmClassifier::RebuildCache() {
  if (prototypes_.empty()) {
    proto_matrix_ = Tensor();
    proto_sq_norms_ = Tensor();
    return;
  }
  const int64_t d = embedding_dim();
  const int64_t k = static_cast<int64_t>(prototypes_.size());
  if (proto_matrix_.rank() != 2 || proto_matrix_.rows() != k ||
      proto_matrix_.cols() != d) {
    proto_matrix_ = Tensor(Shape::Matrix(k, d));
  }
  for (size_t i = 0; i < prototypes_.size(); ++i) {
    ConstSpan<float> src = prototypes_[i].span();
    Span<float> dst = proto_matrix_.row_span(static_cast<int64_t>(i));
    PILOTE_DCHECK(src.size() == dst.size());
    std::copy(src.begin(), src.end(), dst.begin());
  }
  proto_sq_norms_ = RowSquaredNorm(proto_matrix_);
}

Tensor NcmClassifier::DistanceMatrix(const Tensor& embeddings) const {
  PILOTE_CHECK(!prototypes_.empty()) << "no prototypes registered";
  const Tensor& protos = proto_matrix_;
  switch (distance_) {
    case NcmDistance::kSquaredEuclidean:
      // The cached norms are RowSquaredNorm(protos) verbatim, so this is
      // bit-identical to the uncached two-argument overload.
      return PairwiseSquaredDistance(embeddings, protos, proto_sq_norms_);
    case NcmDistance::kCosine: {
      // 1 - <x, mu> / (||x|| ||mu||); degenerate zero vectors score 1.
      // hotpath-ok: per-call GEMM temporaries of the cosine metric
      Tensor dots = MatMulTransB(embeddings, protos);
      Tensor x_norm = RowSquaredNorm(embeddings);  // hotpath-ok: ditto
      const Tensor& p_norm = proto_sq_norms_;
      Tensor out(dots.shape());  // hotpath-ok: the per-call output
      for (int64_t i = 0; i < dots.rows(); ++i) {
        for (int64_t j = 0; j < dots.cols(); ++j) {
          const float denom = std::sqrt(x_norm[i] * p_norm[j]);
          out(i, j) =
              denom > 1e-12f ? 1.0f - dots(i, j) / denom : 1.0f;
        }
      }
      return out;
    }
  }
  PILOTE_CHECK(false) << "unreachable";
  return Tensor();  // hotpath-ok: unreachable
}

std::vector<int> NcmClassifier::Predict(const Tensor& embeddings) const {
  PILOTE_METRIC_COUNT("core/ncm_predictions", embeddings.rows());
  // hotpath-ok: the distance matrix and label vector are the
  // per-call outputs
  Tensor distances = DistanceMatrix(embeddings);
  // hotpath-ok: per-call output
  std::vector<int64_t> nearest = ArgMinPerRow(distances);
  std::vector<int> result(nearest.size());  // hotpath-ok: output
  for (size_t i = 0; i < nearest.size(); ++i) {
    result[i] = labels_[static_cast<size_t>(nearest[i])];
  }
  return result;
}

Status NcmClassifier::CapturePredict(exec::PlanBuilder& plan,
                                     exec::ValueRef embeddings) const {
  if (prototypes_.empty()) {
    return Status::FailedPrecondition("no prototypes registered");
  }
  if (distance_ != NcmDistance::kSquaredEuclidean) {
    return Status::Unimplemented(
        "compiled predict supports squared Euclidean only");
  }
  exec::ValueRef distances =
      plan.SquaredDistances(embeddings, proto_matrix_, proto_sq_norms_);
  plan.ArgMinLabels(distances, labels_);
  return Status::Ok();
}

int64_t NcmClassifier::StorageBytes() const {
  int64_t total = 0;
  for (const Tensor& p : prototypes_) {
    total += p.numel() * static_cast<int64_t>(sizeof(float));
  }
  return total;
}

}  // namespace core
}  // namespace pilote
