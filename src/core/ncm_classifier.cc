#include "core/ncm_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

void NcmClassifier::SetPrototype(int label, Tensor prototype) {
  PILOTE_CHECK_EQ(prototype.rank(), 1);
  if (!labels_.empty()) {
    PILOTE_CHECK_EQ(prototype.dim(0), prototypes_.front().dim(0))
        << "prototype dimension mismatch";
  }
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) {
    prototypes_[static_cast<size_t>(it - labels_.begin())] =
        std::move(prototype);
    return;
  }
  const size_t pos = static_cast<size_t>(it - labels_.begin());
  labels_.insert(it, label);
  prototypes_.insert(prototypes_.begin() + static_cast<ptrdiff_t>(pos),
                     std::move(prototype));
}

void NcmClassifier::SetPrototypeFromEmbeddings(int label,
                                               const Tensor& embeddings) {
  PILOTE_CHECK_EQ(embeddings.rank(), 2);
  PILOTE_CHECK_GT(embeddings.rows(), 0);
  SetPrototype(label, ColumnMean(embeddings));
}

void NcmClassifier::Clear() {
  labels_.clear();
  prototypes_.clear();
}

bool NcmClassifier::HasPrototype(int label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  return it != labels_.end() && *it == label;
}

int NcmClassifier::IndexOf(int label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  PILOTE_CHECK(it != labels_.end() && *it == label)
      << "no prototype for class " << label;
  return static_cast<int>(it - labels_.begin());
}

const Tensor& NcmClassifier::prototype(int label) const {
  return prototypes_[static_cast<size_t>(IndexOf(label))];
}

std::vector<int> NcmClassifier::Labels() const { return labels_; }

int64_t NcmClassifier::embedding_dim() const {
  PILOTE_CHECK(!prototypes_.empty());
  return prototypes_.front().dim(0);
}

Tensor NcmClassifier::PrototypeMatrix() const {
  const int64_t d = embedding_dim();
  Tensor protos(Shape::Matrix(static_cast<int64_t>(prototypes_.size()), d));
  for (size_t i = 0; i < prototypes_.size(); ++i) {
    std::copy(prototypes_[i].data(), prototypes_[i].data() + d,
              protos.row(static_cast<int64_t>(i)));
  }
  return protos;
}

Tensor NcmClassifier::DistanceMatrix(const Tensor& embeddings) const {
  PILOTE_CHECK(!prototypes_.empty()) << "no prototypes registered";
  Tensor protos = PrototypeMatrix();
  switch (distance_) {
    case NcmDistance::kSquaredEuclidean:
      return PairwiseSquaredDistance(embeddings, protos);
    case NcmDistance::kCosine: {
      // 1 - <x, mu> / (||x|| ||mu||); degenerate zero vectors score 1.
      Tensor dots = MatMulTransB(embeddings, protos);
      Tensor x_norm = RowSquaredNorm(embeddings);
      Tensor p_norm = RowSquaredNorm(protos);
      Tensor out(dots.shape());
      for (int64_t i = 0; i < dots.rows(); ++i) {
        for (int64_t j = 0; j < dots.cols(); ++j) {
          const float denom = std::sqrt(x_norm[i] * p_norm[j]);
          out(i, j) =
              denom > 1e-12f ? 1.0f - dots(i, j) / denom : 1.0f;
        }
      }
      return out;
    }
  }
  PILOTE_CHECK(false) << "unreachable";
  return Tensor();
}

std::vector<int> NcmClassifier::Predict(const Tensor& embeddings) const {
  PILOTE_METRIC_COUNT("core/ncm_predictions", embeddings.rows());
  Tensor distances = DistanceMatrix(embeddings);
  std::vector<int64_t> nearest = ArgMinPerRow(distances);
  std::vector<int> result(nearest.size());
  for (size_t i = 0; i < nearest.size(); ++i) {
    result[i] = labels_[static_cast<size_t>(nearest[i])];
  }
  return result;
}

int64_t NcmClassifier::StorageBytes() const {
  int64_t total = 0;
  for (const Tensor& p : prototypes_) {
    total += p.numel() * static_cast<int64_t>(sizeof(float));
  }
  return total;
}

}  // namespace core
}  // namespace pilote
