#include "core/edge_learner.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/embedding.h"
#include "data/splits.h"
#include "eval/metrics.h"
#include "exec/plan_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serialize/io.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {
namespace {

// Holds out a validation share of the tiny new-class set when it is large
// enough (paper: 0.2 validation split); otherwise validates on the
// training rows (the early-stop rule then acts as a plateau detector).
struct NewDataSplit {
  data::Dataset train;
  data::Dataset val;
};

NewDataSplit SplitNewData(const data::Dataset& scaled_new,
                          double validation_fraction, Rng& rng) {
  bool splittable = true;
  for (const auto& [label, count] : scaled_new.ClassCounts()) {
    if (count < 10) splittable = false;
  }
  if (splittable && validation_fraction > 0.0) {
    data::TrainTestSplit split =
        data::StratifiedSplit(scaled_new, validation_fraction, rng);
    return {std::move(split.train), std::move(split.test)};
  }
  return {scaled_new, scaled_new};
}

}  // namespace

EdgeLearner::EdgeLearner(const CloudArtifact& artifact,
                         const PiloteConfig& config)
    : EdgeLearner(
          [&artifact, &config] {
            PILOTE_CHECK(artifact.backbone_config.input_dim ==
                         config.backbone.input_dim)
                << "artifact/config backbone mismatch";
            Rng init_rng(config.seed);
            auto model = std::make_unique<nn::MlpBackbone>(
                artifact.backbone_config, init_rng);
            // The edge receives the model as bytes: a real deserialization
            // models the MAGNETO transfer step.
            Status status = serialize::DeserializeModuleFromString(
                artifact.model_payload, *model);
            PILOTE_CHECK(status.ok()) << status.ToString();
            return model;
          }(),
          artifact, config) {}

EdgeLearner::EdgeLearner(std::unique_ptr<nn::MlpBackbone> model,
                         const CloudArtifact& artifact,
                         const PiloteConfig& config)
    : config_(config),
      scaler_(artifact.scaler),
      model_(std::move(model)),
      support_(artifact.support),
      known_classes_(artifact.old_classes),
      rng_(config.seed ^ 0x9E3779B97F4A7C15ULL) {
  PILOTE_CHECK(model_ != nullptr);
  model_->SetTraining(false);
  RebuildPrototypes();
}

data::Dataset EdgeLearner::Scale(const data::Dataset& raw) const {
  return scaler_.Transform(raw);
}

Tensor EdgeLearner::EmbedRaw(const Tensor& raw_features) const {
  return EmbedBatched(*model_, scaler_.Transform(raw_features));
}

bool EdgeLearner::TryPredictCompiled(const Tensor& raw_features,
                                     std::vector<int>* labels) const {
  exec::Executor* executor = plan_executor_.get();
  if (executor == nullptr) return false;
  // Invariant guard, not a synchronization point: the plan is recaptured
  // inside every mutation, so a live plan always matches model_version().
  if (plan_version_.load(std::memory_order_acquire) != model_version()) {
    return false;
  }
  if (!executor->TryRunClassify(raw_features, labels)) return false;
  PILOTE_METRIC_COUNT("core/ncm_predictions", raw_features.rows());
  PILOTE_METRIC_COUNT("exec/plan_windows", raw_features.rows());
  return true;
}

std::vector<int> EdgeLearner::Predict(const Tensor& raw_features) const {
  PILOTE_TRACE_SPAN("core/predict");
  if (!obs::Enabled()) {
    // hotpath-ok: the per-call output labels
    std::vector<int> labels;
    if (TryPredictCompiled(raw_features, &labels)) return labels;
    PILOTE_METRIC_COUNT("exec/fallback_windows", raw_features.rows());
    return classifier_.Predict(EmbedRaw(raw_features));
  }
  // A batched Predict amortizes the embedding pass over all rows; record the
  // amortized per-window latency so the histogram stays comparable with the
  // row-at-a-time streaming path.
  WallTimer timer;
  // hotpath-ok: the per-call output labels
  std::vector<int> labels;
  if (!TryPredictCompiled(raw_features, &labels)) {
    PILOTE_METRIC_COUNT("exec/fallback_windows", raw_features.rows());
    labels = classifier_.Predict(EmbedRaw(raw_features));
  }
  const int64_t rows = std::max<int64_t>(1, raw_features.rows());
  const double per_window_ms = timer.ElapsedSeconds() * 1e3 /
                               static_cast<double>(rows);
  for (int64_t i = 0; i < rows; ++i) {
    PILOTE_METRIC_HISTOGRAM("core/inference_window_ms", per_window_ms);
  }
  return labels;
}

std::vector<int> EdgeLearner::PredictBatch(const Tensor& raw_features) const {
  PILOTE_TRACE_SPAN("core/predict_batch");
  // hotpath-ok: the per-call output labels
  std::vector<int> labels;
  if (TryPredictCompiled(raw_features, &labels)) return labels;
  PILOTE_METRIC_COUNT("exec/fallback_windows", raw_features.rows());
  return classifier_.Predict(EmbedRaw(raw_features));
}

std::vector<int> EdgeLearner::PredictBatchEager(
    const Tensor& raw_features) const {
  PILOTE_TRACE_SPAN("core/predict_batch_eager");
  return classifier_.Predict(EmbedRaw(raw_features));
}

double EdgeLearner::Evaluate(const data::Dataset& raw_test) const {
  PILOTE_CHECK(!raw_test.empty());
  return eval::Accuracy(Predict(raw_test.features()), raw_test.labels());
}

int64_t EdgeLearner::ModelParameters() const {
  return model_->NumParameters();
}

int64_t EdgeLearner::ModelStateBytes() const {
  int64_t state_elements = 0;
  for (const Tensor* tensor : model_->StateTensors()) {
    state_elements += tensor->numel();
  }
  return state_elements * static_cast<int64_t>(sizeof(float));
}

EdgeLearner::Snapshot EdgeLearner::TakeSnapshot() const {
  return Snapshot{model_->Clone(), support_, classifier_, known_classes_,
                  rng_};
}

void EdgeLearner::RestoreSnapshot(Snapshot snapshot) {
  model_ = std::move(snapshot.model);
  model_->SetTraining(false);
  support_ = std::move(snapshot.support);
  classifier_ = std::move(snapshot.classifier);
  known_classes_ = std::move(snapshot.known_classes);
  rng_ = snapshot.rng;
  // The aborted update may have published intermediate prototypes; force
  // version-watching callers (serving shards) to refresh.
  model_version_.fetch_add(1, std::memory_order_relaxed);
  // The aborted update may also have captured a plan over intermediate
  // state; recapture from the restored members.
  RebuildInferencePlan();
}

void EdgeLearner::RebuildInferencePlan() {
  // Drop the old plan first: after a mutation it describes stale weights
  // and prototypes, so "no plan" (eager fallback) is the only safe state
  // until the new capture commits.
  plan_executor_.reset();
  plan_.reset();
  plan_version_.store(-1, std::memory_order_release);
  if (!compiled_inference_enabled_) return;
  if (classifier_.NumClasses() == 0) return;

  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(model_->input_dim());
  x = builder.Standardize(x, scaler_.mean(), scaler_.stddev());
  Status captured = model_->CaptureInference(builder, x);
  if (!captured.ok()) {
    PILOTE_METRIC_COUNT("exec/capture_failures", 1);
    PILOTE_LOG(Warning) << "inference plan capture failed (eager fallback): "
                        << captured.ToString();
    return;
  }
  builder.MarkOutput(x);
  Status tail = classifier_.CapturePredict(builder, x);
  if (!tail.ok()) {
    PILOTE_METRIC_COUNT("exec/capture_failures", 1);
    PILOTE_LOG(Warning) << "classify-tail capture failed (eager fallback): "
                        << tail.ToString();
    return;
  }
  Result<std::shared_ptr<const exec::InferencePlan>> plan =
      builder.Finish(model_version());
  if (!plan.ok()) {
    PILOTE_METRIC_COUNT("exec/capture_failures", 1);
    PILOTE_LOG(Warning) << "inference plan finish failed (eager fallback): "
                        << plan.status().ToString();
    return;
  }
  plan_ = std::move(plan).value();
  plan_executor_ = std::make_unique<exec::Executor>(plan_);
  plan_version_.store(plan_->version(), std::memory_order_release);
  PILOTE_METRIC_COUNT("exec/plan_rebuilds", 1);
}

void EdgeLearner::SetCompiledInferenceEnabled(bool enabled) {
  compiled_inference_enabled_ = enabled;
  RebuildInferencePlan();
}

Result<TrainReport> EdgeLearner::LearnNewClasses(const data::Dataset& d_new) {
  PILOTE_TRACE_SPAN("core/learn_new_classes");
  if (d_new.empty()) {
    return Status::InvalidArgument("LearnNewClasses: d_new is empty");
  }
  for (int label : d_new.Classes()) {
    if (support_.HasClass(label)) {
      return Status::InvalidArgument("LearnNewClasses: class " +
                                     std::to_string(label) +
                                     " already known");
    }
  }
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/learn/begin"));

  Snapshot snapshot = TakeSnapshot();
  Result<TrainReport> result = DoLearnNewClasses(Scale(d_new));
  if (result.ok()) {
    Status commit = PILOTE_FAILPOINT("core/learn/commit");
    if (commit.ok()) return result;
    RestoreSnapshot(std::move(snapshot));
    return commit;
  }
  RestoreSnapshot(std::move(snapshot));
  return result.status();
}

Status EdgeLearner::ApplySupportSetUpdate(SupportSet support) {
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/support_update/begin"));
  const int64_t input_dim = model_->input_dim();
  for (int label : support.Classes()) {
    const Tensor& exemplars = support.ClassExemplars(label);
    if (exemplars.rows() == 0) {
      return Status::InvalidArgument("support update: class " +
                                     std::to_string(label) +
                                     " has no exemplars");
    }
    if (exemplars.cols() != input_dim) {
      return Status::InvalidArgument(
          "support update: class " + std::to_string(label) +
          " feature width " + std::to_string(exemplars.cols()) +
          " does not match backbone " + std::to_string(input_dim));
    }
  }
  // Build the replacement prototypes aside; the live classifier is only
  // swapped once every class embedded cleanly.
  NcmClassifier fresh;
  for (int label : support.Classes()) {
    PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/support_update/embed"));
    Tensor embeddings = EmbedBatched(*model_, support.ClassExemplars(label));
    fresh.SetPrototypeFromEmbeddings(label, embeddings);
  }
  support_ = std::move(support);
  classifier_ = std::move(fresh);
  model_version_.fetch_add(1, std::memory_order_relaxed);
  RebuildInferencePlan();
  return Status::Ok();
}

Status EdgeLearner::AdaptPrototype(int label, const Tensor& raw_features,
                                   double rate) {
  PILOTE_TRACE_SPAN("core/adapt_prototype");
  if (!classifier_.HasPrototype(label)) {
    return Status::InvalidArgument("AdaptPrototype: unknown class " +
                                   std::to_string(label));
  }
  if (raw_features.rank() != 2 || raw_features.rows() == 0) {
    return Status::InvalidArgument(
        "AdaptPrototype: need a non-empty [n, d] row matrix");
  }
  if (raw_features.cols() != model_->input_dim()) {
    return Status::InvalidArgument(
        "AdaptPrototype: feature width " +
        std::to_string(raw_features.cols()) + " does not match backbone " +
        std::to_string(model_->input_dim()));
  }
  if (!(rate > 0.0 && rate <= 1.0)) {
    return Status::InvalidArgument("AdaptPrototype: rate " +
                                   std::to_string(rate) +
                                   " outside (0, 1]");
  }
  const Tensor embeddings = EmbedRaw(raw_features);
  const Tensor& current = classifier_.prototype(label);
  Tensor blended(current.shape());
  const int64_t dim = embeddings.cols();
  const float keep = static_cast<float>(1.0 - rate);
  const float pull = static_cast<float>(rate);
  const float inv_rows = 1.0f / static_cast<float>(embeddings.rows());
  for (int64_t d = 0; d < dim; ++d) {
    float mean = 0.0f;
    for (int64_t r = 0; r < embeddings.rows(); ++r) {
      mean += embeddings(r, d);
    }
    mean *= inv_rows;
    blended[d] = keep * current[d] + pull * mean;
  }
  classifier_.SetPrototype(label, std::move(blended));
  model_version_.fetch_add(1, std::memory_order_relaxed);
  RebuildInferencePlan();
  PILOTE_METRIC_COUNT("core/prototype_adaptations", 1);
  return Status::Ok();
}

void EdgeLearner::EnforceSupportBudget(int64_t cache_size) {
  support_.EnforceCacheSize(cache_size);
  RebuildPrototypes();
}

void EdgeLearner::RebuildPrototypes() {
  classifier_.Clear();
  for (int label : support_.Classes()) {
    Tensor embeddings =
        EmbedBatched(*model_, support_.ClassExemplars(label));
    classifier_.SetPrototypeFromEmbeddings(label, embeddings);
  }
  model_version_.fetch_add(1, std::memory_order_relaxed);
  RebuildInferencePlan();
}

void EdgeLearner::EnrichSupportSet(const data::Dataset& scaled_new) {
  PILOTE_TRACE_SPAN("core/enrich_support_set");
  for (int label : scaled_new.Classes()) {
    PILOTE_CHECK(!support_.HasClass(label))
        << "class " << label << " already known";
    data::Dataset class_rows = scaled_new.FilterByClass(label);
    data::Dataset sampled =
        data::SampleRows(class_rows, config_.exemplars_per_class, rng_);
    support_.SetClassExemplars(label, sampled.features());
    known_classes_.push_back(label);
    PILOTE_METRIC_COUNT("core/classes_ingested", 1);
    PILOTE_METRIC_COUNT("core/exemplars_cached", sampled.size());
  }
  std::sort(known_classes_.begin(), known_classes_.end());
}

Result<TrainReport> PretrainedLearner::DoLearnNewClasses(
    const data::Dataset& scaled_new) {
  EnrichSupportSet(scaled_new);
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/learn/mid"));
  // No training: the frozen embedding space simply gains prototypes.
  RebuildPrototypes();
  return TrainReport{};
}

Result<TrainReport> RetrainedLearner::DoLearnNewClasses(
    const data::Dataset& scaled_new) {
  // Table 2's "without considering the catastrophic forgetting problem"
  // baseline: re-run the cloud's contrastive training recipe on the
  // enriched support set (balanced pairs over ALL classes — the paper's
  // pair reduction is a PILOTE feature enabled by distillation, so the
  // baseline keeps the unreduced pool) with none of PILOTE's forgetting
  // counter-measures: no distillation term, free batch-norm statistics,
  // no stop-gradient anchoring.
  EnrichSupportSet(scaled_new);
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/learn/mid"));
  data::Dataset enriched = support_.ToDataset();
  NewDataSplit split =
      SplitNewData(enriched, config_.validation_fraction, rng_);
  losses::PairSampler train_sampler(split.train.features(),
                                    split.train.labels(),
                                    losses::PairStrategy::kBalancedRandom,
                                    rng_.NextUint64());
  losses::PairSampler val_sampler(split.val.features(), split.val.labels(),
                                  losses::PairStrategy::kBalancedRandom,
                                  rng_.NextUint64());

  TrainerOptions options = config_.incremental;
  options.freeze_batchnorm_stats = false;
  options.anchor_old_pair_side = false;
  SiameseTrainer trainer(*model_, options);
  TrainReport report =
      trainer.Train(train_sampler, val_sampler, /*distill=*/nullptr);

  RebuildPrototypes();
  return report;
}

Result<TrainReport> PiloteLearner::DoLearnNewClasses(
    const data::Dataset& scaled_new) {
  // Snapshot the teacher BEFORE any update: phi_old of the old exemplars
  // anchors the distillation term (Algo 1 line 11).
  data::Dataset old_support = support_.ToDataset();
  DistillationTask distill;
  distill.features = old_support.features();
  distill.teacher_embeddings =
      EmbedBatched(*model_, old_support.features());
  distill.alpha = config_.alpha;
  distill.batch_size = config_.distill_batch_size;

  // Contrastive term over the reduced pair set (Sec 5.2): old x new cross
  // pairs plus new x new pairs.
  NewDataSplit split =
      SplitNewData(scaled_new, config_.validation_fraction, rng_);
  losses::PairSampler train_sampler(
      old_support.features(), old_support.labels(), split.train.features(),
      split.train.labels(), config_.incremental_pairs, rng_.NextUint64());
  losses::PairSampler val_sampler(
      old_support.features(), old_support.labels(), split.val.features(),
      split.val.labels(), config_.incremental_pairs, rng_.NextUint64());

  // Frozen normalization statistics are part of PILOTE's knowledge
  // preservation: the distillation anchor is only meaningful if the
  // normalization the prototypes/teacher were computed under persists.
  TrainerOptions options = config_.incremental;
  options.freeze_batchnorm_stats = true;
  options.anchor_old_pair_side = config_.anchor_old_pair_side;
  SiameseTrainer trainer(*model_, options);
  TrainReport report = trainer.Train(train_sampler, val_sampler, &distill);

  // The model has already moved; a fault here must roll the weights back
  // too, which is exactly what the wrapper's snapshot covers.
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/learn/mid"));
  EnrichSupportSet(scaled_new);
  RebuildPrototypes();
  return report;
}

Result<TrainReport> GdumbLearner::DoLearnNewClasses(
    const data::Dataset& scaled_new) {
  EnrichSupportSet(scaled_new);
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/learn/mid"));
  // Greedy balancing: every class keeps at most the size of the smallest
  // class' cache (GDumb's balanced reservoir).
  int64_t smallest = config_.exemplars_per_class;
  for (int label : support_.Classes()) {
    smallest = std::min(smallest, support_.CountForClass(label));
  }
  support_.TrimPerClass(std::max<int64_t>(1, smallest));

  // Retrain from scratch: the transferred weights are discarded entirely.
  Rng init_rng(config_.seed ^ 0xD00DULL);
  model_ = std::make_unique<nn::MlpBackbone>(config_.backbone, init_rng);

  data::Dataset cache = support_.ToDataset();
  NewDataSplit split = SplitNewData(cache, config_.validation_fraction, rng_);
  losses::PairSampler train_sampler(split.train.features(),
                                    split.train.labels(),
                                    losses::PairStrategy::kBalancedRandom,
                                    rng_.NextUint64());
  losses::PairSampler val_sampler(split.val.features(), split.val.labels(),
                                  losses::PairStrategy::kBalancedRandom,
                                  rng_.NextUint64());
  TrainerOptions options = config_.incremental;
  options.freeze_batchnorm_stats = false;  // fresh model, fresh statistics
  options.anchor_old_pair_side = false;
  SiameseTrainer trainer(*model_, options);
  TrainReport report =
      trainer.Train(train_sampler, val_sampler, /*distill=*/nullptr);
  RebuildPrototypes();
  return report;
}

Status ValidateArtifact(const CloudArtifact& artifact,
                        const PiloteConfig& config) {
  if (artifact.backbone_config.input_dim != config.backbone.input_dim) {
    return Status::InvalidArgument(
        "artifact/config backbone mismatch: artifact input_dim " +
        std::to_string(artifact.backbone_config.input_dim) + " vs config " +
        std::to_string(config.backbone.input_dim));
  }
  if (artifact.support.NumClasses() == 0) {
    return Status::InvalidArgument("artifact support set is empty");
  }
  for (int label : artifact.support.Classes()) {
    const Tensor& exemplars = artifact.support.ClassExemplars(label);
    if (exemplars.rows() == 0) {
      return Status::InvalidArgument("support class " +
                                     std::to_string(label) +
                                     " has no exemplars");
    }
    if (exemplars.cols() != artifact.backbone_config.input_dim) {
      return Status::InvalidArgument(
          "support class " + std::to_string(label) + " feature width " +
          std::to_string(exemplars.cols()) + " does not match backbone " +
          std::to_string(artifact.backbone_config.input_dim));
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<EdgeLearner>> MakeEdgeLearner(
    const std::string& strategy, const CloudArtifact& artifact,
    const PiloteConfig& config) {
  PILOTE_RETURN_IF_ERROR(ValidateArtifact(artifact, config));

  // Deserialize the payload up front so a corrupt cloud transfer surfaces
  // as a Status instead of aborting mid-construction.
  Rng init_rng(config.seed);
  auto model =
      std::make_unique<nn::MlpBackbone>(artifact.backbone_config, init_rng);
  PILOTE_RETURN_IF_ERROR(
      serialize::DeserializeModuleFromString(artifact.model_payload, *model));

  std::unique_ptr<EdgeLearner> learner;
  if (strategy == "pretrained") {
    learner = std::make_unique<PretrainedLearner>(std::move(model), artifact,
                                                  config);
  } else if (strategy == "retrained") {
    learner = std::make_unique<RetrainedLearner>(std::move(model), artifact,
                                                 config);
  } else if (strategy == "pilote") {
    learner =
        std::make_unique<PiloteLearner>(std::move(model), artifact, config);
  } else if (strategy == "gdumb") {
    learner =
        std::make_unique<GdumbLearner>(std::move(model), artifact, config);
  } else {
    return Status::InvalidArgument("unknown edge learner strategy: " +
                                   strategy);
  }
  return learner;
}

}  // namespace core
}  // namespace pilote
