#include "core/trainer.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/embedding.h"
#include "losses/contrastive.h"
#include "losses/distillation.h"
#include "losses/joint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/lr_scheduler.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {
namespace {

namespace ag = autograd;

// Embeds the two pair branches through one concatenated forward pass and
// returns the contrastive term.
ag::Variable PairForward(nn::Module& model, const losses::PairBatch& batch,
                         float margin, losses::ContrastiveForm form) {
  const int64_t n = batch.left.rows();
  ag::Variable combined = ag::Variable::Constant(
      ConcatRows({batch.left, batch.right}));
  ag::Variable embedded = model.Forward(combined);
  ag::Variable left = ag::SliceRows(embedded, 0, n);
  ag::Variable right = ag::SliceRows(embedded, n, 2 * n);
  return losses::ContrastiveLoss(left, right, batch.similar, margin, form);
}

// PairForward variant that stop-gradients the old-exemplar side of cross
// pairs: those rows are embedded without gradient tracking, so the hinge
// moves only the new-class sample (the old side is held by distillation).
ag::Variable AnchoredPairForward(nn::Module& model,
                                 const losses::PairBatch& batch,
                                 float margin, losses::ContrastiveForm form) {
  const int64_t n = batch.left.rows();
  std::vector<int64_t> anchored;
  std::vector<int64_t> free_rows;
  for (int64_t i = 0; i < n; ++i) {
    if (batch.left_is_old[static_cast<size_t>(i)]) {
      anchored.push_back(i);
    } else {
      free_rows.push_back(i);
    }
  }
  if (anchored.empty()) return PairForward(model, batch, margin, form);

  auto gather_similar = [&batch](const std::vector<int64_t>& rows) {
    Tensor out(Shape::Vector(static_cast<int64_t>(rows.size())));
    for (size_t i = 0; i < rows.size(); ++i) {
      out[static_cast<int64_t>(i)] = batch.similar[rows[i]];
    }
    return out;
  };

  const int64_t nf = static_cast<int64_t>(free_rows.size());
  const int64_t na = static_cast<int64_t>(anchored.size());

  // Everything that needs gradients goes through one forward pass.
  std::vector<Tensor> grad_parts;
  if (nf > 0) {
    grad_parts.push_back(GatherRows(batch.left, free_rows));
    grad_parts.push_back(GatherRows(batch.right, free_rows));
  }
  grad_parts.push_back(GatherRows(batch.right, anchored));
  ag::Variable embedded =
      model.Forward(ag::Variable::Constant(ConcatRows(grad_parts)));

  // The anchored old side is embedded without gradients.
  Tensor anchored_left_emb =
      Embed(model, GatherRows(batch.left, anchored));

  ag::Variable anchored_right =
      ag::SliceRows(embedded, 2 * nf, 2 * nf + na);
  ag::Variable anchored_loss = losses::ContrastiveLoss(
      ag::Variable::Constant(anchored_left_emb), anchored_right,
      gather_similar(anchored), margin, form);
  if (nf == 0) return anchored_loss;

  ag::Variable free_left = ag::SliceRows(embedded, 0, nf);
  ag::Variable free_right = ag::SliceRows(embedded, nf, 2 * nf);
  ag::Variable free_loss = losses::ContrastiveLoss(
      free_left, free_right, gather_similar(free_rows), margin, form);

  // Recombine the two per-row means into the overall batch mean.
  const float wf = static_cast<float>(nf) / static_cast<float>(n);
  const float wa = static_cast<float>(na) / static_cast<float>(n);
  return ag::Add(ag::MulScalar(free_loss, wf),
                 ag::MulScalar(anchored_loss, wa));
}

}  // namespace

SiameseTrainer::SiameseTrainer(nn::Module& model,
                               const TrainerOptions& options)
    : model_(model), options_(options) {
  PILOTE_CHECK_GT(options.max_epochs, 0);
  PILOTE_CHECK_GT(options.batch_size, 0);
  PILOTE_CHECK_GT(options.batches_per_epoch, 0);
  PILOTE_CHECK_GT(options.margin, 0.0f);
}

float SiameseTrainer::ValidationLoss(const losses::PairBatch& val_pairs,
                                     const DistillationTask* distill) {
  Tensor left = Embed(model_, val_pairs.left);
  Tensor right = Embed(model_, val_pairs.right);
  float loss = losses::ContrastiveLossValue(
      left, right, val_pairs.similar, options_.margin,
      options_.contrastive_form);
  if (distill != nullptr) {
    Tensor student = EmbedBatched(model_, distill->features);
    const float distill_value =
        losses::DistillationLossValue(student, distill->teacher_embeddings);
    loss = distill->alpha * distill_value + (1.0f - distill->alpha) * loss;
  }
  return loss;
}

TrainReport SiameseTrainer::Train(losses::PairSampler& train_sampler,
                                  losses::PairSampler& val_sampler,
                                  const DistillationTask* distill) {
  PILOTE_TRACE_SPAN("trainer/train");
  if (distill != nullptr) {
    PILOTE_CHECK_EQ(distill->features.rows(),
                    distill->teacher_embeddings.rows());
    PILOTE_CHECK(distill->alpha >= 0.0f && distill->alpha <= 1.0f);
  }

  model_.SetNormalizationFrozen(options_.freeze_batchnorm_stats);
  optim::Adam optimizer(model_.Parameters(), {.lr = options_.initial_lr});
  optim::HalvingLr scheduler(&optimizer, options_.initial_lr,
                             options_.min_lr);
  Rng rng(options_.seed);

  // Fixed validation pair set (drawn once, reused every epoch).
  const losses::PairBatch val_pairs =
      val_sampler.Next(options_.num_val_pairs);

  TrainReport report;
  WallTimer total_timer;
  int plateau_count = 0;
  float previous_val_loss = 0.0f;
  bool have_previous = false;

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    PILOTE_TRACE_SPAN("trainer/epoch");
    WallTimer epoch_timer;
    scheduler.OnEpochBegin(epoch);
    model_.SetTraining(true);

    double train_loss_sum = 0.0;
    for (int step = 0; step < options_.batches_per_epoch; ++step) {
      losses::PairBatch batch = train_sampler.Next(options_.batch_size);
      const bool anchor =
          options_.anchor_old_pair_side && !batch.left_is_old.empty();
      ag::Variable loss =
          anchor ? AnchoredPairForward(model_, batch, options_.margin,
                                       options_.contrastive_form)
                 : PairForward(model_, batch, options_.margin,
                               options_.contrastive_form);

      if (distill != nullptr) {
        // Minibatch of old-class exemplars for the distillation term.
        const int64_t m = distill->features.rows();
        Tensor features;
        Tensor teacher;
        if (distill->batch_size <= 0 ||
            m <= static_cast<int64_t>(distill->batch_size)) {
          features = distill->features;
          teacher = distill->teacher_embeddings;
        } else {
          std::vector<int> picked = rng.SampleWithoutReplacement(
              static_cast<int>(m), distill->batch_size);
          std::vector<int64_t> indices(picked.begin(), picked.end());
          features = GatherRows(distill->features, indices);
          teacher = GatherRows(distill->teacher_embeddings, indices);
        }
        ag::Variable student =
            model_.Forward(ag::Variable::Constant(features));
        ag::Variable distill_loss =
            losses::DistillationLoss(student, teacher);
        loss = losses::JointLoss(distill_loss, loss, distill->alpha);
      }

      optimizer.ZeroGrad();
      loss.Backward();
      if (options_.grad_clip_norm > 0.0f) {
        auto params = model_.Parameters();
        optim::ClipGradNorm(params, options_.grad_clip_norm);
      }
      optimizer.Step();
      train_loss_sum += loss.value()[0];
    }
    report.final_train_loss = static_cast<float>(
        train_loss_sum / static_cast<double>(options_.batches_per_epoch));

    // Validation with frozen statistics.
    const float val_loss = ValidationLoss(val_pairs, distill);
    report.val_loss_history.push_back(val_loss);
    report.epochs_completed = epoch + 1;
    PILOTE_METRIC_HISTOGRAM("trainer/epoch_seconds",
                            epoch_timer.ElapsedSeconds());

    if (have_previous &&
        std::fabs(val_loss - previous_val_loss) < options_.early_stop_delta) {
      ++plateau_count;
    } else {
      plateau_count = 0;
    }
    previous_val_loss = val_loss;
    have_previous = true;
    if (plateau_count >= options_.early_stop_patience) {
      report.early_stopped = true;
      break;
    }
  }

  report.final_val_loss = report.val_loss_history.empty()
                              ? 0.0f
                              : report.val_loss_history.back();
  model_.SetNormalizationFrozen(false);
  report.total_seconds = total_timer.ElapsedSeconds();
  report.mean_epoch_seconds =
      report.epochs_completed > 0
          ? report.total_seconds / report.epochs_completed
          : 0.0;
  model_.SetTraining(false);
  return report;
}

}  // namespace core
}  // namespace pilote
