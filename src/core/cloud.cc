#include "core/cloud.h"

#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "data/splits.h"
#include "serialize/io.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

int64_t CloudArtifact::TransferBytes() const {
  return static_cast<int64_t>(model_payload.size()) +
         support.StorageBytes(serialize::QuantMode::kFloat32) +
         scaler.mean().numel() * 2 * static_cast<int64_t>(sizeof(float));
}

// hotpath-ok: the cloud pre-training driver is cold by definition; it
// shares the bare name `Run` with the hot exec::Executor::Run, which the
// name-keyed call graph cannot tell apart.
Result<CloudPretrainResult> CloudPretrainer::Run(const data::Dataset& d_old) {
  if (d_old.empty()) {
    return Status::InvalidArgument("pre-training corpus is empty");
  }
  if (d_old.Classes().size() < 2) {
    return Status::InvalidArgument(
        "pre-training corpus holds a single class; contrastive "
        "pre-training needs negative pairs");
  }
  if (d_old.num_features() != config_.backbone.input_dim) {
    return Status::InvalidArgument(
        "corpus feature width " + std::to_string(d_old.num_features()) +
        " does not match backbone input_dim " +
        std::to_string(config_.backbone.input_dim));
  }
  Rng rng(config_.seed);

  // Validation split before fitting anything (paper: 0.2).
  data::TrainTestSplit split =
      data::StratifiedSplit(d_old, config_.validation_fraction, rng);

  CloudPretrainResult result;
  result.artifact.backbone_config = config_.backbone;
  result.artifact.old_classes = d_old.Classes();
  result.artifact.scaler.Fit(split.train.features());

  data::Dataset train = result.artifact.scaler.Transform(split.train);
  data::Dataset val = result.artifact.scaler.Transform(split.test);

  // Pre-train the embedding model with balanced contrastive pairs.
  nn::MlpBackbone model(config_.backbone, rng);
  losses::PairSampler train_sampler(train.features(), train.labels(),
                                    losses::PairStrategy::kBalancedRandom,
                                    rng.NextUint64());
  losses::PairSampler val_sampler(val.features(), val.labels(),
                                  losses::PairStrategy::kBalancedRandom,
                                  rng.NextUint64());
  SiameseTrainer trainer(model, config_.pretrain);
  result.report = trainer.Train(train_sampler, val_sampler,
                                /*distill=*/nullptr);
  PILOTE_LOG(Info) << "cloud pretrain: " << result.report.epochs_completed
                   << " epochs, val loss " << result.report.final_val_loss;

  // Herd the exemplar support set (Algo 1 lines 1-7).
  for (int label : train.Classes()) {
    data::Dataset class_rows = train.FilterByClass(label);
    std::vector<int64_t> selected =
        SelectExemplars(model, class_rows.features(),
                        config_.exemplars_per_class, config_.selection, rng);
    result.artifact.support.SetClassExemplars(
        label, GatherRows(class_rows.features(), selected));
  }

  // Serialize the model: this byte string is the cloud->edge transfer.
  result.artifact.model_payload = serialize::SerializeModuleToString(model);
  return result;
}

}  // namespace core
}  // namespace pilote
