#ifndef PILOTE_CORE_TRAINER_H_
#define PILOTE_CORE_TRAINER_H_

#include <vector>

#include "losses/contrastive.h"
#include "losses/pair_sampler.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace pilote {
namespace core {

// Hyperparameters of one siamese training run (paper Sec 6.1.2).
struct TrainerOptions {
  int max_epochs = 30;
  int batch_size = 64;          // pairs per optimizer step
  int batches_per_epoch = 24;   // pairs/epoch = batch_size * batches_per_epoch
  float margin = 5.0f;          // contrastive margin m (Eq. 2)
  // Negative-pair hinge form. The paper's Eq. 2 (kSquaredHinge) has a
  // vanishing gradient when two embeddings coincide; kHadsell keeps a
  // finite repulsion there (recommended for incremental updates, where a
  // new class can land exactly on an old cluster).
  losses::ContrastiveForm contrastive_form =
      losses::ContrastiveForm::kSquaredHinge;
  float initial_lr = 0.01f;     // Adam, halved every epoch (paper schedule)
  float min_lr = 1e-5f;
  float grad_clip_norm = 10.0f; // 0 disables clipping
  // Early stopping: |val_loss[e] - val_loss[e-1]| < early_stop_delta for
  // early_stop_patience consecutive epochs (paper: 1e-4, 5 steps).
  float early_stop_delta = 1e-4f;
  int early_stop_patience = 5;
  int num_val_pairs = 256;      // size of the fixed validation pair set
  // Keep batch-norm running statistics fixed during this run (normalize
  // with them even in training mode). Essential for edge-side incremental
  // updates: tiny, new-class-heavy batches would otherwise drag the
  // statistics away from what the old-class prototypes and the
  // distillation teacher were computed with.
  bool freeze_batchnorm_stats = false;
  // Treat the old-exemplar side of cross pairs as a constant
  // (stop-gradient): the contrastive push then moves only the new-class
  // sample, matching Sec 5.2's reading that distillation already
  // constrains old-class representations. Only meaningful with a pair
  // strategy that marks cross pairs (kCrossAndNew) and with
  // freeze_batchnorm_stats (so the no-grad embedding uses the same
  // normalization as the training pass).
  bool anchor_old_pair_side = false;
  uint64_t seed = 1;
};

// The distillation side of PILOTE's joint objective. `features` are the
// old-class exemplars (scaled feature space); `teacher_embeddings` their
// embeddings under the frozen pre-update model.
struct DistillationTask {
  Tensor features;             // [m, in]
  Tensor teacher_embeddings;   // [m, d]
  float alpha = 0.5f;          // joint balancing weight
  int batch_size = 64;         // exemplar minibatch per step (0 = full set)
};

// Outcome of a training run.
struct TrainReport {
  int epochs_completed = 0;
  bool early_stopped = false;
  float final_train_loss = 0.0f;
  float final_val_loss = 0.0f;
  std::vector<float> val_loss_history;
  double total_seconds = 0.0;
  double mean_epoch_seconds = 0.0;
};

// Optimizes a siamese embedding model with the (joint) contrastive +
// distillation objective. Both pair branches share one forward pass
// (concatenated batch), so batch normalization sees identical statistics
// on both branches.
class SiameseTrainer {
 public:
  SiameseTrainer(nn::Module& model, const TrainerOptions& options);

  // Runs up to max_epochs. `train_sampler` feeds the contrastive term;
  // `val_sampler` provides a fixed validation pair set drawn once at the
  // start; `distill` (may be null) adds the distillation term.
  TrainReport Train(losses::PairSampler& train_sampler,
                    losses::PairSampler& val_sampler,
                    const DistillationTask* distill);

 private:
  // Joint validation loss on the fixed pair set (eval mode, no grad).
  float ValidationLoss(const losses::PairBatch& val_pairs,
                       const DistillationTask* distill);

  nn::Module& model_;
  TrainerOptions options_;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_TRAINER_H_
