#ifndef PILOTE_CORE_VOTE_RING_H_
#define PILOTE_CORE_VOTE_RING_H_

#include <vector>

#include "common/macros.h"

namespace pilote {
namespace core {

// Fixed-capacity ring of the last `capacity` raw window labels with an
// allocation-free majority vote, replacing the deque + std::map histogram
// on the serve hot path. Pushing past capacity evicts the oldest label, so
// the ring always holds the trailing vote window.
//
// MajorityLabel() must agree label-for-label with core::MajorityVoteLabel
// (the deque reference implementation kept in streaming_classifier.h);
// streaming_test pins the equivalence. The vote is O(size^2) compares over
// a handful of ints — cheaper than a map for any realistic vote window,
// and heap-free, which is what the hot-path discipline cares about.
class VoteRing {
 public:
  explicit VoteRing(int capacity) {
    PILOTE_CHECK_GT(capacity, 0);
    labels_.assign(static_cast<size_t>(capacity), 0);
  }

  void Push(int label) {
    if (size_ == capacity()) {
      labels_[static_cast<size_t>(head_)] = label;
      head_ = (head_ + 1) % capacity();
    } else {
      labels_[static_cast<size_t>((head_ + size_) % capacity())] = label;
      ++size_;
    }
  }

  bool empty() const { return size_ == 0; }
  int size() const { return size_; }
  int capacity() const { return static_cast<int>(labels_.size()); }

  // Majority label over the ring; ties break toward the most recent label,
  // then toward the smallest label (MajorityVoteLabel's exact semantics).
  // CHECKs against an empty ring.
  int MajorityLabel() const {
    PILOTE_CHECK_GT(size_, 0);
    const int most_recent = At(size_ - 1);
    int max_count = 0;
    int min_max_label = 0;
    int recent_count = 0;
    for (int i = 0; i < size_; ++i) {
      const int label = At(i);
      int count = 0;
      for (int j = 0; j < size_; ++j) count += At(j) == label ? 1 : 0;
      if (count > max_count || (count == max_count && label < min_max_label)) {
        max_count = count;
        min_max_label = label;
      }
      if (label == most_recent) recent_count = count;
    }
    return recent_count == max_count ? most_recent : min_max_label;
  }

 private:
  // i-th label, oldest first.
  int At(int i) const {
    return labels_[static_cast<size_t>((head_ + i) % capacity())];
  }

  std::vector<int> labels_;  // allocated once at construction
  int head_ = 0;             // index of the oldest label
  int size_ = 0;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_VOTE_RING_H_
