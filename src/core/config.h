#ifndef PILOTE_CORE_CONFIG_H_
#define PILOTE_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/exemplar_selector.h"
#include "core/trainer.h"
#include "har/sensor_layout.h"
#include "losses/pair_sampler.h"
#include "nn/backbone.h"

namespace pilote {
namespace core {

// On-device streaming parameters (denoise -> 1 s segmentation -> majority
// vote). The single source of truth for every consumer: StreamingClassifier
// aliases this as its Options, and the serving layer builds per-device
// sessions from PiloteConfig::streaming — so a deployment cannot configure
// the two paths inconsistently.
struct StreamingOptions {
  int window_length = har::kWindowLength;
  int denoise_half_width = 1;
  int vote_window = 3;  // majority vote span; 1 disables smoothing
};

// Range validation for externally supplied streaming parameters. Library
// constructors CHECK these invariants; callers holding untrusted input
// (the serving layer's session creation) validate first.
inline Status ValidateStreamingOptions(const StreamingOptions& options) {
  if (options.window_length <= 0) {
    return Status::InvalidArgument(
        "window_length must be > 0, got " +
        std::to_string(options.window_length));
  }
  if (options.denoise_half_width < 0) {
    return Status::InvalidArgument(
        "denoise_half_width must be >= 0, got " +
        std::to_string(options.denoise_half_width));
  }
  if (options.vote_window < 1) {
    return Status::InvalidArgument(
        "vote_window must be >= 1, got " +
        std::to_string(options.vote_window));
  }
  return Status::Ok();
}

// Full configuration of a PILOTE deployment: one cloud pre-training phase
// followed by edge incremental updates.
struct PiloteConfig {
  nn::BackboneConfig backbone = nn::BackboneConfig::Paper();

  // Cloud phase (rich data, more epochs).
  TrainerOptions pretrain;

  // Edge phase (few samples, must converge fast). Batch-norm statistics
  // are frozen by default on the edge (see TrainerOptions), and the
  // negative-pair hinge uses the Hadsell form: the paper's Eq. 2 has a
  // vanishing gradient when a new class lands exactly on an old cluster,
  // which deadlocks sequential increments (see DESIGN.md).
  TrainerOptions incremental = [] {
    TrainerOptions options;
    options.freeze_batchnorm_stats = true;
    options.contrastive_form = losses::ContrastiveForm::kHadsell;
    return options;
  }();

  // Joint-loss balancing weight alpha (paper uses 0.5).
  float alpha = 0.5f;

  // Exemplars kept per class in the edge support set.
  int64_t exemplars_per_class = 200;

  // How old-class exemplars are selected on the cloud.
  SelectionStrategy selection = SelectionStrategy::kRepresentative;

  // Old-exemplar minibatch size for the distillation term (0 = full set).
  int distill_batch_size = 128;

  // Pair set for PILOTE's incremental contrastive term. kCrossAndNew is
  // the paper's reduced pool (Sec 5.2); kAllPairs is the unreduced
  // alternative kept for the ablation.
  losses::PairStrategy incremental_pairs = losses::PairStrategy::kCrossAndNew;

  // Optional extension beyond the paper: stop-gradient the old-exemplar
  // side of PILOTE's cross pairs so the hinge only moves new samples.
  // Off by default (the paper's formulation lets both branches move and
  // relies on the distillation term alone).
  bool anchor_old_pair_side = false;

  // Fraction of the pre-training data held out for validation (paper: 0.2).
  double validation_fraction = 0.2;

  // On-device streaming (window assembly + vote smoothing) parameters.
  StreamingOptions streaming;

  uint64_t seed = 42;

  // Paper-scale settings.
  static PiloteConfig Paper() {
    PiloteConfig config;
    config.pretrain.max_epochs = 30;
    config.incremental.max_epochs = 20;
    return config;
  }

  // Reduced settings for single-core test/bench runs: a smaller backbone
  // with the same layer pattern, fewer pairs per epoch. Pre-training
  // still runs to (near) convergence — the cloud phase is assumed
  // converged by the edge learners, exactly as in the paper.
  static PiloteConfig Small() {
    PiloteConfig config;
    config.backbone = nn::BackboneConfig::Small();
    // With the paper's halve-every-epoch schedule the learning rate is
    // tiny after ~10 epochs, so convergence must come from wide epochs:
    // the cloud has the data budget for it (the paper's corpus is ~200k
    // records per epoch).
    config.pretrain.max_epochs = 14;
    config.pretrain.batches_per_epoch = 96;
    config.incremental.max_epochs = 20;
    config.incremental.batches_per_epoch = 16;
    config.exemplars_per_class = 50;
    return config;
  }
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_CONFIG_H_
