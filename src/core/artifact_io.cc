#include "core/artifact_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "serialize/io.h"

namespace pilote {
namespace core {
namespace {

constexpr uint32_t kArtifactMagic = 0x504C5441;  // "PLTA"
constexpr uint32_t kLegacyArtifactVersion = 1;
constexpr uint32_t kArtifactVersion = 2;

// v2 section tags, in file order.
constexpr uint32_t kSectionConfig = 0x30474643;   // "CFG0"
constexpr uint32_t kSectionModel = 0x304C444D;    // "MDL0"
constexpr uint32_t kSectionScaler = 0x304C4353;   // "SCL0"
constexpr uint32_t kSectionClasses = 0x30534C43;  // "CLS0"
constexpr uint32_t kSectionSupport = 0x30505553;  // "SUP0"

const char* SectionName(uint32_t tag) {
  switch (tag) {
    case kSectionConfig:
      return "backbone config";
    case kSectionModel:
      return "model payload";
    case kSectionScaler:
      return "scaler";
    case kSectionClasses:
      return "old-class list";
    case kSectionSupport:
      return "support set";
  }
  return "unknown";
}

void WriteU32(std::ostream& os, uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& os, uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteI64(std::ostream& os, int64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

Result<uint32_t> ReadU32(std::istream& is) {
  uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated artifact (u32)");
  return value;
}

Result<uint64_t> ReadU64(std::istream& is) {
  uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated artifact (u64)");
  return value;
}

Result<int64_t> ReadI64(std::istream& is) {
  int64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated artifact (i64)");
  return value;
}

// ---- Section bodies (shared between the v2 writer and both parsers) ----

void WriteConfigBody(std::ostream& os, const nn::BackboneConfig& backbone) {
  WriteI64(os, backbone.input_dim);
  WriteI64(os, static_cast<int64_t>(backbone.hidden_dims.size()));
  for (int64_t dim : backbone.hidden_dims) WriteI64(os, dim);
  WriteI64(os, backbone.embedding_dim);
  WriteU32(os, backbone.use_batchnorm ? 1u : 0u);
  os.write(reinterpret_cast<const char*>(&backbone.bn_eps),
           sizeof(backbone.bn_eps));
  os.write(reinterpret_cast<const char*>(&backbone.bn_momentum),
           sizeof(backbone.bn_momentum));
}

Status ParseConfigBody(std::istream& is, nn::BackboneConfig& backbone) {
  PILOTE_ASSIGN_OR_RETURN(backbone.input_dim, ReadI64(is));
  PILOTE_ASSIGN_OR_RETURN(int64_t num_hidden, ReadI64(is));
  if (num_hidden < 0 || num_hidden > 64) {
    return Status::DataLoss("implausible hidden layer count");
  }
  backbone.hidden_dims.clear();
  for (int64_t i = 0; i < num_hidden; ++i) {
    PILOTE_ASSIGN_OR_RETURN(int64_t dim, ReadI64(is));
    backbone.hidden_dims.push_back(dim);
  }
  PILOTE_ASSIGN_OR_RETURN(backbone.embedding_dim, ReadI64(is));
  PILOTE_ASSIGN_OR_RETURN(uint32_t use_bn, ReadU32(is));
  backbone.use_batchnorm = use_bn != 0;
  is.read(reinterpret_cast<char*>(&backbone.bn_eps), sizeof(backbone.bn_eps));
  is.read(reinterpret_cast<char*>(&backbone.bn_momentum),
          sizeof(backbone.bn_momentum));
  if (!is) return Status::DataLoss("truncated backbone config");
  return Status::Ok();
}

Status WriteScalerBody(std::ostream& os, const CloudArtifact& artifact) {
  PILOTE_RETURN_IF_ERROR(serialize::WriteTensor(os, artifact.scaler.mean()));
  PILOTE_RETURN_IF_ERROR(serialize::WriteTensor(os, artifact.scaler.stddev()));
  return Status::Ok();
}

Status ParseScalerBody(std::istream& is, CloudArtifact& artifact) {
  PILOTE_ASSIGN_OR_RETURN(Tensor mean, serialize::ReadTensor(is));
  PILOTE_ASSIGN_OR_RETURN(Tensor stddev, serialize::ReadTensor(is));
  artifact.scaler.SetState(std::move(mean), std::move(stddev));
  return Status::Ok();
}

void WriteClassesBody(std::ostream& os, const CloudArtifact& artifact) {
  WriteI64(os, static_cast<int64_t>(artifact.old_classes.size()));
  for (int label : artifact.old_classes) {
    WriteU32(os, static_cast<uint32_t>(label));
  }
}

Status ParseClassesBody(std::istream& is, CloudArtifact& artifact) {
  PILOTE_ASSIGN_OR_RETURN(int64_t num_old, ReadI64(is));
  if (num_old < 0 || num_old > 1 << 20) {
    return Status::DataLoss("implausible old-class count");
  }
  for (int64_t i = 0; i < num_old; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint32_t label, ReadU32(is));
    artifact.old_classes.push_back(static_cast<int>(label));
  }
  return Status::Ok();
}

Status WriteSupportBody(std::ostream& os, const CloudArtifact& artifact) {
  const std::vector<int> classes = artifact.support.Classes();
  WriteI64(os, static_cast<int64_t>(classes.size()));
  for (int label : classes) {
    WriteU32(os, static_cast<uint32_t>(label));
    PILOTE_RETURN_IF_ERROR(
        serialize::WriteTensor(os, artifact.support.ClassExemplars(label)));
  }
  return Status::Ok();
}

Status ParseSupportBody(std::istream& is, CloudArtifact& artifact) {
  PILOTE_ASSIGN_OR_RETURN(int64_t num_classes, ReadI64(is));
  if (num_classes < 0 || num_classes > 1 << 20) {
    return Status::DataLoss("implausible support class count");
  }
  for (int64_t i = 0; i < num_classes; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint32_t label, ReadU32(is));
    PILOTE_ASSIGN_OR_RETURN(Tensor exemplars, serialize::ReadTensor(is));
    artifact.support.SetClassExemplars(static_cast<int>(label),
                                       std::move(exemplars));
  }
  return Status::Ok();
}

// ---- v2 frame helpers ----

void AppendSection(std::ostream& os, uint32_t tag, const std::string& body) {
  WriteU32(os, tag);
  WriteU64(os, static_cast<uint64_t>(body.size()));
  WriteU32(os, Crc32(body));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
}

// Reads the next section, requiring `expected_tag`, and CRC-verifies its
// body into `body_stream`.
Status OpenSection(std::istream& is, uint32_t expected_tag,
                   std::istringstream& body_stream) {
  PILOTE_ASSIGN_OR_RETURN(uint32_t tag, ReadU32(is));
  if (tag != expected_tag) {
    return Status::DataLoss(std::string("expected section ") +
                            SectionName(expected_tag) + ", found tag " +
                            std::to_string(tag));
  }
  PILOTE_ASSIGN_OR_RETURN(uint64_t size, ReadU64(is));
  PILOTE_ASSIGN_OR_RETURN(uint32_t expected_crc, ReadU32(is));
  if (size > (1ULL << 33)) {
    return Status::DataLoss(std::string("implausible size for section ") +
                            SectionName(expected_tag));
  }
  std::string body(static_cast<size_t>(size), '\0');
  is.read(body.data(), static_cast<std::streamsize>(body.size()));
  if (!is) {
    return Status::DataLoss(std::string("truncated section ") +
                            SectionName(expected_tag));
  }
  if (Crc32(body) != expected_crc) {
    return Status::DataLoss(std::string("checksum mismatch in section ") +
                            SectionName(expected_tag));
  }
  body_stream.str(std::move(body));
  return Status::Ok();
}

Result<CloudArtifact> LoadArtifactV2(std::istream& is) {
  CloudArtifact artifact;
  std::istringstream body;

  PILOTE_RETURN_IF_ERROR(OpenSection(is, kSectionConfig, body));
  PILOTE_RETURN_IF_ERROR(ParseConfigBody(body, artifact.backbone_config));

  PILOTE_RETURN_IF_ERROR(OpenSection(is, kSectionModel, body));
  artifact.model_payload = body.str();
  if (artifact.model_payload.size() > (1ULL << 32)) {
    return Status::DataLoss("implausible model payload size");
  }

  PILOTE_RETURN_IF_ERROR(OpenSection(is, kSectionScaler, body));
  PILOTE_RETURN_IF_ERROR(ParseScalerBody(body, artifact));

  PILOTE_RETURN_IF_ERROR(OpenSection(is, kSectionClasses, body));
  PILOTE_RETURN_IF_ERROR(ParseClassesBody(body, artifact));

  PILOTE_RETURN_IF_ERROR(OpenSection(is, kSectionSupport, body));
  PILOTE_RETURN_IF_ERROR(ParseSupportBody(body, artifact));
  return artifact;
}

// v1: all fields sequential after the header, model payload preceded by
// an explicit i64 size, no checksums.
Result<CloudArtifact> LoadArtifactV1(std::istream& is) {
  CloudArtifact artifact;
  PILOTE_RETURN_IF_ERROR(ParseConfigBody(is, artifact.backbone_config));

  PILOTE_ASSIGN_OR_RETURN(int64_t payload_size, ReadI64(is));
  if (payload_size < 0 || payload_size > (1LL << 32)) {
    return Status::DataLoss("implausible model payload size");
  }
  artifact.model_payload.resize(static_cast<size_t>(payload_size));
  is.read(artifact.model_payload.data(), payload_size);
  if (!is) return Status::DataLoss("truncated model payload");

  PILOTE_RETURN_IF_ERROR(ParseScalerBody(is, artifact));
  PILOTE_RETURN_IF_ERROR(ParseClassesBody(is, artifact));
  PILOTE_RETURN_IF_ERROR(ParseSupportBody(is, artifact));
  return artifact;
}

}  // namespace

Status SaveArtifact(const std::string& path, const CloudArtifact& artifact) {
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/artifact/save"));

  std::ostringstream os(std::ios::binary);
  WriteU32(os, kArtifactMagic);
  WriteU32(os, kArtifactVersion);

  {
    std::ostringstream body(std::ios::binary);
    WriteConfigBody(body, artifact.backbone_config);
    AppendSection(os, kSectionConfig, body.str());
  }
  AppendSection(os, kSectionModel, artifact.model_payload);
  {
    std::ostringstream body(std::ios::binary);
    PILOTE_RETURN_IF_ERROR(WriteScalerBody(body, artifact));
    AppendSection(os, kSectionScaler, body.str());
  }
  {
    std::ostringstream body(std::ios::binary);
    WriteClassesBody(body, artifact);
    AppendSection(os, kSectionClasses, body.str());
  }
  {
    std::ostringstream body(std::ios::binary);
    PILOTE_RETURN_IF_ERROR(WriteSupportBody(body, artifact));
    AppendSection(os, kSectionSupport, body.str());
  }
  if (!os) return Status::Internal("failed serializing artifact");
  return serialize::WriteFileAtomic(path, os.str());
}

Result<CloudArtifact> LoadArtifact(const std::string& path) {
  PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("core/artifact/load"));

  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);

  PILOTE_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(is));
  if (magic != kArtifactMagic) return Status::DataLoss("bad artifact magic");
  PILOTE_ASSIGN_OR_RETURN(uint32_t version, ReadU32(is));
  if (version == kLegacyArtifactVersion) return LoadArtifactV1(is);
  if (version != kArtifactVersion) {
    return Status::DataLoss("unsupported artifact version " +
                            std::to_string(version));
  }
  return LoadArtifactV2(is);
}

Status SaveArtifactV1ForTesting(const std::string& path,
                                const CloudArtifact& artifact) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);
  WriteU32(os, kArtifactMagic);
  WriteU32(os, kLegacyArtifactVersion);
  WriteConfigBody(os, artifact.backbone_config);
  WriteI64(os, static_cast<int64_t>(artifact.model_payload.size()));
  os.write(artifact.model_payload.data(),
           static_cast<std::streamsize>(artifact.model_payload.size()));
  PILOTE_RETURN_IF_ERROR(WriteScalerBody(os, artifact));
  WriteClassesBody(os, artifact);
  PILOTE_RETURN_IF_ERROR(WriteSupportBody(os, artifact));
  if (!os) return Status::IoError("failed writing artifact");
  return Status::Ok();
}

}  // namespace core
}  // namespace pilote
