#include "core/artifact_io.h"

#include <cstdint>
#include <fstream>

#include "serialize/io.h"

namespace pilote {
namespace core {
namespace {

constexpr uint32_t kArtifactMagic = 0x504C5441;  // "PLTA"
constexpr uint32_t kArtifactVersion = 1;

void WriteU32(std::ostream& os, uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteI64(std::ostream& os, int64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

Result<uint32_t> ReadU32(std::istream& is) {
  uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated artifact (u32)");
  return value;
}

Result<int64_t> ReadI64(std::istream& is) {
  int64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) return Status::DataLoss("truncated artifact (i64)");
  return value;
}

}  // namespace

Status SaveArtifact(const std::string& path, const CloudArtifact& artifact) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open for write: " + path);

  WriteU32(os, kArtifactMagic);
  WriteU32(os, kArtifactVersion);

  // Backbone config.
  const nn::BackboneConfig& backbone = artifact.backbone_config;
  WriteI64(os, backbone.input_dim);
  WriteI64(os, static_cast<int64_t>(backbone.hidden_dims.size()));
  for (int64_t dim : backbone.hidden_dims) WriteI64(os, dim);
  WriteI64(os, backbone.embedding_dim);
  WriteU32(os, backbone.use_batchnorm ? 1u : 0u);
  os.write(reinterpret_cast<const char*>(&backbone.bn_eps),
           sizeof(backbone.bn_eps));
  os.write(reinterpret_cast<const char*>(&backbone.bn_momentum),
           sizeof(backbone.bn_momentum));

  // Model payload (already-serialized module bytes).
  WriteI64(os, static_cast<int64_t>(artifact.model_payload.size()));
  os.write(artifact.model_payload.data(),
           static_cast<std::streamsize>(artifact.model_payload.size()));

  // Scaler.
  PILOTE_RETURN_IF_ERROR(serialize::WriteTensor(os, artifact.scaler.mean()));
  PILOTE_RETURN_IF_ERROR(
      serialize::WriteTensor(os, artifact.scaler.stddev()));

  // Old-class list.
  WriteI64(os, static_cast<int64_t>(artifact.old_classes.size()));
  for (int label : artifact.old_classes) WriteU32(os, static_cast<uint32_t>(label));

  // Support set: per-class exemplar matrices.
  const std::vector<int> classes = artifact.support.Classes();
  WriteI64(os, static_cast<int64_t>(classes.size()));
  for (int label : classes) {
    WriteU32(os, static_cast<uint32_t>(label));
    PILOTE_RETURN_IF_ERROR(
        serialize::WriteTensor(os, artifact.support.ClassExemplars(label)));
  }
  if (!os) return Status::IoError("failed writing artifact");
  return Status::Ok();
}

Result<CloudArtifact> LoadArtifact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open for read: " + path);

  PILOTE_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(is));
  if (magic != kArtifactMagic) return Status::DataLoss("bad artifact magic");
  PILOTE_ASSIGN_OR_RETURN(uint32_t version, ReadU32(is));
  if (version != kArtifactVersion) {
    return Status::DataLoss("unsupported artifact version " +
                            std::to_string(version));
  }

  CloudArtifact artifact;
  nn::BackboneConfig& backbone = artifact.backbone_config;
  PILOTE_ASSIGN_OR_RETURN(backbone.input_dim, ReadI64(is));
  PILOTE_ASSIGN_OR_RETURN(int64_t num_hidden, ReadI64(is));
  if (num_hidden < 0 || num_hidden > 64) {
    return Status::DataLoss("implausible hidden layer count");
  }
  backbone.hidden_dims.clear();
  for (int64_t i = 0; i < num_hidden; ++i) {
    PILOTE_ASSIGN_OR_RETURN(int64_t dim, ReadI64(is));
    backbone.hidden_dims.push_back(dim);
  }
  PILOTE_ASSIGN_OR_RETURN(backbone.embedding_dim, ReadI64(is));
  PILOTE_ASSIGN_OR_RETURN(uint32_t use_bn, ReadU32(is));
  backbone.use_batchnorm = use_bn != 0;
  is.read(reinterpret_cast<char*>(&backbone.bn_eps), sizeof(backbone.bn_eps));
  is.read(reinterpret_cast<char*>(&backbone.bn_momentum),
          sizeof(backbone.bn_momentum));
  if (!is) return Status::DataLoss("truncated backbone config");

  PILOTE_ASSIGN_OR_RETURN(int64_t payload_size, ReadI64(is));
  if (payload_size < 0 || payload_size > (1LL << 32)) {
    return Status::DataLoss("implausible model payload size");
  }
  artifact.model_payload.resize(static_cast<size_t>(payload_size));
  is.read(artifact.model_payload.data(), payload_size);
  if (!is) return Status::DataLoss("truncated model payload");

  PILOTE_ASSIGN_OR_RETURN(Tensor mean, serialize::ReadTensor(is));
  PILOTE_ASSIGN_OR_RETURN(Tensor stddev, serialize::ReadTensor(is));
  artifact.scaler.SetState(std::move(mean), std::move(stddev));

  PILOTE_ASSIGN_OR_RETURN(int64_t num_old, ReadI64(is));
  if (num_old < 0 || num_old > 1 << 20) {
    return Status::DataLoss("implausible old-class count");
  }
  for (int64_t i = 0; i < num_old; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint32_t label, ReadU32(is));
    artifact.old_classes.push_back(static_cast<int>(label));
  }

  PILOTE_ASSIGN_OR_RETURN(int64_t num_classes, ReadI64(is));
  if (num_classes < 0 || num_classes > 1 << 20) {
    return Status::DataLoss("implausible support class count");
  }
  for (int64_t i = 0; i < num_classes; ++i) {
    PILOTE_ASSIGN_OR_RETURN(uint32_t label, ReadU32(is));
    PILOTE_ASSIGN_OR_RETURN(Tensor exemplars, serialize::ReadTensor(is));
    artifact.support.SetClassExemplars(static_cast<int>(label),
                                       std::move(exemplars));
  }
  return artifact;
}

}  // namespace core
}  // namespace pilote
