#include "core/exemplar_selector.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "core/embedding.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kRepresentative:
      return "representative";
    case SelectionStrategy::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<int64_t> HerdingSelect(const Tensor& embeddings, int64_t count) {
  PILOTE_CHECK_EQ(embeddings.rank(), 2);
  const int64_t n = embeddings.rows();
  const int64_t d = embeddings.cols();
  count = std::min(count, n);
  PILOTE_CHECK_GT(count, 0);

  Tensor mu = ColumnMean(embeddings);  // class prototype
  // running_sum accumulates the selected embeddings.
  Tensor running_sum = Tensor::Zeros(Shape::Vector(d));
  std::vector<bool> taken(static_cast<size_t>(n), false);
  std::vector<int64_t> selected;
  selected.reserve(static_cast<size_t>(count));

  for (int64_t k = 1; k <= count; ++k) {
    // argmin_x || mu - (running_sum + phi(x)) / k ||
    int64_t best = -1;
    float best_dist = std::numeric_limits<float>::max();
    const float inv_k = 1.0f / static_cast<float>(k);
    for (int64_t i = 0; i < n; ++i) {
      if (taken[static_cast<size_t>(i)]) continue;
      const float* e = embeddings.row(i);
      float dist = 0.0f;
      for (int64_t c = 0; c < d; ++c) {
        const float candidate_mean = (running_sum[c] + e[c]) * inv_k;
        const float diff = mu[c] - candidate_mean;
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    PILOTE_CHECK_GE(best, 0);
    taken[static_cast<size_t>(best)] = true;
    selected.push_back(best);
    Axpy(1.0f, RowAt(embeddings, best), running_sum);
  }
  return selected;
}

std::vector<int64_t> SelectExemplars(nn::Module& model,
                                     const Tensor& class_features,
                                     int64_t count,
                                     SelectionStrategy strategy, Rng& rng) {
  PILOTE_CHECK_EQ(class_features.rank(), 2);
  const int64_t n = class_features.rows();
  count = std::min(count, n);
  PILOTE_CHECK_GT(count, 0);
  switch (strategy) {
    case SelectionStrategy::kRepresentative: {
      Tensor embeddings = EmbedBatched(model, class_features);
      return HerdingSelect(embeddings, count);
    }
    case SelectionStrategy::kRandom: {
      std::vector<int> picked = rng.SampleWithoutReplacement(
          static_cast<int>(n), static_cast<int>(count));
      return std::vector<int64_t>(picked.begin(), picked.end());
    }
  }
  PILOTE_CHECK(false) << "unreachable";
  return {};
}

}  // namespace core
}  // namespace pilote
