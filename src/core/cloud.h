#ifndef PILOTE_CORE_CLOUD_H_
#define PILOTE_CORE_CLOUD_H_

#include <string>

#include "common/result.h"
#include "core/config.h"
#include "core/support_set.h"
#include "data/dataset.h"
#include "data/scaler.h"

namespace pilote {
namespace core {

// Everything the cloud ships to an edge device (MAGNETO Sec 3): the
// serialized pre-trained model, the feature scaler, and the exemplar
// support set. Copyable so one pre-training run can seed several edge
// learners (the paper evaluates all three models from the same
// pre-trained starting point).
struct CloudArtifact {
  nn::BackboneConfig backbone_config;
  std::string model_payload;   // serialize::SerializeModuleToString output
  data::StandardScaler scaler;
  SupportSet support;          // scaled old-class exemplar features
  std::vector<int> old_classes;

  // Payload size of the cloud->edge transfer in bytes.
  int64_t TransferBytes() const;
};

// Result of the cloud phase.
struct CloudPretrainResult {
  CloudArtifact artifact;
  TrainReport report;
};

// The cloud side of the pipeline: fits the scaler, pre-trains the siamese
// embedding model on the old-class corpus with balanced contrastive pairs,
// and herds the per-class exemplar support set (Algo 1, cloud part).
class CloudPretrainer {
 public:
  explicit CloudPretrainer(const PiloteConfig& config) : config_(config) {}

  // `d_old` holds raw (unscaled) feature rows of the initial classes.
  // Returns kInvalidArgument for an empty corpus, a single-class corpus
  // (contrastive pre-training needs negative pairs) or a feature width that
  // disagrees with the configured backbone.
  Result<CloudPretrainResult> Run(const data::Dataset& d_old);

 private:
  PiloteConfig config_;
};

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_CLOUD_H_
