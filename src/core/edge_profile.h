#ifndef PILOTE_CORE_EDGE_PROFILE_H_
#define PILOTE_CORE_EDGE_PROFILE_H_

#include <limits>
#include <string>

#include "core/edge_learner.h"

namespace pilote {
namespace core {

// Resource footprint of an edge deployment (the paper's Q2: storage and
// compute budget on the device).
struct EdgeProfileReport {
  int64_t model_parameters = 0;
  int64_t model_bytes = 0;          // parameters + buffers, float32
  int64_t support_exemplars = 0;
  int64_t support_bytes_fp32 = 0;
  int64_t support_bytes_fp16 = 0;
  int64_t support_bytes_int8 = 0;
  int64_t prototype_bytes = 0;
  double inference_ms_per_window = 0.0;  // scale + embed + NCM, mean
  double inference_p50_ms = 0.0;         // per-window latency percentiles
  double inference_p95_ms = 0.0;
  double inference_p99_ms = 0.0;
  double inference_p999_ms = 0.0;
  // Heap allocations per classified window (scale + embed + NCM),
  // measured via common/alloc_tracker.h. Steady-state churn, the edge
  // budget the hot-path lint enforces statically.
  double inference_allocs_per_window = 0.0;
  // Compiled-plan vs eager-tape execution, side by side over the same
  // probe rows (src/exec/). exec_plan_* stay NaN when the learner has no
  // live plan (capture disabled or unsupported); the eager columns are
  // always measured so the pair quantifies what compilation buys.
  bool exec_plan_live = false;
  double exec_plan_ms_per_window = std::numeric_limits<double>::quiet_NaN();
  double exec_eager_ms_per_window = 0.0;
  double exec_plan_allocs_per_window =
      std::numeric_limits<double>::quiet_NaN();
  double exec_eager_allocs_per_window = 0.0;
  // NaN until the learner has trained (ToString prints "n/a").
  double train_epoch_seconds = std::numeric_limits<double>::quiet_NaN();

  std::string ToString() const;
};

// Measures the learner's storage footprint and its per-window inference
// latency over `probe_features` (raw rows; more rows = tighter estimate).
// Each probe row is classified individually so the latency histogram holds
// true per-window samples. `last_report` supplies the per-epoch training
// time (pass nullptr if the learner never trained; the field stays NaN).
EdgeProfileReport ProfileEdge(const EdgeLearner& learner,
                              const Tensor& probe_features,
                              const TrainReport* last_report);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_EDGE_PROFILE_H_
