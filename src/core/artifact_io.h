#ifndef PILOTE_CORE_ARTIFACT_IO_H_
#define PILOTE_CORE_ARTIFACT_IO_H_

#include <string>

#include "common/result.h"
#include "core/cloud.h"

namespace pilote {
namespace core {

// Persistence for the full cloud artifact — the single file MAGNETO ships
// from the training cluster to a device.
//
// Format version 2 (current): magic "PLTA", version word, then five
// sections — backbone config, model payload, scaler state, old-class
// list, support set — each framed as [u32 tag][u64 size][u32 crc32]
// [bytes]. Saves serialize to memory and land via
// serialize::WriteFileAtomic, so an interrupted save never clobbers the
// previous artifact; loads verify every section CRC and report torn or
// bit-flipped files as kDataLoss, naming the damaged section.
//
// Version-1 files (sequential fields, no CRC) still load via a fallback
// parser keyed off the version word.
// Failpoints: "core/artifact/save", "core/artifact/load".
Status SaveArtifact(const std::string& path, const CloudArtifact& artifact);
Result<CloudArtifact> LoadArtifact(const std::string& path);

// Writes the legacy v1 layout. Test-only: exists so the compatibility
// suite can fabricate old files without keeping binary fixtures in-tree.
Status SaveArtifactV1ForTesting(const std::string& path,
                                const CloudArtifact& artifact);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_ARTIFACT_IO_H_
