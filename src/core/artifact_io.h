#ifndef PILOTE_CORE_ARTIFACT_IO_H_
#define PILOTE_CORE_ARTIFACT_IO_H_

#include <string>

#include "common/result.h"
#include "core/cloud.h"

namespace pilote {
namespace core {

// Persistence for the full cloud artifact — the single file MAGNETO ships
// from the training cluster to a device. Layout (versioned, little
// endian): backbone config, serialized model payload, scaler state and
// the per-class exemplar support set.
Status SaveArtifact(const std::string& path, const CloudArtifact& artifact);
Result<CloudArtifact> LoadArtifact(const std::string& path);

}  // namespace core
}  // namespace pilote

#endif  // PILOTE_CORE_ARTIFACT_IO_H_
