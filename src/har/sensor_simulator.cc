#include "har/sensor_simulator.h"

#include <cmath>

namespace pilote {
namespace har {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kGravityMs2 = 9.81;
// Earth magnetic field magnitude (uT), roughly.
constexpr double kEarthFieldUt = 45.0;

}  // namespace

bool SensorDrift::IsIdentity() const {
  for (int i = 0; i < 3; ++i) {
    if (accel_offset[i] != 0.0 || gyro_offset[i] != 0.0 ||
        mag_offset[i] != 0.0) {
      return false;
    }
  }
  return baro_offset == 0.0 && gait_freq_scale == 1.0 &&
         gait_amp_scale == 1.0 && speed_scale == 1.0 &&
         noise_floor_scale == 1.0;
}

SensorDrift SensorDrift::UserProfile(uint64_t user_id, double severity) {
  SensorDrift drift;
  if (severity == 0.0) return drift;
  // One private stream per user: the profile depends on (user_id,
  // severity) alone, never on who asked first.
  Rng rng(user_id ^ 0xA5C3D1E9F7B52468ULL);
  drift.gait_freq_scale = 1.0 + severity * rng.UniformDouble(-0.12, 0.12);
  drift.gait_amp_scale = 1.0 + severity * rng.UniformDouble(-0.25, 0.30);
  drift.speed_scale = 1.0 + severity * rng.UniformDouble(-0.15, 0.15);
  for (int i = 0; i < 3; ++i) {
    drift.accel_offset[i] = severity * rng.Gaussian(0.0, 0.25);
    drift.gyro_offset[i] = severity * rng.Gaussian(0.0, 0.04);
    drift.mag_offset[i] = severity * rng.Gaussian(0.0, 2.5);
  }
  drift.baro_offset = severity * rng.Gaussian(0.0, 1.0);
  drift.noise_floor_scale = 1.0 + severity * rng.UniformDouble(0.0, 0.4);
  return drift;
}

void SensorSimulator::SetDrift(const SensorDrift& drift) {
  drift_ = drift;
  drift_active_ = !drift_.IsIdentity();
}

SensorSimulator::Episode SensorSimulator::DrawEpisode(Activity activity) {
  Episode e;
  // Carrying placement: a discrete mode with its own attitude band, axis
  // profile and light/proximity signature. Driving allows mount or
  // pocket; other activities pocket, hand or backpack.
  if (activity == Activity::kDrive) {
    e.placement = rng_.Bernoulli(0.6) ? Placement::kMount : Placement::kPocket;
  } else {
    const int pick = rng_.UniformInt(0, 2);
    e.placement = pick == 0   ? Placement::kPocket
                  : pick == 1 ? Placement::kHand
                              : Placement::kBackpack;
  }
  auto jitter_axis = [this](double v) {
    return std::max(0.05, v + rng_.Gaussian(0.0, 0.08));
  };
  switch (e.placement) {
    case Placement::kPocket:
      // Sideways in a trouser pocket: gravity mostly along x, screen
      // covered (proximity ~0, little light).
      e.roll = rng_.UniformDouble(1.1, 1.7);
      e.pitch = rng_.UniformDouble(-0.4, 0.4);
      e.axis_x = jitter_axis(0.85);
      e.axis_y = jitter_axis(0.3);
      e.axis_z = jitter_axis(0.4);
      e.light = rng_.UniformDouble(0.0, 30.0);
      e.proximity = rng_.UniformDouble(0.0, 1.0);
      break;
    case Placement::kHand:
      // Held tilted toward the face; screen uncovered.
      e.roll = rng_.UniformDouble(-0.3, 0.3);
      e.pitch = rng_.UniformDouble(-0.9, -0.3);
      e.axis_x = jitter_axis(0.2);
      e.axis_y = jitter_axis(0.25);
      e.axis_z = jitter_axis(0.9);
      e.light = rng_.UniformDouble(80.0, 900.0);
      e.proximity = rng_.UniformDouble(4.0, 8.0);
      break;
    case Placement::kBackpack:
      // Upright-ish in a bag; dark, uncovered sensor.
      e.roll = rng_.UniformDouble(-0.4, 0.4);
      e.pitch = rng_.UniformDouble(0.9, 1.5);
      e.axis_x = jitter_axis(0.3);
      e.axis_y = jitter_axis(0.8);
      e.axis_z = jitter_axis(0.45);
      e.light = rng_.UniformDouble(0.0, 15.0);
      e.proximity = rng_.UniformDouble(3.0, 8.0);
      break;
    case Placement::kMount:
      // Windshield mount: near-vertical, bright cabin, vibration couples
      // into the z axis.
      e.roll = rng_.UniformDouble(-0.15, 0.15);
      e.pitch = rng_.UniformDouble(-1.5, -1.0);
      e.axis_x = jitter_axis(0.25);
      e.axis_y = jitter_axis(0.35);
      e.axis_z = jitter_axis(0.85);
      e.light = rng_.UniformDouble(40.0, 600.0);
      e.proximity = rng_.UniformDouble(4.0, 8.0);
      break;
  }
  e.yaw = rng_.UniformDouble(0.0, kTwoPi);
  e.gait_phase = rng_.UniformDouble(0.0, kTwoPi);
  e.vib_phase = rng_.UniformDouble(0.0, kTwoPi);
  e.baro = rng_.UniformDouble(1000.0, 1025.0);
  e.baro_drift = rng_.Gaussian(0.0, 0.02);
  // Roughly a third of episodes happen without a GPS fix (indoors, urban
  // canyons): the speed channel then carries no signal.
  e.gps_fix = rng_.Bernoulli(0.65);
  e.noise_scale = rng_.UniformDouble(0.8, 2.2);

  // Gait parameters are driven by a shared per-episode intensity u in
  // [0, 1] so they co-vary realistically: a slow run (low u) overlaps a
  // brisk walk (high u) on frequency, amplitude, speed AND rotation at
  // once — the paper's Run/Walk confusion pair (Figure 4). What still
  // separates the overlap zone is the sharper foot-strike impact and
  // stronger harmonic content of running — subtle cues an adapted model
  // can pick up but a frozen 4-class embedding underweights.
  const double u = rng_.UniformDouble(0.0, 1.0);
  auto jitter = [this](double v) {
    return v * rng_.UniformDouble(0.92, 1.08);
  };

  switch (activity) {
    case Activity::kStill:
      // "Still" includes fidgeting, typing, shifting weight: a weak,
      // slow pseudo-gait that overlaps the bottom of the Walk range.
      e.gait_freq = rng_.UniformDouble(0.4, 1.7);
      e.gait_amp = rng_.UniformDouble(0.0, 1.1);
      e.gait_harmonic = rng_.UniformDouble(0.0, 0.3);
      e.gait_impact = rng_.UniformDouble(0.0, 0.2);
      e.acc_noise = rng_.UniformDouble(0.02, 0.12);
      e.gyro_amp = rng_.UniformDouble(0.005, 0.08);
      e.speed = std::abs(rng_.Gaussian(0.0, 0.05));
      e.sway_freq = rng_.UniformDouble(0.1, 0.3);
      e.sway_amp = rng_.UniformDouble(0.0, 0.08);
      break;
    case Activity::kWalk:
      e.gait_freq = jitter(1.5 + 1.2 * u);   // 1.4 .. 2.9
      e.gait_amp = jitter(0.7 + 2.2 * u);    // 0.6 .. 3.1
      e.gait_harmonic = rng_.UniformDouble(0.15, 0.4);
      e.gait_impact = rng_.UniformDouble(0.08, 0.38);
      e.speed = jitter(0.6 + 1.9 * u);       // 0.55 .. 2.7
      e.gyro_amp = jitter(0.15 + 0.55 * u);
      e.acc_noise = rng_.UniformDouble(0.1, 0.35);
      e.sway_freq = rng_.UniformDouble(0.3, 0.7);
      e.sway_amp = rng_.UniformDouble(0.1, 0.35);
      break;
    case Activity::kRun:
      // At matched amplitude a run has a LOWER cadence than a brisk walk
      // and a much sharper foot strike — the learnable cues that separate
      // the overlap zone (a frozen 4-class embedding underweights them;
      // an adapted model can exploit them).
      e.gait_freq = jitter(1.9 + 1.0 * u);   // 1.75 .. 3.15
      e.gait_amp = jitter(1.9 + 4.0 * u);    // 1.75 .. 6.4
      e.gait_harmonic = rng_.UniformDouble(0.45, 0.8);
      e.gait_impact = rng_.UniformDouble(0.45, 0.9);
      e.speed = jitter(1.2 + 3.2 * u);       // 1.1 .. 4.75
      e.gyro_amp = jitter(0.3 + 0.9 * u);
      e.acc_noise = rng_.UniformDouble(0.15, 0.5);
      e.sway_freq = rng_.UniformDouble(0.4, 0.8);
      e.sway_amp = rng_.UniformDouble(0.15, 0.5);
      break;
    case Activity::kDrive:
      // Engine + road vibration: high frequency, small amplitude; high
      // speed; magnetometer distorted by the car body.
      e.vib_freq = rng_.UniformDouble(16.0, 42.0);
      e.vib_amp = rng_.UniformDouble(0.08, 0.55);
      e.speed = rng_.UniformDouble(4.0, 30.0);
      e.gyro_amp = rng_.UniformDouble(0.01, 0.1);
      e.acc_noise = rng_.UniformDouble(0.05, 0.15);
      e.sway_freq = rng_.UniformDouble(0.15, 0.5);
      e.sway_amp = rng_.UniformDouble(0.1, 0.5);
      e.mag_distortion = rng_.UniformDouble(10.0, 35.0);
      break;
    case Activity::kEscooter:
      // Road buzz through the deck: mid-band vibration, moderate speed,
      // standing posture (stable gravity), some steering activity.
      e.vib_freq = rng_.UniformDouble(8.0, 22.0);
      e.vib_amp = rng_.UniformDouble(0.4, 1.6);
      e.speed = rng_.UniformDouble(3.0, 8.0);
      e.gyro_amp = rng_.UniformDouble(0.1, 0.35);
      e.acc_noise = rng_.UniformDouble(0.1, 0.3);
      e.sway_freq = rng_.UniformDouble(0.2, 0.6);
      e.sway_amp = rng_.UniformDouble(0.1, 0.4);
      e.mag_distortion = rng_.UniformDouble(0.0, 8.0);
      break;
  }
  // Gait/noise drift distorts the drawn episode AFTER all randomness is
  // consumed, so an installed drift never shifts the RNG stream: clearing
  // it resumes the undrifted sequence exactly.
  if (drift_active_) {
    e.gait_freq *= drift_.gait_freq_scale;
    e.gait_amp *= drift_.gait_amp_scale;
    e.speed *= drift_.speed_scale;
    e.noise_scale *= drift_.noise_floor_scale;
  }
  return e;
}

Tensor SensorSimulator::GenerateWindow(Activity activity) {
  const Episode e = DrawEpisode(activity);
  Tensor window(Shape::Matrix(kWindowLength, kNumChannels));

  // Gravity direction in device frame from roll/pitch.
  const double gx = -std::sin(e.pitch) * kGravityMs2;
  const double gy = std::sin(e.roll) * std::cos(e.pitch) * kGravityMs2;
  const double gz = std::cos(e.roll) * std::cos(e.pitch) * kGravityMs2;

  // Earth magnetic field rotated by yaw (flat-field approximation), then
  // offset by vehicle distortion.
  const double mx = kEarthFieldUt * std::cos(e.yaw) + e.mag_distortion;
  const double my = kEarthFieldUt * std::sin(e.yaw);
  const double mz = -30.0 + 0.3 * e.mag_distortion;

  // Distribution of the dynamic signal across device axes, fixed by the
  // carrying placement for this episode.
  const double axis_x = e.axis_x;
  const double axis_y = e.axis_y;
  const double axis_z = e.axis_z;

  const double dt = 1.0 / kSampleRateHz;
  double yaw_t = e.yaw;
  // Slow yaw wander (turning while moving).
  const double yaw_rate = rng_.Gaussian(0.0, e.gyro_amp * 0.3);

  for (int t = 0; t < kWindowLength; ++t) {
    const double time = t * dt;
    float* row = window.row(t);

    // ---- Dynamic (linear) acceleration ----
    double dynamic = 0.0;
    if (e.gait_amp > 0.0) {
      const double phase = kTwoPi * e.gait_freq * time + e.gait_phase;
      // Fundamental + second harmonic + impact spikes near foot strike.
      dynamic += e.gait_amp * std::sin(phase);
      dynamic += e.gait_amp * e.gait_harmonic * std::sin(2.0 * phase);
      const double strike = std::sin(phase);
      if (strike > 0.95) dynamic += e.gait_amp * e.gait_impact * 2.2;
    }
    if (e.vib_amp > 0.0) {
      const double phase = kTwoPi * e.vib_freq * time + e.vib_phase;
      // Narrow-band vibration with amplitude jitter.
      dynamic += e.vib_amp * std::sin(phase) *
                 (1.0 + 0.3 * rng_.Gaussian());
    }
    if (e.sway_amp > 0.0) {
      dynamic += e.sway_amp * std::sin(kTwoPi * e.sway_freq * time);
    }

    const double acc_sigma = e.acc_noise * e.noise_scale;
    const double lin_x = axis_x * dynamic + rng_.Gaussian(0.0, acc_sigma);
    const double lin_y = axis_y * dynamic + rng_.Gaussian(0.0, acc_sigma);
    const double lin_z = axis_z * dynamic + rng_.Gaussian(0.0, acc_sigma);

    row[kAccelerometer + 0] = static_cast<float>(gx + lin_x);
    row[kAccelerometer + 1] = static_cast<float>(gy + lin_y);
    row[kAccelerometer + 2] = static_cast<float>(gz + lin_z);
    row[kLinearAcceleration + 0] = static_cast<float>(lin_x);
    row[kLinearAcceleration + 1] = static_cast<float>(lin_y);
    row[kLinearAcceleration + 2] = static_cast<float>(lin_z);
    row[kGravity + 0] = static_cast<float>(gx + rng_.Gaussian(0.0, 0.01));
    row[kGravity + 1] = static_cast<float>(gy + rng_.Gaussian(0.0, 0.01));
    row[kGravity + 2] = static_cast<float>(gz + rng_.Gaussian(0.0, 0.01));

    // ---- Gyroscope: rotational counterpart of the dynamic signal ----
    const double rot_base =
        e.gait_amp > 0.0
            ? std::cos(kTwoPi * e.gait_freq * time + e.gait_phase)
            : std::sin(kTwoPi * std::max(e.sway_freq, 0.1) * time);
    row[kGyroscope + 0] = static_cast<float>(
        e.gyro_amp * rot_base * 0.8 + rng_.Gaussian(0.0, e.gyro_amp * 0.2 + 0.005));
    row[kGyroscope + 1] = static_cast<float>(
        e.gyro_amp * rot_base * 0.5 + rng_.Gaussian(0.0, e.gyro_amp * 0.2 + 0.005));
    row[kGyroscope + 2] = static_cast<float>(
        yaw_rate + rng_.Gaussian(0.0, e.gyro_amp * 0.15 + 0.005));

    // ---- Magnetometer ----
    yaw_t += yaw_rate * dt;
    row[kMagnetometer + 0] = static_cast<float>(
        kEarthFieldUt * std::cos(yaw_t) + e.mag_distortion +
        rng_.Gaussian(0.0, 0.8));
    row[kMagnetometer + 1] = static_cast<float>(
        kEarthFieldUt * std::sin(yaw_t) + rng_.Gaussian(0.0, 0.8));
    row[kMagnetometer + 2] =
        static_cast<float>(mz + rng_.Gaussian(0.0, 0.8));
    (void)mx;
    (void)my;

    // ---- Orientation (roll/pitch wobble follows the gait) ----
    const double wobble =
        0.03 * dynamic / (1.0 + std::abs(dynamic)) + rng_.Gaussian(0.0, 0.004);
    row[kOrientation + 0] = static_cast<float>(e.roll + wobble);
    row[kOrientation + 1] = static_cast<float>(e.pitch + wobble * 0.7);
    row[kOrientation + 2] = static_cast<float>(yaw_t);

    // ---- Scalar channels ----
    row[kBarometer] = static_cast<float>(e.baro + e.baro_drift * time +
                                         rng_.Gaussian(0.0, 0.01));
    row[kAmbientLight] =
        static_cast<float>(e.light * (1.0 + 0.02 * rng_.Gaussian()));
    row[kProximity] =
        static_cast<float>(e.proximity + rng_.Gaussian(0.0, 0.05));
    // GPS speed updates slowly; without a fix it reads ~0 for any motion.
    const double reported_speed = e.gps_fix ? e.speed : 0.0;
    row[kGpsSpeed] = static_cast<float>(std::max(
        0.0,
        reported_speed + rng_.Gaussian(0.0, 0.05 * reported_speed + 0.02)));

    // ---- Recalibration drift: raw-channel bias, no RNG consumed ----
    if (drift_active_) {
      for (int axis = 0; axis < 3; ++axis) {
        row[kAccelerometer + axis] = static_cast<float>(
            row[kAccelerometer + axis] + drift_.accel_offset[axis]);
        row[kGyroscope + axis] = static_cast<float>(
            row[kGyroscope + axis] + drift_.gyro_offset[axis]);
        row[kMagnetometer + axis] = static_cast<float>(
            row[kMagnetometer + axis] + drift_.mag_offset[axis]);
      }
      row[kBarometer] =
          static_cast<float>(row[kBarometer] + drift_.baro_offset);
    }
  }
  return window;
}

}  // namespace har
}  // namespace pilote
