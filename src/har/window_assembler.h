#ifndef PILOTE_HAR_WINDOW_ASSEMBLER_H_
#define PILOTE_HAR_WINDOW_ASSEMBLER_H_

#include "tensor/tensor.h"
#include "common/hot_path.h"

namespace pilote {
namespace har {

// Streams samples into a preallocated [window_length, kNumChannels] window
// and runs the paper's per-window preprocessing (denoise + feature
// extraction) when the window fills. This is the zero-allocation ingest
// primitive of the serve hot loop: the window and denoise scratch are
// allocated once at construction, so the steady state (one Append per
// sample) never touches the heap. Shared by core::StreamingClassifier and
// serve::Session so the window semantics cannot diverge.
//
// Produces the exact tensors of the original assemble-by-concatenation
// path: ConcatRows of [1, c] sample rows is the same [t, c] matrix this
// class fills in place, and the denoise/feature kernels are the same
// bit-identical implementations.
class WindowAssembler {
 public:
  WindowAssembler(int window_length, int denoise_half_width);

  // Appends one [kNumChannels] sample. When the sample completes the
  // window, writes the [1, kNumFeatures] raw feature row into *features
  // (resizing it only on first use) and returns true; the assembler is
  // then empty, ready for the next window.
  PILOTE_HOT_PATH bool Append(const Tensor& sample, Tensor* features);

  // Samples buffered toward the in-flight window.
  int pending() const { return cursor_; }
  int window_length() const { return window_length_; }

  // Read-only view of the samples buffered so far (pending() rows of the
  // ring). Generation-checked in debug builds: the view goes stale if the
  // assembler's window buffer is ever reallocated or reassigned.
  ConstSpan<float> pending_samples() const {
    return window_.span().first(
        static_cast<size_t>(cursor_) * static_cast<size_t>(window_.cols()));
  }

 private:
  const int window_length_;
  const int half_width_;
  int cursor_ = 0;
  Tensor window_;    // [window_length, kNumChannels], filled in place
  Tensor denoised_;  // scratch for the smoothed window
};

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_WINDOW_ASSEMBLER_H_
