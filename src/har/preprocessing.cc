#include "har/preprocessing.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "har/feature_extractor.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace har {

Tensor DenoiseMovingAverage(const Tensor& recording, int half_width) {
  PILOTE_CHECK_EQ(recording.rank(), 2);
  PILOTE_CHECK_GE(half_width, 0);
  if (half_width == 0) return recording;
  Tensor smoothed;
  DenoiseMovingAverageInto(recording, half_width, &smoothed);
  return smoothed;
}

void DenoiseMovingAverageInto(const Tensor& recording, int half_width,
                              Tensor* out) {
  PILOTE_CHECK_EQ(recording.rank(), 2);
  PILOTE_CHECK_GE(half_width, 0);
  PILOTE_CHECK(out != nullptr);
  PILOTE_CHECK(out != &recording) << "in-place smoothing would corrupt input";
  if (out->shape() != recording.shape()) {
    *out = Tensor(recording.shape());  // hotpath-ok: first window only
  }
  if (half_width == 0) {
    ConstSpan<float> src = recording.span();
    Span<float> dst = out->span();
    PILOTE_DCHECK(src.size() == dst.size());
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
    return;
  }
  const int64_t t_len = recording.rows();
  const int64_t channels = recording.cols();
  for (int64_t t = 0; t < t_len; ++t) {
    const int64_t begin = std::max<int64_t>(0, t - half_width);
    const int64_t end = std::min<int64_t>(t_len - 1, t + half_width);
    const float inv_n = 1.0f / static_cast<float>(end - begin + 1);
    Span<float> out_row = out->row_span(t);
    for (int64_t c = 0; c < channels; ++c) {
      float acc = 0.0f;
      for (int64_t s = begin; s <= end; ++s) acc += recording(s, c);
      out_row[static_cast<size_t>(c)] = acc * inv_n;
    }
  }
}

Result<std::vector<Tensor>> SegmentWindows(const Tensor& recording,
                                           int window_length, int stride) {
  PILOTE_CHECK_EQ(recording.rank(), 2);
  PILOTE_CHECK_GT(window_length, 0);
  PILOTE_CHECK_GT(stride, 0);
  if (recording.rows() < window_length) {
    return Status::InvalidArgument(
        "recording shorter than one window: " +
        std::to_string(recording.rows()) + " < " +
        std::to_string(window_length));
  }
  std::vector<Tensor> windows;
  for (int64_t begin = 0; begin + window_length <= recording.rows();
       begin += stride) {
    windows.push_back(SliceRows(recording, begin, begin + window_length));
  }
  return windows;
}

Recording RecordContinuous(SensorSimulator& simulator, Activity activity,
                           int num_windows) {
  PILOTE_CHECK_GT(num_windows, 0);
  std::vector<Tensor> chunks;
  int remaining = num_windows;
  while (remaining > 0) {
    // One episode spans 1-4 consecutive windows: a real stream changes
    // its episode parameters (placement, intensity) only occasionally.
    const int span =
        std::min(remaining, simulator.rng().UniformInt(1, 4));
    Tensor window = simulator.GenerateWindow(activity);
    for (int i = 0; i < span; ++i) {
      // Re-generate per window but within the same episode family is not
      // exposed by the simulator; approximate stream continuity by
      // repeating the episode draw (windows stay i.i.d. in features,
      // which is what the downstream pipeline assumes).
      chunks.push_back(i == 0 ? window
                              : simulator.GenerateWindow(activity));
    }
    remaining -= span;
  }
  Recording recording;
  recording.samples = ConcatRows(chunks);
  recording.activity = activity;
  return recording;
}

Result<Tensor> PreprocessRecording(const Tensor& recording,
                                   const PreprocessOptions& options) {
  Tensor denoised = DenoiseMovingAverage(recording, options.denoise_half_width);
  PILOTE_ASSIGN_OR_RETURN(
      std::vector<Tensor> windows,
      SegmentWindows(denoised, options.window_length, options.stride));
  return ExtractFeaturesBatch(windows);
}

}  // namespace har
}  // namespace pilote
