#ifndef PILOTE_HAR_HAR_DATASET_H_
#define PILOTE_HAR_HAR_DATASET_H_

#include <vector>

#include "data/dataset.h"
#include "har/activity.h"
#include "har/sensor_simulator.h"

namespace pilote {
namespace har {

// End-to-end generator: simulated sensor windows -> 80-d feature vectors
// labeled by activity. This is the repository's stand-in for the paper's
// collected corpus (Sec 6.1.1; ~200k records over 5 activities).
class HarDataGenerator {
 public:
  explicit HarDataGenerator(uint64_t seed) : simulator_(seed) {}

  // `count` feature vectors of one activity.
  data::Dataset Generate(Activity activity, int64_t count);

  // `per_class` feature vectors of each of the given activities
  // (all five when `activities` is empty).
  data::Dataset GenerateBalanced(int64_t per_class,
                                 std::vector<Activity> activities = {});

  SensorSimulator& simulator() { return simulator_; }

 private:
  SensorSimulator simulator_;
};

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_HAR_DATASET_H_
