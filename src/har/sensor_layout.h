#ifndef PILOTE_HAR_SENSOR_LAYOUT_H_
#define PILOTE_HAR_SENSOR_LAYOUT_H_

#include <array>
#include <string_view>

namespace pilote {
namespace har {

// Channel layout of the simulated phone: 6 three-axis sensors (18 channels)
// followed by 4 scalar sensors, for the paper's 22 mobile-sensor channels
// sampled at 120 Hz in 1-second windows (Sec 6.1.1).
inline constexpr int kNumChannels = 22;
inline constexpr int kNumTriAxisSensors = 6;
inline constexpr int kNumTriAxisChannels = 18;
inline constexpr int kSampleRateHz = 120;
inline constexpr int kWindowLength = 120;  // one second

// Tri-axis sensor base channel indices.
inline constexpr int kAccelerometer = 0;        // includes gravity
inline constexpr int kGyroscope = 3;
inline constexpr int kMagnetometer = 6;
inline constexpr int kLinearAcceleration = 9;   // gravity-compensated
inline constexpr int kGravity = 12;
inline constexpr int kOrientation = 15;         // roll/pitch/yaw (rad)

// Scalar channels.
inline constexpr int kBarometer = 18;           // hPa
inline constexpr int kAmbientLight = 19;        // lux (log-scale-ish)
inline constexpr int kProximity = 20;           // cm
inline constexpr int kGpsSpeed = 21;            // m/s

inline constexpr std::array<std::string_view, kNumChannels> kChannelNames = {
    "acc_x",  "acc_y",  "acc_z",   "gyro_x", "gyro_y", "gyro_z",
    "mag_x",  "mag_y",  "mag_z",   "lin_x",  "lin_y",  "lin_z",
    "grav_x", "grav_y", "grav_z",  "roll",   "pitch",  "yaw",
    "baro",   "light",  "proximity", "gps_speed"};

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_SENSOR_LAYOUT_H_
