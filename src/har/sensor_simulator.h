#ifndef PILOTE_HAR_SENSOR_SIMULATOR_H_
#define PILOTE_HAR_SENSOR_SIMULATOR_H_

#include "common/rng.h"
#include "har/activity.h"
#include "har/sensor_layout.h"
#include "tensor/tensor.h"

namespace pilote {
namespace har {

// Persistent distortion of the simulated sensor stream, modeling the
// between-deployment changes a fleet sees over a device's lifetime:
// sensor recalibration bias after a firmware update, a user's gait
// changing (injury, fatigue, footwear, or simply a different user on the
// same account), and the noise floor creeping up as hardware ages.
//
// The identity drift (all offsets 0, all scales 1) is guaranteed to leave
// the generated stream BIT-IDENTICAL to an undrifted simulator with the
// same seed: drift application never consumes randomness and is skipped
// entirely when IsIdentity() holds, so scenario scripts can splice drift
// events into a stream without perturbing the episodes before them.
struct SensorDrift {
  // Additive recalibration offsets on the raw channel groups.
  double accel_offset[3] = {0.0, 0.0, 0.0};  // m/s^2, accelerometer axes
  double gyro_offset[3] = {0.0, 0.0, 0.0};   // rad/s
  double mag_offset[3] = {0.0, 0.0, 0.0};    // uT
  double baro_offset = 0.0;                  // hPa
  // Multiplicative shift of the per-episode gait draw (cadence, vertical
  // amplitude, locomotion speed). Only gait-driven activities move.
  double gait_freq_scale = 1.0;
  double gait_amp_scale = 1.0;
  double speed_scale = 1.0;
  // Multiplier on every per-episode noise floor (sensor aging).
  double noise_floor_scale = 1.0;

  bool IsIdentity() const;

  // Deterministic per-user idiosyncrasy profile derived from `user_id`:
  // mild gait/calibration deviations whose magnitude grows with
  // `severity` (0 = identity, 1 = a clearly distinct user). The same
  // (user_id, severity) always yields the same profile, so per-user
  // scenarios are exactly reproducible.
  static SensorDrift UserProfile(uint64_t user_id, double severity);
};

// Stochastic generative model of the 22-channel phone sensor stream,
// substituting for the paper's proprietary data collection campaign.
//
// Each call to GenerateWindow draws a fresh "episode": activity-specific
// physical parameters (gait frequency/amplitude, vibration spectrum, speed,
// device orientation) are sampled from per-activity distributions, then a
// 1-second window of kWindowLength samples is synthesized at 120 Hz.
//
// Design goals (matching the paper's evaluation structure):
//  * 'Run' and 'Walk' share the same gait process with overlapping
//    frequency/amplitude ranges, so they are the hardest pair to separate
//    (the paper's Figure 4 confusion structure).
//  * 'Drive' and 'E-scooter' are vibration-dominated and distinguishable
//    mostly by speed and vibration band, making them the easier classes.
//  * 'Still' is a near-constant signal with orientation variety.
class SensorSimulator {
 public:
  explicit SensorSimulator(uint64_t seed) : rng_(seed) {}

  // Synthesizes one window: [kWindowLength, kNumChannels].
  Tensor GenerateWindow(Activity activity);

  // Installs a drift that distorts every subsequent window (episodes in
  // flight are unaffected; each window draws a fresh episode). Replaces,
  // not composes: SetDrift(a) then SetDrift(b) leaves only b active.
  // Setting the identity drift restores the undrifted stream exactly.
  void SetDrift(const SensorDrift& drift);
  void ClearDrift() { SetDrift(SensorDrift{}); }
  const SensorDrift& drift() const { return drift_; }

  Rng& rng() { return rng_; }

 private:
  // Where the phone is carried during an episode. Each placement has a
  // distinct attitude, dynamic-axis profile and light/proximity signature,
  // making every activity class multimodal — a small exemplar cache
  // undercovers the modes, as a real support set undercovers real data.
  enum class Placement { kPocket, kHand, kBackpack, kMount };

  // Per-window episode parameters shared across channels.
  struct Episode {
    Placement placement = Placement::kHand;
    // Device attitude (radians); gravity projects through these.
    double roll = 0.0;
    double pitch = 0.0;
    double yaw = 0.0;
    // Projection of the dynamic (gait/vibration) signal onto device axes;
    // placement-dependent.
    double axis_x = 0.2;
    double axis_y = 0.2;
    double axis_z = 0.9;
    // Gait component (Walk/Run): dominant frequency (Hz) and vertical
    // amplitude (m/s^2); zero amplitude disables it.
    double gait_freq = 0.0;
    double gait_amp = 0.0;
    double gait_phase = 0.0;
    // Second-harmonic relative strength of the gait.
    double gait_harmonic = 0.0;
    // Foot-strike impact strength relative to the gait amplitude: the
    // subtle cue separating a slow run from a brisk walk.
    double gait_impact = 0.0;
    // Vibration component (Drive/E-scooter): center frequency and RMS amp.
    double vib_freq = 0.0;
    double vib_amp = 0.0;
    double vib_phase = 0.0;
    // Body sway (low frequency, all moving activities).
    double sway_freq = 0.0;
    double sway_amp = 0.0;
    // Locomotion speed reported by GPS (m/s). `gps_fix` models indoor /
    // urban-canyon episodes where the speed channel reads ~0 regardless
    // of the true motion.
    double speed = 0.0;
    bool gps_fix = true;
    // Per-episode sensor-quality multiplier on all noise floors (device
    // and placement vary between recordings).
    double noise_scale = 1.0;
    // Rotation intensity for the gyroscope (rad/s RMS).
    double gyro_amp = 0.0;
    // White-noise floor on the accelerometer (m/s^2).
    double acc_noise = 0.0;
    // Magnetic distortion offset (uT) — vehicles distort the field.
    double mag_distortion = 0.0;
    // Ambient light (lux) and proximity (cm) levels.
    double light = 0.0;
    double proximity = 0.0;
    // Barometric baseline (hPa) and per-second drift.
    double baro = 1013.0;
    double baro_drift = 0.0;
  };

  Episode DrawEpisode(Activity activity);

  Rng rng_;
  SensorDrift drift_;
  // Cached !drift_.IsIdentity(): the hot generate loop branches on a bool
  // instead of re-comparing the whole struct per window.
  bool drift_active_ = false;
};

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_SENSOR_SIMULATOR_H_
