#ifndef PILOTE_HAR_SENSOR_SIMULATOR_H_
#define PILOTE_HAR_SENSOR_SIMULATOR_H_

#include "common/rng.h"
#include "har/activity.h"
#include "har/sensor_layout.h"
#include "tensor/tensor.h"

namespace pilote {
namespace har {

// Stochastic generative model of the 22-channel phone sensor stream,
// substituting for the paper's proprietary data collection campaign.
//
// Each call to GenerateWindow draws a fresh "episode": activity-specific
// physical parameters (gait frequency/amplitude, vibration spectrum, speed,
// device orientation) are sampled from per-activity distributions, then a
// 1-second window of kWindowLength samples is synthesized at 120 Hz.
//
// Design goals (matching the paper's evaluation structure):
//  * 'Run' and 'Walk' share the same gait process with overlapping
//    frequency/amplitude ranges, so they are the hardest pair to separate
//    (the paper's Figure 4 confusion structure).
//  * 'Drive' and 'E-scooter' are vibration-dominated and distinguishable
//    mostly by speed and vibration band, making them the easier classes.
//  * 'Still' is a near-constant signal with orientation variety.
class SensorSimulator {
 public:
  explicit SensorSimulator(uint64_t seed) : rng_(seed) {}

  // Synthesizes one window: [kWindowLength, kNumChannels].
  Tensor GenerateWindow(Activity activity);

  Rng& rng() { return rng_; }

 private:
  // Where the phone is carried during an episode. Each placement has a
  // distinct attitude, dynamic-axis profile and light/proximity signature,
  // making every activity class multimodal — a small exemplar cache
  // undercovers the modes, as a real support set undercovers real data.
  enum class Placement { kPocket, kHand, kBackpack, kMount };

  // Per-window episode parameters shared across channels.
  struct Episode {
    Placement placement = Placement::kHand;
    // Device attitude (radians); gravity projects through these.
    double roll = 0.0;
    double pitch = 0.0;
    double yaw = 0.0;
    // Projection of the dynamic (gait/vibration) signal onto device axes;
    // placement-dependent.
    double axis_x = 0.2;
    double axis_y = 0.2;
    double axis_z = 0.9;
    // Gait component (Walk/Run): dominant frequency (Hz) and vertical
    // amplitude (m/s^2); zero amplitude disables it.
    double gait_freq = 0.0;
    double gait_amp = 0.0;
    double gait_phase = 0.0;
    // Second-harmonic relative strength of the gait.
    double gait_harmonic = 0.0;
    // Foot-strike impact strength relative to the gait amplitude: the
    // subtle cue separating a slow run from a brisk walk.
    double gait_impact = 0.0;
    // Vibration component (Drive/E-scooter): center frequency and RMS amp.
    double vib_freq = 0.0;
    double vib_amp = 0.0;
    double vib_phase = 0.0;
    // Body sway (low frequency, all moving activities).
    double sway_freq = 0.0;
    double sway_amp = 0.0;
    // Locomotion speed reported by GPS (m/s). `gps_fix` models indoor /
    // urban-canyon episodes where the speed channel reads ~0 regardless
    // of the true motion.
    double speed = 0.0;
    bool gps_fix = true;
    // Per-episode sensor-quality multiplier on all noise floors (device
    // and placement vary between recordings).
    double noise_scale = 1.0;
    // Rotation intensity for the gyroscope (rad/s RMS).
    double gyro_amp = 0.0;
    // White-noise floor on the accelerometer (m/s^2).
    double acc_noise = 0.0;
    // Magnetic distortion offset (uT) — vehicles distort the field.
    double mag_distortion = 0.0;
    // Ambient light (lux) and proximity (cm) levels.
    double light = 0.0;
    double proximity = 0.0;
    // Barometric baseline (hPa) and per-second drift.
    double baro = 1013.0;
    double baro_drift = 0.0;
  };

  Episode DrawEpisode(Activity activity);

  Rng rng_;
};

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_SENSOR_SIMULATOR_H_
