#include "har/window_assembler.h"

#include <cstring>

#include "common/macros.h"
#include "har/feature_extractor.h"
#include "har/preprocessing.h"
#include "har/sensor_layout.h"

namespace pilote {
namespace har {

WindowAssembler::WindowAssembler(int window_length, int denoise_half_width)
    : window_length_(window_length), half_width_(denoise_half_width) {
  PILOTE_CHECK_GT(window_length, 0);
  PILOTE_CHECK_GE(denoise_half_width, 0);
  window_ = Tensor(Shape::Matrix(window_length, kNumChannels));
}

bool WindowAssembler::Append(const Tensor& sample, Tensor* features) {
  PILOTE_CHECK_EQ(sample.rank(), 1);
  PILOTE_CHECK_EQ(sample.dim(0), kNumChannels);
  PILOTE_CHECK(features != nullptr);
  Span<float> slot = window_.row_span(cursor_);
  PILOTE_DCHECK(sample.numel() == static_cast<int64_t>(slot.size()));
  std::memcpy(slot.data(), sample.data(), slot.size() * sizeof(float));
  ++cursor_;
  if (cursor_ < window_length_) return false;
  cursor_ = 0;
  if (half_width_ > 0) {
    DenoiseMovingAverageInto(window_, half_width_, &denoised_);
    ExtractFeaturesInto(denoised_, features);
  } else {
    ExtractFeaturesInto(window_, features);
  }
  return true;
}

}  // namespace har
}  // namespace pilote
