#ifndef PILOTE_HAR_ACTIVITY_H_
#define PILOTE_HAR_ACTIVITY_H_

#include <string_view>
#include <vector>

#include "common/macros.h"

namespace pilote {
namespace har {

// The five activities of the paper's data collection campaign (Sec 6.1.1).
enum class Activity : int {
  kDrive = 0,
  kEscooter = 1,
  kRun = 2,
  kStill = 3,
  kWalk = 4,
};

inline constexpr int kNumActivities = 5;

inline std::string_view ActivityName(Activity activity) {
  switch (activity) {
    case Activity::kDrive:
      return "Drive";
    case Activity::kEscooter:
      return "E-scooter";
    case Activity::kRun:
      return "Run";
    case Activity::kStill:
      return "Still";
    case Activity::kWalk:
      return "Walk";
  }
  return "Unknown";
}

inline Activity ActivityFromLabel(int label) {
  PILOTE_CHECK(label >= 0 && label < kNumActivities) << "label " << label;
  return static_cast<Activity>(label);
}

inline int ActivityLabel(Activity activity) {
  return static_cast<int>(activity);
}

inline std::vector<Activity> AllActivities() {
  return {Activity::kDrive, Activity::kEscooter, Activity::kRun,
          Activity::kStill, Activity::kWalk};
}

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_ACTIVITY_H_
