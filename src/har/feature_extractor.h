#ifndef PILOTE_HAR_FEATURE_EXTRACTOR_H_
#define PILOTE_HAR_FEATURE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "har/sensor_layout.h"
#include "common/hot_path.h"
#include "tensor/tensor.h"

namespace pilote {
namespace har {

// The paper's handcrafted statistical features (Sec 6.1.1): from each
// 1-second window of 22 channels it extracts 80 features —
//   * mean and variance of every channel            (22 * 2 = 44)
//   * mean and variance of the jerk (first time difference scaled by the
//     sample rate) of every three-axis channel      (18 * 2 = 36)
// Extraction is a single linear pass over the window, matching the paper's
// "linear processing time" requirement for on-edge preprocessing.
inline constexpr int kNumFeatures = 80;

// window: [kWindowLength, kNumChannels] -> [kNumFeatures].
Tensor ExtractFeatures(const Tensor& window);

// In-place variant for the serve hot loop: writes the features of `window`
// into *features shaped [1, kNumFeatures] (a batched-classification row),
// resizing only on first use. Values are bit-identical to ExtractFeatures.
PILOTE_HOT_PATH void ExtractFeaturesInto(const Tensor& window,
                                         Tensor* features);

// Batch version: stacks ExtractFeatures over a list of windows.
Tensor ExtractFeaturesBatch(const std::vector<Tensor>& windows);

// Stable names ("acc_x_mean", "acc_x_var", ..., "gyro_y_jerk_var", ...)
// aligned with the output order of ExtractFeatures.
const std::vector<std::string>& FeatureNames();

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_FEATURE_EXTRACTOR_H_
