#include "har/feature_extractor.h"

#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace har {
namespace {

// Mean and biased variance of a strided channel column.
void MeanVar(const Tensor& window, int channel, double* mean, double* var) {
  const int64_t n = window.rows();
  double sum = 0.0;
  for (int64_t t = 0; t < n; ++t) sum += window(t, channel);
  const double mu = sum / static_cast<double>(n);
  double acc = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    const double d = window(t, channel) - mu;
    acc += d * d;
  }
  *mean = mu;
  *var = acc / static_cast<double>(n);
}

// Mean and variance of the jerk (discrete derivative) of a channel.
void JerkMeanVar(const Tensor& window, int channel, double* mean,
                 double* var) {
  const int64_t n = window.rows();
  PILOTE_CHECK_GE(n, 2);
  const double rate = static_cast<double>(kSampleRateHz);
  double sum = 0.0;
  for (int64_t t = 1; t < n; ++t) {
    sum += (window(t, channel) - window(t - 1, channel)) * rate;
  }
  const double mu = sum / static_cast<double>(n - 1);
  double acc = 0.0;
  for (int64_t t = 1; t < n; ++t) {
    const double j = (window(t, channel) - window(t - 1, channel)) * rate;
    acc += (j - mu) * (j - mu);
  }
  *mean = mu;
  *var = acc / static_cast<double>(n - 1);
}

// Writes the kNumFeatures features of `window` to `out`; the single
// implementation behind every public extraction entry point, so the
// allocating and in-place variants cannot diverge numerically. Takes a
// Span so every write is bounds- and staleness-checked in debug builds.
void FillFeatures(const Tensor& window, Span<float> out) {
  PILOTE_CHECK_EQ(window.rank(), 2);
  PILOTE_CHECK_EQ(window.cols(), kNumChannels);
  PILOTE_CHECK_GE(window.rows(), 2);
  PILOTE_CHECK_EQ(static_cast<int64_t>(out.size()), kNumFeatures);
  int64_t f = 0;
  for (int c = 0; c < kNumChannels; ++c) {
    double mean = 0.0;
    double var = 0.0;
    MeanVar(window, c, &mean, &var);
    out[f++] = static_cast<float>(mean);
    out[f++] = static_cast<float>(var);
  }
  for (int c = 0; c < kNumTriAxisChannels; ++c) {
    double mean = 0.0;
    double var = 0.0;
    JerkMeanVar(window, c, &mean, &var);
    out[f++] = static_cast<float>(mean);
    out[f++] = static_cast<float>(var);
  }
  PILOTE_CHECK_EQ(f, kNumFeatures);
}

}  // namespace

Tensor ExtractFeatures(const Tensor& window) {
  Tensor features(Shape::Vector(kNumFeatures));
  FillFeatures(window, features.span());
  return features;
}

void ExtractFeaturesInto(const Tensor& window, Tensor* features) {
  PILOTE_CHECK(features != nullptr);
  if (features->rank() != 2 || features->rows() != 1 ||
      features->cols() != kNumFeatures) {
    *features = Tensor(Shape::Matrix(1, kNumFeatures));  // hotpath-ok: first window only
  }
  FillFeatures(window, features->span());
}

Tensor ExtractFeaturesBatch(const std::vector<Tensor>& windows) {
  PILOTE_CHECK(!windows.empty());
  Tensor batch(Shape::Matrix(static_cast<int64_t>(windows.size()),
                             kNumFeatures));
  for (size_t i = 0; i < windows.size(); ++i) {
    FillFeatures(windows[i], batch.row_span(static_cast<int64_t>(i)));
  }
  return batch;
}

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string>* names = [] {
    auto* result = new std::vector<std::string>();
    result->reserve(kNumFeatures);
    for (int c = 0; c < kNumChannels; ++c) {
      const std::string base(kChannelNames[static_cast<size_t>(c)]);
      result->push_back(base + "_mean");
      result->push_back(base + "_var");
    }
    for (int c = 0; c < kNumTriAxisChannels; ++c) {
      const std::string base(kChannelNames[static_cast<size_t>(c)]);
      result->push_back(base + "_jerk_mean");
      result->push_back(base + "_jerk_var");
    }
    return result;
  }();
  return *names;
}

}  // namespace har
}  // namespace pilote
