#ifndef PILOTE_HAR_PREPROCESSING_H_
#define PILOTE_HAR_PREPROCESSING_H_

#include <vector>

#include "common/result.h"
#include "common/hot_path.h"
#include "har/activity.h"
#include "har/sensor_simulator.h"
#include "tensor/tensor.h"

namespace pilote {
namespace har {

// The paper's edge-side preprocessing (Sec 5, Figure 3): the raw sensor
// stream is denoised, segmented into one-second windows and normalized,
// all in linear time, before feature extraction.

// Centered moving-average smoothing of each channel of a [t, c] recording
// (odd window size; ends use the available neighborhood). half_width = 0
// returns the input unchanged.
Tensor DenoiseMovingAverage(const Tensor& recording, int half_width);

// In-place variant for the serve hot loop: writes the smoothed recording
// into *out (resized on first use; no allocation once the shape matches).
// half_width = 0 copies the input. Bit-identical to DenoiseMovingAverage.
PILOTE_HOT_PATH void DenoiseMovingAverageInto(const Tensor& recording,
                                              int half_width, Tensor* out);

// Splits a [t, c] recording into fixed-length windows with the given
// stride (stride == window_length -> disjoint windows, the paper's
// 1-second segmentation; smaller stride -> overlapping windows). Trailing
// samples that do not fill a window are dropped. Errors if the recording
// is shorter than one window.
Result<std::vector<Tensor>> SegmentWindows(const Tensor& recording,
                                           int window_length, int stride);

// A continuous labeled recording, as produced on the device.
struct Recording {
  Tensor samples;  // [t, kNumChannels]
  Activity activity;
};

// Generates a continuous recording of `num_windows` seconds by
// concatenating simulator episodes (each episode spans 1-4 windows, so
// consecutive windows are correlated like a real stream).
Recording RecordContinuous(SensorSimulator& simulator, Activity activity,
                           int num_windows);

// Full preprocessing pipeline: denoise -> segment -> per-window feature
// extraction -> [n, kNumFeatures] feature rows.
struct PreprocessOptions {
  int denoise_half_width = 1;
  int window_length = kWindowLength;
  int stride = kWindowLength;
};

Result<Tensor> PreprocessRecording(const Tensor& recording,
                                   const PreprocessOptions& options);

}  // namespace har
}  // namespace pilote

#endif  // PILOTE_HAR_PREPROCESSING_H_
