#include "har/har_dataset.h"

#include "common/macros.h"
#include "har/feature_extractor.h"

namespace pilote {
namespace har {

data::Dataset HarDataGenerator::Generate(Activity activity, int64_t count) {
  PILOTE_CHECK_GT(count, 0);
  Tensor features(Shape::Matrix(count, kNumFeatures));
  for (int64_t i = 0; i < count; ++i) {
    Tensor window = simulator_.GenerateWindow(activity);
    Tensor row = ExtractFeatures(window);
    std::copy(row.data(), row.data() + kNumFeatures, features.row(i));
  }
  std::vector<int> labels(static_cast<size_t>(count), ActivityLabel(activity));
  return data::Dataset(std::move(features), std::move(labels));
}

data::Dataset HarDataGenerator::GenerateBalanced(
    int64_t per_class, std::vector<Activity> activities) {
  if (activities.empty()) activities = AllActivities();
  std::vector<data::Dataset> parts;
  parts.reserve(activities.size());
  for (Activity activity : activities) {
    parts.push_back(Generate(activity, per_class));
  }
  return data::Dataset::Concat(parts);
}

}  // namespace har
}  // namespace pilote
