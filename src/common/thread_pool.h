#ifndef PILOTE_COMMON_THREAD_POOL_H_
#define PILOTE_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace pilote {

// Fixed-size worker pool used by the tensor kernels. On single-core hosts
// (or num_threads == 1) work is executed inline, so the library has no
// mandatory threading overhead on edge-like machines.
class ThreadPool {
 public:
  // num_threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) for i in [0, count), partitioned into contiguous chunks
  // across workers, and blocks until all iterations finish. fn must be
  // safe to call concurrently for distinct i.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn)
      PILOTE_EXCLUDES(mutex_);

  // Same, but hands each worker a [begin, end) range to reduce dispatch
  // overhead for fine-grained loops.
  void ParallelForRanges(int64_t count,
                         const std::function<void(int64_t, int64_t)>& fn)
      PILOTE_EXCLUDES(mutex_);

  // Process-wide pool used by tensor ops when no pool is supplied.
  static ThreadPool& Global();

 private:
  void Submit(std::function<void()> task) PILOTE_EXCLUDES(mutex_);
  void WorkerLoop() PILOTE_EXCLUDES(mutex_);

  const int num_threads_;
  std::vector<std::thread> workers_;  // unguarded: set in ctor, joined in dtor
  Mutex mutex_;
  CondVar task_available_;  // unguarded: internally synchronized
  std::queue<std::function<void()>> tasks_ PILOTE_GUARDED_BY(mutex_);
  bool shutting_down_ PILOTE_GUARDED_BY(mutex_) = false;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_THREAD_POOL_H_
