#ifndef PILOTE_COMMON_SPAN_H_
#define PILOTE_COMMON_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/macros.h"

namespace pilote {

// Debug-checked contiguous views.
//
// Span<T> / ConstSpan<T> are the repo's sanctioned way to hand out a
// window into someone else's buffer (a tensor row, an executor arena
// slice, an assembler ring). The contract is mode-split:
//
//   * Release (NDEBUG): a Span is exactly {T*, size_t} — trivially
//     copyable, no checks, no generation tracking. Passing one by value
//     costs the same as passing a pointer and a length, so the serve hot
//     path pays nothing (static_assert-enforced below).
//   * Debug / sanitizer builds: every element access is bounds-checked,
//     and a span built from a generation-tracked owner (Tensor) also
//     carries the owner's generation counter at capture time. The owner
//     bumps its counter whenever its buffer may move (Tensor::ResizeRows
//     growth, assignment); a later access through the stale span is a
//     CHECK-fatal "view outlived its buffer" instead of a silent
//     use-after-free feeding corrupt values into predictions.
//
// The generation check is a debug aid, not a proof: it catches the
// realloc-under-a-live-view class (the one `--stage lifetime` hunts
// statically), not views that outlive the owner object itself (the
// counter's address dies with the owner; ASan owns that class).
//
// BasicSpan<T, Checked> exposes both modes explicitly so tests can
// exercise the checked variant under any build type; Span/ConstSpan pick
// the mode from PILOTE_SPAN_CHECKS (default: on when NDEBUG is not
// defined, overridable with -DPILOTE_SPAN_CHECKS=0/1).
#ifndef PILOTE_SPAN_CHECKS
#ifdef NDEBUG
#define PILOTE_SPAN_CHECKS 0
#else
#define PILOTE_SPAN_CHECKS 1
#endif
#endif

template <typename T, bool Checked>
class BasicSpan;

// Unchecked mode: raw pointer + size, nothing else.
template <typename T>
class BasicSpan<T, false> {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  constexpr BasicSpan() = default;
  constexpr BasicSpan(T* data, size_t size) : data_(data), size_(size) {}
  // Generation-tracked construction: the tracking arguments are accepted
  // (so call sites compile identically in both modes) and dropped.
  constexpr BasicSpan(T* data, size_t size, const uint32_t* /*generation*/,
                      uint32_t /*captured*/)
      : data_(data), size_(size) {}
  // Span<T> converts to Span<const T> implicitly, like std::span.
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr BasicSpan(const BasicSpan<U, false>& other)
      : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr BasicSpan subspan(size_t pos, size_t count) const {
    return BasicSpan(data_ + pos, count);
  }
  constexpr BasicSpan first(size_t count) const { return subspan(0, count); }
  constexpr BasicSpan last(size_t count) const {
    return subspan(size_ - count, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

// Checked mode: bounds on every access; generation validation when the
// owner registered a counter at capture time.
template <typename T>
class BasicSpan<T, true> {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  constexpr BasicSpan() = default;
  constexpr BasicSpan(T* data, size_t size) : data_(data), size_(size) {}
  constexpr BasicSpan(T* data, size_t size, const uint32_t* generation,
                      uint32_t captured)
      : data_(data),
        size_(size),
        generation_(generation),
        captured_(captured) {}
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr BasicSpan(const BasicSpan<U, true>& other)
      : data_(other.data()),
        size_(other.size()),
        generation_(other.generation_counter()),
        captured_(other.captured_generation()) {}

  T* data() const {
    CheckLive();
    return data_;
  }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  T* begin() const {
    CheckLive();
    return data_;
  }
  T* end() const {
    CheckLive();
    return data_ + size_;
  }

  T& operator[](size_t i) const {
    CheckLive();
    PILOTE_CHECK_LT(i, size_) << "span index out of bounds";
    return data_[i];
  }
  T& front() const { return (*this)[0]; }
  T& back() const {
    PILOTE_CHECK(!empty()) << "back() on empty span";
    return (*this)[size_ - 1];
  }

  BasicSpan subspan(size_t pos, size_t count) const {
    CheckLive();
    PILOTE_CHECK_LE(pos, size_) << "subspan start out of bounds";
    PILOTE_CHECK_LE(count, size_ - pos) << "subspan length out of bounds";
    return BasicSpan(data_ + pos, count, generation_, captured_);
  }
  BasicSpan first(size_t count) const { return subspan(0, count); }
  BasicSpan last(size_t count) const {
    PILOTE_CHECK_LE(count, size_) << "last() length out of bounds";
    return subspan(size_ - count, count);
  }

  // Introspection for the conversion constructor and tests.
  constexpr const uint32_t* generation_counter() const { return generation_; }
  constexpr uint32_t captured_generation() const { return captured_; }

 private:
  void CheckLive() const {
    if (generation_ != nullptr) {
      PILOTE_CHECK_EQ(*generation_, captured_)
          << "stale span: the owning buffer was resized or reassigned "
             "after this view was taken";
    }
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  // Address of the owner's generation counter (nullptr for untracked
  // buffers) and its value when the view was taken.
  const uint32_t* generation_ = nullptr;
  uint32_t captured_ = 0;
};

template <typename T>
using Span = BasicSpan<T, PILOTE_SPAN_CHECKS != 0>;
template <typename T>
using ConstSpan = BasicSpan<const T, PILOTE_SPAN_CHECKS != 0>;

// The release-mode contract: a span is a pointer and a size, nothing
// more. Any member added to the unchecked specialization (or a stray
// virtual) breaks this at compile time, in every build.
static_assert(std::is_trivially_copyable_v<BasicSpan<float, false>>,
              "release-mode Span must be trivially copyable");
static_assert(sizeof(BasicSpan<float, false>) ==
                  sizeof(float*) + sizeof(size_t),
              "release-mode Span must be exactly pointer + size");
#if !PILOTE_SPAN_CHECKS
static_assert(std::is_trivially_copyable_v<Span<float>> &&
                  sizeof(Span<float>) == sizeof(float*) + sizeof(size_t),
              "Span must be the raw pointer+size form in release builds");
#endif

}  // namespace pilote

#endif  // PILOTE_COMMON_SPAN_H_
