#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace pilote {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  has_spare_gaussian_ = false;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t n) {
  PILOTE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int Rng::UniformInt(int lo, int hi) {
  PILOTE_CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  UniformUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  PILOTE_CHECK_GE(n, 0);
  PILOTE_CHECK_GE(k, 0);
  PILOTE_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformUint64(static_cast<uint64_t>(n - i)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace pilote
