#ifndef PILOTE_COMMON_BOUNDED_QUEUE_H_
#define PILOTE_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace pilote {

// Bounded multi-producer single-consumer queue. Producers never block:
// TryPush fails when the queue is at capacity, which is how the serving
// layer turns overload into an explicit kResourceExhausted instead of
// stalling ingest threads. The consumer pops in batches with a max-delay
// coalescing window (the batcher's flush policy).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PILOTE_CHECK_GT(capacity, 0u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) PILOTE_EXCLUDES(mutex_) {
    bool was_empty;
    {
      MutexLock lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      was_empty = queue_.empty();
      queue_.push_back(std::move(item));
    }
    // The consumer only ever waits while the queue is empty (checked under
    // the same mutex), so pushes onto a non-empty queue skip the notify —
    // one futex wake per batch instead of one per window.
    if (was_empty) not_empty_.NotifyOne();
    return true;
  }

  // Pops up to `max_batch` items into `out` (cleared first). Blocks until
  // at least one item is available or the queue is closed; after the first
  // item it keeps draining/waiting until `max_delay` has elapsed (counted
  // from the first pop) or the batch is full, so light load still flushes
  // promptly and heavy load fills whole batches. Returns false only once
  // the queue is closed AND fully drained.
  bool PopBatch(std::vector<T>& out, size_t max_batch,
                std::chrono::microseconds max_delay) PILOTE_EXCLUDES(mutex_) {
    PILOTE_CHECK_GT(max_batch, 0u);
    out.clear();
    MutexLock lock(mutex_);
    while (queue_.empty() && !closed_ && !interrupted_) {
      not_empty_.Wait(mutex_);
    }
    if (interrupted_) {
      // Consume the interrupt and hand control back to the consumer loop
      // (possibly with an empty batch) so it can re-check its own gates.
      interrupted_ = false;
      return !(closed_ && queue_.empty());
    }
    if (queue_.empty()) return false;

    const auto deadline = std::chrono::steady_clock::now() + max_delay;
    while (out.size() < max_batch) {
      if (interrupted_) {
        interrupted_ = false;
        break;
      }
      if (!queue_.empty()) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;
      }
      if (closed_ || max_delay.count() <= 0) break;
      if (!not_empty_.WaitUntil(mutex_, deadline)) {
        break;  // coalescing window elapsed
      }
    }
    return true;
  }

  // Wakes a blocked PopBatch, making it return early (possibly with an
  // empty batch) so the consumer can re-check its own control gates — the
  // serving engine's pause hook relies on this. One interrupt wakes one
  // PopBatch; the flag is consumed by the return.
  void Interrupt() PILOTE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      interrupted_ = true;
    }
    not_empty_.NotifyAll();
  }

  // After Close, TryPush fails and PopBatch drains the remainder before
  // returning false. Idempotent.
  void Close() PILOTE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
  }

  size_t size() const PILOTE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const PILOTE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;  // unguarded: internally synchronized
  std::deque<T> queue_ PILOTE_GUARDED_BY(mutex_);
  bool closed_ PILOTE_GUARDED_BY(mutex_) = false;
  bool interrupted_ PILOTE_GUARDED_BY(mutex_) = false;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_BOUNDED_QUEUE_H_
