#ifndef PILOTE_COMMON_BOUNDED_QUEUE_H_
#define PILOTE_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace pilote {

// Bounded multi-producer single-consumer queue. Producers never block:
// TryPush fails when the queue is at capacity, which is how the serving
// layer turns overload into an explicit kResourceExhausted instead of
// stalling ingest threads. The consumer pops in batches with a max-delay
// coalescing window (the batcher's flush policy).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PILOTE_CHECK_GT(capacity, 0u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      was_empty = queue_.empty();
      queue_.push_back(std::move(item));
    }
    // The consumer only ever waits while the queue is empty (checked under
    // the same mutex), so pushes onto a non-empty queue skip the notify —
    // one futex wake per batch instead of one per window.
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  // Pops up to `max_batch` items into `out` (cleared first). Blocks until
  // at least one item is available or the queue is closed; after the first
  // item it keeps draining/waiting until `max_delay` has elapsed (counted
  // from the first pop) or the batch is full, so light load still flushes
  // promptly and heavy load fills whole batches. Returns false only once
  // the queue is closed AND fully drained.
  bool PopBatch(std::vector<T>& out, size_t max_batch,
                std::chrono::microseconds max_delay) {
    PILOTE_CHECK_GT(max_batch, 0u);
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] {
      return !queue_.empty() || closed_ || interrupted_;
    });
    if (interrupted_) {
      // Consume the interrupt and hand control back to the consumer loop
      // (possibly with an empty batch) so it can re-check its own gates.
      interrupted_ = false;
      return !(closed_ && queue_.empty());
    }
    if (queue_.empty()) return false;

    const auto deadline = std::chrono::steady_clock::now() + max_delay;
    while (out.size() < max_batch) {
      if (interrupted_) {
        interrupted_ = false;
        break;
      }
      if (!queue_.empty()) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;
      }
      if (closed_ || max_delay.count() <= 0) break;
      if (!not_empty_.wait_until(lock, deadline, [this] {
            return !queue_.empty() || closed_ || interrupted_;
          })) {
        break;  // coalescing window elapsed
      }
    }
    return true;
  }

  // Wakes a blocked PopBatch, making it return early (possibly with an
  // empty batch) so the consumer can re-check its own control gates — the
  // serving engine's pause hook relies on this. One interrupt wakes one
  // PopBatch; the flag is consumed by the return.
  void Interrupt() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      interrupted_ = true;
    }
    not_empty_.notify_all();
  }

  // After Close, TryPush fails and PopBatch drains the remainder before
  // returning false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
  bool interrupted_ = false;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_BOUNDED_QUEUE_H_
