#ifndef PILOTE_COMMON_RNG_H_
#define PILOTE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace pilote {

// Deterministic, seedable pseudo-random number generator (xoshiro256**,
// seeded through splitmix64). Every stochastic component in the library
// takes an explicit Rng (or seed) so experiments are exactly reproducible.
//
// Not thread-safe; use one Rng per thread, created via Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  void Reseed(uint64_t seed);

  // Derives an independent child stream; deterministic in (state, call order).
  Rng Fork();

  // Raw 64 random bits.
  uint64_t NextUint64();

  // Uniform in [0, n). n must be > 0.
  uint64_t UniformUint64(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Standard normal via Box-Muller (cached spare).
  double Gaussian();
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Bernoulli with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // k distinct indices sampled uniformly from [0, n) in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_RNG_H_
