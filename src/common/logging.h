#ifndef PILOTE_COMMON_LOGGING_H_
#define PILOTE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pilote {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Defaults to
// kInfo (kWarning when the PILOTE_QUIET env var is set at startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// One log statement; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pilote

#define PILOTE_LOG(level)                                            \
  ::pilote::internal::LogMessage(::pilote::LogLevel::k##level,       \
                                 __FILE__, __LINE__)

#endif  // PILOTE_COMMON_LOGGING_H_
