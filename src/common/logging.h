#ifndef PILOTE_COMMON_LOGGING_H_
#define PILOTE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pilote {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. The startup
// default is resolved from the environment, most specific wins:
//   PILOTE_LOG_LEVEL=debug|info|warning|error (or 0-3)  explicit level
//   PILOTE_QUIET (any value)                            kWarning
//   otherwise                                           kInfo
// Every line carries a monotonic seconds-since-start timestamp and a dense
// thread id. When PILOTE_LOG_FILE names a path, lines are additionally
// appended there (stderr always receives them).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// One log statement; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pilote

#define PILOTE_LOG(level)                                            \
  ::pilote::internal::LogMessage(::pilote::LogLevel::k##level,       \
                                 __FILE__, __LINE__)

#endif  // PILOTE_COMMON_LOGGING_H_
