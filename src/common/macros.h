#ifndef PILOTE_COMMON_MACROS_H_
#define PILOTE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pilote {
namespace internal {

// Accumulates a streamed message and aborts the process when destroyed.
// Used as the right-hand side of the CHECK macros below; never instantiate
// directly.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Gives the streamed CheckFailure chain a void type so the CHECK macros can
// sit in a ternary expression ("voidify" idiom). operator& binds looser
// than operator<<, so the whole message is built first.
struct Voidify {
  void operator&(const CheckFailure&) const {}
};

}  // namespace internal
}  // namespace pilote

// Fatal invariant check, active in all build modes, streamable:
//   PILOTE_CHECK(n > 0) << "details " << n;
// Violations indicate programmer error (e.g. tensor shape mismatches), not
// recoverable conditions; recoverable conditions use Status/Result instead.
#define PILOTE_CHECK(condition)                                \
  (condition) ? (void)0                                        \
              : ::pilote::internal::Voidify() &                \
                    ::pilote::internal::CheckFailure(          \
                        __FILE__, __LINE__, #condition)

#define PILOTE_CHECK_OP(lhs, rhs, op)                           \
  ((lhs)op(rhs)) ? (void)0                                      \
                 : ::pilote::internal::Voidify() &              \
                       (::pilote::internal::CheckFailure(       \
                            __FILE__, __LINE__,                 \
                            #lhs " " #op " " #rhs)              \
                        << "(" << (lhs) << " vs " << (rhs) << ") ")

#define PILOTE_CHECK_EQ(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, ==)
#define PILOTE_CHECK_NE(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, !=)
#define PILOTE_CHECK_LT(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, <)
#define PILOTE_CHECK_LE(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, <=)
#define PILOTE_CHECK_GT(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, >)
#define PILOTE_CHECK_GE(lhs, rhs) PILOTE_CHECK_OP(lhs, rhs, >=)

// Debug-only check. In release (NDEBUG) builds the condition sits in an
// unevaluated sizeof operand: it is still parsed and type-checked, and the
// names it mentions count as used (so release builds see the same
// -Wunused surface as debug builds), but no code is generated and side
// effects provably never run. The previous `true || (cond)` form
// odr-used the condition and produced asymmetric diagnostics between
// build modes.
#ifdef NDEBUG
#define PILOTE_DCHECK(condition) \
  ((void)sizeof(static_cast<bool>(condition)))
#else
#define PILOTE_DCHECK(condition) PILOTE_CHECK(condition)
#endif

#endif  // PILOTE_COMMON_MACROS_H_
