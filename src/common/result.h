#ifndef PILOTE_COMMON_RESULT_H_
#define PILOTE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace pilote {

// Either a value of type T or a non-OK Status — the StatusOr / arrow::Result
// idiom. Accessing the value of a failed Result is a fatal error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    PILOTE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PILOTE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PILOTE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PILOTE_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace pilote

// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
// value to `lhs`. `lhs` may include a type declaration: ASSIGN_OR_RETURN(auto x, F());
#define PILOTE_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  PILOTE_ASSIGN_OR_RETURN_IMPL(                                   \
      PILOTE_RESULT_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

#define PILOTE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define PILOTE_RESULT_CONCAT_INNER(a, b) a##b
#define PILOTE_RESULT_CONCAT(a, b) PILOTE_RESULT_CONCAT_INNER(a, b)

#endif  // PILOTE_COMMON_RESULT_H_
