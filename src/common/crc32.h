#ifndef PILOTE_COMMON_CRC32_H_
#define PILOTE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pilote {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// behind the crash-safe artifact formats in serialize/io and
// core/artifact_io. A torn or bit-flipped section fails its CRC and the
// loader rejects it with kDataLoss instead of deserializing garbage.
//
// Incremental use: feed the previous return value back as `seed`:
//   uint32_t crc = Crc32(part1);
//   crc = Crc32(part2, crc);
// The empty-input CRC is 0, matching zlib's crc32(0, nullptr, 0).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace pilote

#endif  // PILOTE_COMMON_CRC32_H_
