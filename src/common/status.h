#ifndef PILOTE_COMMON_STATUS_H_
#define PILOTE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pilote {

// Coarse error taxonomy, modeled after absl::StatusCode / rocksdb::Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kResourceExhausted,
  kIoError,
  // Transient condition: the operation may succeed if retried (the serving
  // layer's bounded retry-with-backoff keys off this code; see
  // serve::BatchingEngine).
  kUnavailable,
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

// Value-type result of an operation that can fail. Library code returns
// Status (or Result<T>) for recoverable conditions; invariant violations
// use the PILOTE_CHECK macros instead. Never ignore a returned Status.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace pilote

// Propagates a non-OK status to the caller.
#define PILOTE_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::pilote::Status _status = (expr);             \
    if (!_status.ok()) return _status;             \
  } while (false)

#endif  // PILOTE_COMMON_STATUS_H_
