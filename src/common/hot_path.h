#ifndef PILOTE_COMMON_HOT_PATH_H_
#define PILOTE_COMMON_HOT_PATH_H_

// Hot-path discipline annotation surface (see DESIGN.md "Hot-path
// discipline").
//
// PILOTE_HOT_PATH marks a function as a steady-state serve-loop root: the
// repo analyzer (`tools/pilote_lint.py --stage hotpath`, the
// `repo_hotpath` ctest test) computes the transitive intra-repo call
// closure of every marked function and rejects, anywhere in that closure:
//
//   * heap allocation (`new`, make_unique/make_shared, container
//     push_back/emplace_back/resize/reserve/insert, construction of
//     local Tensor/std::vector/std::string/... values)
//   * string building (std::to_string, literal concatenation, ostringstream)
//   * writer-lock acquisition (MutexLock, WriterLock; ReaderLock is fine)
//   * exceptions (`throw`)
//   * blocking I/O (fstream, PILOTE_LOG, printf-family, sleep_for)
//
// Two escape hatches, both requiring a reason:
//
//   * `// hotpath-ok: <reason>` on the offending line (or a comment line
//     directly above it) exempts that one statement — for allocations that
//     are provably amortized (reserved capacity, function-local static
//     registration) or cold (error branches).
//   * `// hotpath-ok: <reason>` on a function's definition head exempts
//     the whole body — for functions pulled into the closure by name that
//     are not actually on the steady-state path, or for leaf kernels whose
//     single output allocation is the documented per-call budget.
//
// PILOTE_CHECK / PILOTE_DCHECK statements are exempt by construction: the
// streamed message is only materialized on the failure (abort) path.
//
// The marker doubles as an optimizer hint: on GCC/Clang the function is
// placed in the hot text section and optimized more aggressively. It has
// no semantic effect.
//
// Runtime counterpart: src/common/alloc_tracker.h counts the allocations
// the analyzer reasons about statically; the serve loop's steady-state
// allocs-per-window is pinned by test and reported by bench_serving and
// core::ProfileEdge.

#if defined(__GNUC__) || defined(__clang__)
#define PILOTE_HOT_PATH __attribute__((hot))
#else
#define PILOTE_HOT_PATH
#endif

#endif  // PILOTE_COMMON_HOT_PATH_H_
