#include "common/numerics_guard.h"

#include <cstdlib>

#include "common/macros.h"

namespace pilote {
namespace numerics {
namespace internal {

bool InitFromEnvironment() {
  const char* value = std::getenv("PILOTE_CHECK_NUMERICS");
  const bool enabled =
      value != nullptr && value[0] != '\0' && value[0] != '0';
  if (enabled) runtime_enabled.store(true, std::memory_order_relaxed);
  return enabled;
}

void FailNonFinite(const char* op, const std::string& shape, int64_t index,
                   float value, const char* file, int line) {
  ::pilote::internal::CheckFailure(file, line, "numerics guard")
      << "non-finite value " << value << " produced by [" << op
      << "] shape=" << shape << " at flat index " << index;
  // CheckFailure aborts in its destructor; this is unreachable but keeps
  // the [[noreturn]] contract visible to the compiler.
  std::abort();
}

}  // namespace internal
}  // namespace numerics
}  // namespace pilote
