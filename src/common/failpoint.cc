#include "common/failpoint.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace pilote {
namespace fail {
namespace {

// Maps the snake-case spelling used in arming specs to a StatusCode.
bool ParseStatusCode(const std::string& text, StatusCode* out) {
  if (text == "invalid_argument") {
    *out = StatusCode::kInvalidArgument;
  } else if (text == "not_found") {
    *out = StatusCode::kNotFound;
  } else if (text == "already_exists") {
    *out = StatusCode::kAlreadyExists;
  } else if (text == "failed_precondition") {
    *out = StatusCode::kFailedPrecondition;
  } else if (text == "out_of_range") {
    *out = StatusCode::kOutOfRange;
  } else if (text == "unimplemented") {
    *out = StatusCode::kUnimplemented;
  } else if (text == "internal") {
    *out = StatusCode::kInternal;
  } else if (text == "data_loss") {
    *out = StatusCode::kDataLoss;
  } else if (text == "resource_exhausted") {
    *out = StatusCode::kResourceExhausted;
  } else if (text == "io_error") {
    *out = StatusCode::kIoError;
  } else if (text == "unavailable") {
    *out = StatusCode::kUnavailable;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

// "once[:code]" / "always[:code]" / "nth:N[:code]" / "prob:P:seed[:code]".
Status ParseTrigger(const std::string& name, const std::string& text,
                    FailpointSpec* out) {
  std::vector<std::string> parts = Split(text, ':');
  const std::string& kind = parts[0];
  FailpointSpec spec;
  size_t code_index = 1;
  if (kind == "once") {
    spec.trigger = Trigger::kOnce;
  } else if (kind == "always") {
    spec.trigger = Trigger::kAlways;
  } else if (kind == "nth") {
    spec.trigger = Trigger::kEveryNth;
    if (parts.size() < 2 || !ParseInt64(parts[1], &spec.nth)) {
      return Status::InvalidArgument("failpoint '" + name +
                                     "': nth trigger needs a count");
    }
    code_index = 2;
  } else if (kind == "prob") {
    spec.trigger = Trigger::kProbability;
    int64_t seed = 0;
    if (parts.size() < 3 || !ParseDouble(parts[1], &spec.probability) ||
        !ParseInt64(parts[2], &seed)) {
      return Status::InvalidArgument(
          "failpoint '" + name + "': prob trigger needs <probability>:<seed>");
    }
    spec.seed = static_cast<uint64_t>(seed);
    code_index = 3;
  } else {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': unknown trigger '" + kind + "'");
  }
  if (parts.size() > code_index + 1) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': trailing fields in '" + text + "'");
  }
  if (parts.size() == code_index + 1 &&
      !ParseStatusCode(parts[code_index], &spec.code)) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': unknown status code '" +
                                   parts[code_index] + "'");
  }
  *out = spec;
  return Status::Ok();
}

Status ValidateSpec(const std::string& name, const FailpointSpec& spec) {
  if (spec.code == StatusCode::kOk) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': injected code must not be kOk");
  }
  if (spec.trigger == Trigger::kEveryNth && spec.nth < 1) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': nth must be >= 1");
  }
  if (spec.trigger == Trigger::kProbability &&
      (spec.probability < 0.0 || spec.probability > 1.0)) {
    return Status::InvalidArgument("failpoint '" + name +
                                   "': probability must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

namespace internal {

// hotpath-ok: one-time environment parse, first failpoint check only
bool InitFromEnvironment() {
  const char* env = std::getenv("PILOTE_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return false;
  Status status = FailpointRegistry::Global().ArmFromString(env);
  if (!status.ok()) {
    PILOTE_LOG(Warning) << "PILOTE_FAILPOINTS: " << status.ToString();
  }
  return true;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::runtime_enabled.store(enabled, std::memory_order_relaxed);
}

Status Failpoint::Check() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
  MutexLock lock(mutex_);
  // Arm may have been revoked between the relaxed load and the lock; the
  // guarded state is authoritative.
  if (!armed_.load(std::memory_order_relaxed) || exhausted_) {
    return Status::Ok();
  }
  ++armed_hits_;
  switch (spec_.trigger) {
    case Trigger::kAlways:
      return Fire(fires_);
    case Trigger::kOnce:
      exhausted_ = true;
      return Fire(0);
    case Trigger::kEveryNth:
      if (armed_hits_ % spec_.nth == 0) return Fire(fires_);
      return Status::Ok();
    case Trigger::kProbability:
      if (rng_.Bernoulli(spec_.probability)) return Fire(fires_);
      return Status::Ok();
  }
  return Status::Ok();
}

Status Failpoint::Fire(int64_t fire_index) {
  ++fires_;
  std::ostringstream msg;
  msg << "injected fault at failpoint '" << name_ << "' (fire #"
      << (fire_index + 1) << ")";
  return Status(spec_.code, msg.str());
}

void Failpoint::Arm(const FailpointSpec& spec) {
  MutexLock lock(mutex_);
  spec_ = spec;
  exhausted_ = false;
  armed_hits_ = 0;
  rng_.Reseed(spec.seed);
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  MutexLock lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  exhausted_ = false;
}

FailpointStats Failpoint::Stats() const {
  MutexLock lock(mutex_);
  FailpointStats stats;
  stats.name = name_;
  stats.armed = armed_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.fires = fires_;
  return stats;
}

// hotpath-ok: process-lifetime singleton, allocates on first call only
FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Failpoint& FailpointRegistry::RegisterLocked(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<Failpoint>(name)).first;
  }
  return *it->second;
}

Failpoint& FailpointRegistry::Register(const char* name) {
  MutexLock lock(mutex_);
  return RegisterLocked(name);
}

Status FailpointRegistry::Arm(const std::string& name,
                              const FailpointSpec& spec) {
  PILOTE_RETURN_IF_ERROR(ValidateSpec(name, spec));
  Failpoint* point = nullptr;
  {
    MutexLock lock(mutex_);
    point = &RegisterLocked(name);
  }
  point->Arm(spec);
  return Status::Ok();
}

Status FailpointRegistry::ArmFromString(const std::string& config) {
  if (config == "1") return Status::Ok();  // enable-only, nothing to arm
  for (const std::string& entry : Split(config, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint config entry '" + entry +
                                     "' is not <name>=<trigger>");
    }
    std::string name = entry.substr(0, eq);
    FailpointSpec spec;
    PILOTE_RETURN_IF_ERROR(ParseTrigger(name, entry.substr(eq + 1), &spec));
    PILOTE_RETURN_IF_ERROR(Arm(name, spec));
  }
  return Status::Ok();
}

void FailpointRegistry::Disarm(const std::string& name) {
  Failpoint* point = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = points_.find(name);
    if (it == points_.end()) return;
    point = it->second.get();
  }
  point->Disarm();
}

void FailpointRegistry::DisarmAll() {
  std::vector<Failpoint*> points;
  {
    MutexLock lock(mutex_);
    points.reserve(points_.size());
    for (auto& [name, point] : points_) points.push_back(point.get());
  }
  for (Failpoint* point : points) point->Disarm();
}

std::vector<std::string> FailpointRegistry::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

std::vector<FailpointStats> FailpointRegistry::Stats() const {
  std::vector<const Failpoint*> points;
  {
    MutexLock lock(mutex_);
    points.reserve(points_.size());
    for (const auto& [name, point] : points_) points.push_back(point.get());
  }
  std::vector<FailpointStats> stats;
  stats.reserve(points.size());
  for (const Failpoint* point : points) stats.push_back(point->Stats());
  return stats;
}

std::string FailpointRegistry::StatsJson() const {
  std::vector<FailpointStats> stats = Stats();
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const FailpointStats& s : stats) {
    if (!first) os << ",";
    first = false;
    os << "\"" << s.name << "\":{\"armed\":" << (s.armed ? "true" : "false")
       << ",\"hits\":" << s.hits << ",\"fires\":" << s.fires << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace fail
}  // namespace pilote
