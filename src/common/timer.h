#ifndef PILOTE_COMMON_TIMER_H_
#define PILOTE_COMMON_TIMER_H_

#include <chrono>

namespace pilote {

// Monotonic wall-clock stopwatch for latency accounting (edge profile,
// per-epoch timing).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_TIMER_H_
