#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pilote {
namespace {

// Seconds since the first log statement in the process; monotonic so the
// prefix is unaffected by wall-clock adjustments on the device.
double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Dense per-thread id (0, 1, 2, ...) — stable within a run and far more
// readable in interleaved output than the native thread handle.
int CurrentThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == '\0' && *b == '\0';
}

LogLevel InitialLevel() {
  if (const char* spec = std::getenv("PILOTE_LOG_LEVEL")) {
    if (EqualsIgnoreCase(spec, "debug") || std::strcmp(spec, "0") == 0) {
      return LogLevel::kDebug;
    }
    if (EqualsIgnoreCase(spec, "info") || std::strcmp(spec, "1") == 0) {
      return LogLevel::kInfo;
    }
    if (EqualsIgnoreCase(spec, "warning") || EqualsIgnoreCase(spec, "warn") ||
        std::strcmp(spec, "2") == 0) {
      return LogLevel::kWarning;
    }
    if (EqualsIgnoreCase(spec, "error") || std::strcmp(spec, "3") == 0) {
      return LogLevel::kError;
    }
    std::fprintf(stderr, "[W logging] unknown PILOTE_LOG_LEVEL '%s', using info\n",
                 spec);
  }
  if (std::getenv("PILOTE_QUIET") != nullptr) return LogLevel::kWarning;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

// Optional secondary sink; opened once on first use and intentionally never
// closed (log statements may run during static destruction).
std::FILE* FileSink() {
  static std::FILE* sink = [] {
    const char* path = std::getenv("PILOTE_LOG_FILE");
    if (path == nullptr || *path == '\0') {
      return static_cast<std::FILE*>(nullptr);
    }
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "[W logging] cannot open PILOTE_LOG_FILE '%s'\n",
                   path);
    }
    return f;
  }();
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  // Relaxed: the level is an independent filter knob; no other state is
  // published through it.
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LevelStorage().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               LevelStorage().load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "[%s %.3f T%d %s:%d] ",
                  LevelName(level), MonotonicSeconds(), CurrentThreadId(),
                  base, line);
    stream_ << prefix;
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string line = stream_.str();
    std::fprintf(stderr, "%s\n", line.c_str());
    if (std::FILE* sink = FileSink()) {
      std::fprintf(sink, "%s\n", line.c_str());
      std::fflush(sink);
    }
  }
}

}  // namespace internal
}  // namespace pilote
