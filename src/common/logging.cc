#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pilote {
namespace {

LogLevel InitialLevel() {
  if (std::getenv("PILOTE_QUIET") != nullptr) return LogLevel::kWarning;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStorage().load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               LevelStorage().load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace pilote
