#ifndef PILOTE_COMMON_FAILPOINT_H_
#define PILOTE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pilote {
namespace fail {

// Deterministic fault injection for the crash-safety test suite.
//
// A failpoint is a named hook compiled into fallible production code:
//
//   PILOTE_RETURN_IF_ERROR(PILOTE_FAILPOINT("serialize/atomic/write"));
//
// In a normal process the macro costs one relaxed atomic load and a
// predictable branch (the same disabled-cost contract as obs::Enabled()
// and common/numerics_guard.h): nothing is registered, no Status is
// constructed. Test code arms failpoints by name — fire once, fire every
// Nth hit, or fire with a probability under a seeded RNG — and the site
// then returns the configured non-OK Status, exercising the error path
// exactly where a real fault (torn write, ENOSPC, transient learner
// unavailability) would surface.
//
// Enabling: set the PILOTE_FAILPOINTS environment variable (either "1"
// for registration-only mode, or an arming spec — see ArmFromString), or
// call SetEnabled(true) / use ScopedFailpoints in tests. Sites register
// lazily on first execution while enabled, so a chaos suite that runs one
// clean warm-up cycle observes every failpoint on that cycle via
// FailpointRegistry::Names() and can iterate them exhaustively.

namespace internal {

inline std::atomic<bool> runtime_enabled{false};

// Reads PILOTE_FAILPOINTS once; a non-empty value enables the subsystem
// and any "name=spec" entries in it are armed (parse errors are logged
// and skipped).
bool InitFromEnvironment();

inline bool EnvironmentEnabled() {
  static const bool enabled = InitFromEnvironment();
  return enabled;
}

}  // namespace internal

// Runtime opt-in/out (the environment opt-in cannot be revoked).
void SetEnabled(bool enabled);

inline bool Enabled() {
  return internal::EnvironmentEnabled() ||
         internal::runtime_enabled.load(std::memory_order_relaxed);
}

// When an armed failpoint fires.
enum class Trigger {
  kAlways,       // every hit
  kOnce,         // the first hit after arming, then never again
  kEveryNth,     // hits n, 2n, 3n, ... after arming
  kProbability,  // each hit independently with probability p (seeded RNG)
};

// Test-side configuration of one failpoint.
struct FailpointSpec {
  Trigger trigger = Trigger::kOnce;
  // kEveryNth: fire when the post-arm hit count is a multiple of nth.
  int64_t nth = 1;
  // kProbability: per-hit fire probability in [0, 1] and the RNG seed that
  // makes the schedule reproducible.
  double probability = 1.0;
  uint64_t seed = 0;
  // The injected error. kOk is rejected by Arm (a firing failpoint must be
  // observable).
  StatusCode code = StatusCode::kIoError;

  static FailpointSpec Once(StatusCode code = StatusCode::kIoError) {
    FailpointSpec spec;
    spec.trigger = Trigger::kOnce;
    spec.code = code;
    return spec;
  }
  static FailpointSpec Always(StatusCode code = StatusCode::kIoError) {
    FailpointSpec spec;
    spec.trigger = Trigger::kAlways;
    spec.code = code;
    return spec;
  }
  static FailpointSpec EveryNth(int64_t nth,
                                StatusCode code = StatusCode::kIoError) {
    FailpointSpec spec;
    spec.trigger = Trigger::kEveryNth;
    spec.nth = nth;
    spec.code = code;
    return spec;
  }
  static FailpointSpec WithProbability(
      double probability, uint64_t seed,
      StatusCode code = StatusCode::kIoError) {
    FailpointSpec spec;
    spec.trigger = Trigger::kProbability;
    spec.probability = probability;
    spec.seed = seed;
    spec.code = code;
    return spec;
  }
};

// Observed activity of one failpoint since registration.
struct FailpointStats {
  std::string name;
  bool armed = false;
  int64_t hits = 0;   // evaluations while the subsystem was enabled
  int64_t fires = 0;  // hits that returned a non-OK Status
};

// One named injection site. Handles returned by the registry are stable
// for the process lifetime, so callsites cache them in function-local
// statics and reach the unarmed answer with one relaxed load.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  // OK unless armed and the trigger elects this hit.
  Status Check() PILOTE_EXCLUDES(mutex_);

  void Arm(const FailpointSpec& spec) PILOTE_EXCLUDES(mutex_);
  void Disarm() PILOTE_EXCLUDES(mutex_);

  FailpointStats Stats() const PILOTE_EXCLUDES(mutex_);

  const std::string& name() const { return name_; }

 private:
  Status Fire(int64_t fire_index) PILOTE_REQUIRES(mutex_);

  const std::string name_;
  // Fast path: unarmed sites answer with two relaxed atomics, no lock.
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> hits_{0};
  mutable Mutex mutex_;
  FailpointSpec spec_ PILOTE_GUARDED_BY(mutex_);
  bool exhausted_ PILOTE_GUARDED_BY(mutex_) = false;  // kOnce already fired
  int64_t armed_hits_ PILOTE_GUARDED_BY(mutex_) = 0;
  int64_t fires_ PILOTE_GUARDED_BY(mutex_) = 0;
  Rng rng_ PILOTE_GUARDED_BY(mutex_){0};
};

// Name -> failpoint map. Registration happens either at a callsite's first
// enabled execution or when a test arms a name before the site has run;
// both resolve to the same object.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  // Callsite path (via PILOTE_FAILPOINT): returns the stable handle for
  // `name`, creating it disarmed if unknown.
  Failpoint& Register(const char* name) PILOTE_EXCLUDES(mutex_);

  // Test path: arms `name` (registering it first if needed).
  // kInvalidArgument for a spec with code == kOk, nth < 1, or probability
  // outside [0, 1].
  Status Arm(const std::string& name, const FailpointSpec& spec)
      PILOTE_EXCLUDES(mutex_);

  // Parses and arms a ";"-separated spec list:
  //   "<name>=<trigger>[;<name>=<trigger>...]"
  // with <trigger> one of
  //   once[:<code>]  always[:<code>]  nth:<N>[:<code>]  prob:<P>:<seed>[:<code>]
  // and <code> a StatusCode name in snake case (io_error, data_loss,
  // unavailable, internal, resource_exhausted, ...; default io_error).
  // The literal "1" is accepted as an empty list (enable-only, the env
  // convention). Returns kInvalidArgument on the first malformed entry;
  // entries before it stay armed.
  Status ArmFromString(const std::string& config) PILOTE_EXCLUDES(mutex_);

  // Disarming an unknown name is a no-op.
  void Disarm(const std::string& name) PILOTE_EXCLUDES(mutex_);
  void DisarmAll() PILOTE_EXCLUDES(mutex_);

  // Every registered failpoint name, sorted. The chaos suite iterates this
  // after a clean warm-up cycle so a newly added failpoint on the covered
  // paths cannot silently go untested.
  std::vector<std::string> Names() const PILOTE_EXCLUDES(mutex_);

  std::vector<FailpointStats> Stats() const PILOTE_EXCLUDES(mutex_);

  // {"<name>":{"armed":bool,"hits":N,"fires":M},...} sorted by name — the
  // fault/recovery record CI uploads next to the chaos run.
  std::string StatsJson() const PILOTE_EXCLUDES(mutex_);

 private:
  FailpointRegistry() = default;

  Failpoint& RegisterLocked(const std::string& name)
      PILOTE_REQUIRES(mutex_);

  // The map is guarded; the pointees it owns are internally synchronized
  // failpoints whose handles legitimately outlive the lock.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_
      PILOTE_GUARDED_BY(mutex_);
};

// Test helper: enables the subsystem for a scope and disarms every
// failpoint (and restores the previous runtime flag) on exit, so one
// chaos case cannot leak an armed fault into the next.
class ScopedFailpoints {
 public:
  ScopedFailpoints()
      : previous_(internal::runtime_enabled.load(std::memory_order_relaxed)) {
    SetEnabled(true);
  }
  ~ScopedFailpoints() {
    FailpointRegistry::Global().DisarmAll();
    SetEnabled(previous_);
  }

  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  bool previous_;
};

}  // namespace fail
}  // namespace pilote

// Evaluates to a Status: OK unless the named failpoint is armed and fires.
// `name` must be a string literal (one registration per site). Never
// discard the result — propagate it (PILOTE_RETURN_IF_ERROR) or branch on
// it; tools/pilote_lint.py --stage concurrency rejects a bare
// `PILOTE_FAILPOINT(...);` statement.
#define PILOTE_FAILPOINT(name)                                            \
  (!::pilote::fail::Enabled()                                             \
       ? ::pilote::Status::Ok()                                           \
       : []() -> ::pilote::Status {                                       \
           static ::pilote::fail::Failpoint& pilote_fp_site =             \
               ::pilote::fail::FailpointRegistry::Global().Register(name);\
           return pilote_fp_site.Check();                                 \
         }())

#endif  // PILOTE_COMMON_FAILPOINT_H_
