#ifndef PILOTE_COMMON_ALLOC_TRACKER_H_
#define PILOTE_COMMON_ALLOC_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace pilote {
namespace alloc {

// Runtime allocation accounting for the hot-path discipline contract
// (static side: src/common/hot_path.h + pilote_lint --stage hotpath).
//
// alloc_tracker.cc replaces the global `operator new`/`operator delete`
// family: every heap allocation in the process is routed through one
// relaxed-load gate and, when tracking is enabled, bumps two plain
// thread-local counters (allocation count and requested bytes). The
// disabled cost is one relaxed atomic load and a predictable branch per
// allocation — the same contract as obs::Enabled() and the failpoint
// registry. No locks, no heap use, no syscalls inside the hook, so it is
// safe from static initialization onward and under every sanitizer.
//
// Enablement mirrors obs/metrics.h: the PILOTE_ALLOC_STATS environment
// variable (any value but "0") arms tracking for the process, and
// SetTrackingEnabled / ScopedTracking arm it programmatically (ProfileEdge
// and the allocation-pin tests use the scoped form).
//
// Measurement is per-thread by design: AllocationScope captures the
// calling thread's counters and reports the delta, so a worker measuring
// its own flush (serve::BatchingEngine::ProcessBatch) is never polluted by
// concurrent ingest threads. Deallocations are deliberately not counted —
// the discipline being enforced is "how often does the steady state hit
// the allocator", not live-heap accounting.
//
// Linking note: the replacement operators live in alloc_tracker.o inside
// the static pilote_common archive, which the linker only pulls in when
// some symbol of this header is referenced. Every measuring call site
// (AllocationScope, TrackingEnabled) is such a reference, so any binary
// that can observe counts also has the hooks installed.

namespace internal {

// The gate. Constant-initialized so `operator new` calls that run before
// any static initializer see a well-defined (disabled) state.
inline std::atomic<bool> tracking_enabled{false};

// Thread-local allocation counters, written by the operator new hook.
struct ThreadCounters {
  int64_t count = 0;
  int64_t bytes = 0;
};

ThreadCounters& Counters();

}  // namespace internal

// True when allocation tracking is armed (env or programmatic).
inline bool TrackingEnabled() {
  return internal::tracking_enabled.load(std::memory_order_relaxed);
}

// Programmatic arm/disarm. The PILOTE_ALLOC_STATS environment opt-in is
// applied once at static-initialization time and can be revoked here.
void SetTrackingEnabled(bool enabled);

// Forces tracking on for a scope and restores the previous state.
class ScopedTracking {
 public:
  ScopedTracking() : previous_(TrackingEnabled()) { SetTrackingEnabled(true); }
  ~ScopedTracking() { SetTrackingEnabled(previous_); }

  ScopedTracking(const ScopedTracking&) = delete;
  ScopedTracking& operator=(const ScopedTracking&) = delete;

 private:
  bool previous_;
};

// Allocations observed by the calling thread since tracking was enabled.
struct ThreadStats {
  int64_t count = 0;
  int64_t bytes = 0;
};

ThreadStats CurrentThreadStats();

// Delta-measures the calling thread's allocations across a region:
//
//   alloc::AllocationScope scope;
//   ... hot path under test ...
//   PILOTE_METRIC_HISTOGRAM("serve/batch_allocs", double(scope.count()));
//
// Counts are zero (not garbage) when tracking is disabled. Scopes nest
// freely: each one is an independent start snapshot.
class AllocationScope {
 public:
  AllocationScope();

  int64_t count() const;
  int64_t bytes() const;

 private:
  ThreadStats start_;
};

}  // namespace alloc
}  // namespace pilote

#endif  // PILOTE_COMMON_ALLOC_TRACKER_H_
