#ifndef PILOTE_COMMON_NUMERICS_GUARD_H_
#define PILOTE_COMMON_NUMERICS_GUARD_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

namespace pilote {
namespace numerics {

// Poison-checking for NaN/Inf at tensor op boundaries.
//
// Checks are inserted where numerical corruption is born (division, exp,
// sqrt, matrix products, loss forward/backward, optimizer steps) via
// PILOTE_CHECK_NUMERICS below. On the first non-finite value the process
// aborts with the producing op, the tensor shape, and the offending
// element, so a NaN in e.g. the joint distillation loss is attributed to
// the op that created it instead of surfacing epochs later as a corrupted
// prototype.
//
// Two activation modes:
//   - Compile-time: -DPILOTE_DEBUG_NUMERICS=ON bakes the checks in
//     unconditionally (the debug-numerics build preset).
//   - Runtime: SetEnabled(true) (or the PILOTE_CHECK_NUMERICS=1 environment
//     variable, read once at startup) flips checks on in any build. Off by
//     default; the disabled cost is one relaxed atomic load and a
//     predictable branch per guarded op.

namespace internal {

inline std::atomic<bool> runtime_enabled{false};

// Reads PILOTE_CHECK_NUMERICS from the environment once and seeds
// runtime_enabled; returns the seeded value.
bool InitFromEnvironment();

inline bool EnvironmentEnabled() {
  static const bool enabled = InitFromEnvironment();
  return enabled;
}

// Aborts via the PILOTE_CHECK failure machinery with a report naming the
// producing op, the tensor shape, and the first corrupted element.
[[noreturn]] void FailNonFinite(const char* op, const std::string& shape,
                                int64_t index, float value, const char* file,
                                int line);

}  // namespace internal

inline void SetEnabled(bool enabled) {
  internal::runtime_enabled.store(enabled, std::memory_order_relaxed);
}

inline bool Enabled() {
#ifdef PILOTE_DEBUG_NUMERICS
  return true;
#else
  return internal::EnvironmentEnabled() ||
         internal::runtime_enabled.load(std::memory_order_relaxed);
#endif
}

// Scans t for NaN/Inf and aborts with attribution on the first hit.
// TensorT is any type with data()/numel()/shape().ToString() (templated so
// common/ stays below tensor/ in the layering).
template <typename TensorT>
void CheckFinite(const char* op, const TensorT& t, const char* file,
                 int line) {
  const float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      internal::FailNonFinite(op, t.shape().ToString(), i, p[i], file, line);
    }
  }
}

// Scalar (e.g. reduction result) variant.
inline void CheckFiniteScalar(const char* op, float value, const char* file,
                              int line) {
  if (!std::isfinite(value)) {
    internal::FailNonFinite(op, "scalar", 0, value, file, line);
  }
}

}  // namespace numerics
}  // namespace pilote

// Guards a tensor-valued op boundary. `op` names the producer in the abort
// report; keep it specific ("Div output", "Adam step param", ...).
#define PILOTE_CHECK_NUMERICS(op, tensor)                                 \
  do {                                                                    \
    if (::pilote::numerics::Enabled()) {                                  \
      ::pilote::numerics::CheckFinite((op), (tensor), __FILE__, __LINE__); \
    }                                                                     \
  } while (0)

#define PILOTE_CHECK_NUMERICS_SCALAR(op, value)                        \
  do {                                                                 \
    if (::pilote::numerics::Enabled()) {                               \
      ::pilote::numerics::CheckFiniteScalar((op), (value), __FILE__,   \
                                            __LINE__);                 \
    }                                                                  \
  } while (0)

#endif  // PILOTE_COMMON_NUMERICS_GUARD_H_
