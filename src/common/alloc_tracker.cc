#include "common/alloc_tracker.h"

#include <cstdlib>
#include <new>

namespace pilote {
namespace alloc {
namespace internal {

ThreadCounters& Counters() {
  // Trivially-constructible thread_local: no guard variable, no
  // registration, safe to touch from the allocation hook at any point in
  // the thread's lifetime.
  static thread_local ThreadCounters counters;
  return counters;
}

namespace {

// One relaxed load + branch when disabled; two thread-local increments
// when enabled. Must stay allocation-free and lock-free: it runs inside
// operator new.
inline void NoteAllocation(std::size_t size) {
  if (tracking_enabled.load(std::memory_order_relaxed)) {
    ThreadCounters& counters = Counters();
    counters.count += 1;
    counters.bytes += static_cast<int64_t>(size);
  }
}

// Applies the PILOTE_ALLOC_STATS environment opt-in during static
// initialization. Allocations before this runs are simply not counted
// (the gate is constant-initialized to false), which is fine: the
// contract covers steady-state measurement, not process startup.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("PILOTE_ALLOC_STATS");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      tracking_enabled.store(true, std::memory_order_relaxed);
    }
  }
};
EnvInit env_init;

void* AllocateOrThrow(std::size_t size) {
  NoteAllocation(size);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AllocateNoThrow(std::size_t size) noexcept {
  NoteAllocation(size);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* AllocateAlignedOrThrow(std::size_t size, std::size_t alignment) {
  NoteAllocation(size);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace
}  // namespace internal

void SetTrackingEnabled(bool enabled) {
  internal::tracking_enabled.store(enabled, std::memory_order_relaxed);
}

ThreadStats CurrentThreadStats() {
  const internal::ThreadCounters& counters = internal::Counters();
  return ThreadStats{counters.count, counters.bytes};
}

AllocationScope::AllocationScope() : start_(CurrentThreadStats()) {}

int64_t AllocationScope::count() const {
  return CurrentThreadStats().count - start_.count;
}

int64_t AllocationScope::bytes() const {
  return CurrentThreadStats().bytes - start_.bytes;
}

}  // namespace alloc
}  // namespace pilote

// ---------------------------------------------------------------------------
// Global operator new/delete replacement (the runtime side of the hot-path
// discipline). The full replaceable family is provided so every allocation
// is funneled through malloc and counted symmetrically; deletes pass
// through to free() uncounted (see the header for why).
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  return pilote::alloc::internal::AllocateOrThrow(size);
}

void* operator new[](std::size_t size) {
  return pilote::alloc::internal::AllocateOrThrow(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return pilote::alloc::internal::AllocateNoThrow(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return pilote::alloc::internal::AllocateNoThrow(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return pilote::alloc::internal::AllocateAlignedOrThrow(
      size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return pilote::alloc::internal::AllocateAlignedOrThrow(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
