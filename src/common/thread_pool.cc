#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/macros.h"

namespace pilote {
namespace {

int ResolveNumThreads(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  return num_threads;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveNumThreads(num_threads)) {
  // With one logical thread everything runs inline; spawn no workers.
  if (num_threads_ == 1) return;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    // lifetime-ok: workers are joined in ~ThreadPool before `this` dies
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) {
        task_available_.Wait(mutex_);
      }
      if (shutting_down_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  ParallelForRanges(count, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

// hotpath-ok: worker handoff synchronization is the cost of parallel
// dispatch; the queue lock and completion wait are the mechanism.
void ThreadPool::ParallelForRanges(
    int64_t count, const std::function<void(int64_t, int64_t)>& fn) {
  if (count <= 0) return;
  const int64_t chunks =
      std::min<int64_t>(count, static_cast<int64_t>(num_threads_));
  if (chunks <= 1 || workers_.empty()) {
    fn(0, count);
    return;
  }
  const int64_t chunk_size = (count + chunks - 1) / chunks;

  // release on the final decrement / acquire on the waiter's observation:
  // every chunk's writes happen-before ParallelForRanges returns.
  std::atomic<int64_t> remaining{chunks};
  Mutex done_mutex;
  CondVar done_cv;

  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * chunk_size;
    const int64_t end = std::min(count, begin + chunk_size);
    // lifetime-ok: ParallelForRanges blocks on done_cv until every chunk
    // has run, so the captured frame outlives all submitted tasks
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(done_mutex);
        done_cv.NotifyOne();
      }
    });
  }
  MutexLock lock(done_mutex);
  while (remaining.load(std::memory_order_acquire) != 0) {
    done_cv.Wait(done_mutex);
  }
}

// hotpath-ok: process-lifetime singleton, allocates on first call only
ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace pilote
