#ifndef PILOTE_COMMON_THREAD_ANNOTATIONS_H_
#define PILOTE_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis for the concurrent surface of the serving
// stack. Every mutex in src/ is one of the capability wrappers below, every
// guarded member carries PILOTE_GUARDED_BY, and the Clang CI lane compiles
// with -Wthread-safety -Wthread-safety-beta so a lock-discipline violation
// (reading a guarded member without the lock, releasing a lock that is not
// held, a forgotten unlock on an early return) is a compile error rather
// than a TSan finding the test schedule may or may not trigger.
//
// On non-Clang compilers (the GCC lanes, local builds) the macros expand to
// nothing and the wrappers are zero-cost shims over the std primitives.
//
// Usage:
//
//   class Buffer {
//    public:
//     void Push(int v) PILOTE_EXCLUDES(mutex_) {
//       MutexLock lock(mutex_);
//       items_.push_back(v);
//     }
//    private:
//     Mutex mutex_;
//     std::vector<int> items_ PILOTE_GUARDED_BY(mutex_);
//   };
//
// Condition waits go through CondVar, whose Wait/WaitUntil are annotated
// PILOTE_REQUIRES(mu) — write the predicate as an explicit while loop
// around Wait (a predicate lambda is opaque to the analysis):
//
//   MutexLock lock(mutex_);
//   while (queue_.empty() && !closed_) not_empty_.Wait(mutex_);
//
// tools/pilote_lint.py --stage concurrency enforces the repo side of the
// contract: raw std::mutex outside this header is rejected, and members of
// a mutex-owning class must carry PILOTE_GUARDED_BY (or be const, atomic,
// or carry an explicit `// unguarded: <reason>` marker).

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define PILOTE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PILOTE_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

// A type that models a capability (a lock). The string names the kind in
// diagnostics ("mutex", "shared_mutex").
#define PILOTE_CAPABILITY(x) PILOTE_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (MutexLock, ReaderLock, WriterLock below).
#define PILOTE_SCOPED_CAPABILITY PILOTE_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads require the capability held (shared suffices), writes
// require it exclusively. PT_ variant guards the pointee of a pointer.
#define PILOTE_GUARDED_BY(x) PILOTE_THREAD_ANNOTATION(guarded_by(x))
#define PILOTE_PT_GUARDED_BY(x) PILOTE_THREAD_ANNOTATION(pt_guarded_by(x))

// Static lock-order declaration; cycles are diagnosed under -beta.
#define PILOTE_ACQUIRED_BEFORE(...) \
  PILOTE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PILOTE_ACQUIRED_AFTER(...) \
  PILOTE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function preconditions: the caller must hold the capability (and must NOT
// hold it for EXCLUDES — documents "this function locks internally").
#define PILOTE_REQUIRES(...) \
  PILOTE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PILOTE_REQUIRES_SHARED(...) \
  PILOTE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PILOTE_EXCLUDES(...) \
  PILOTE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire/release capabilities (the wrapper methods below).
#define PILOTE_ACQUIRE(...) \
  PILOTE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PILOTE_ACQUIRE_SHARED(...) \
  PILOTE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PILOTE_RELEASE(...) \
  PILOTE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PILOTE_RELEASE_SHARED(...) \
  PILOTE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Releases a capability whichever mode it was acquired in; the right
// annotation for a scoped-lock destructor.
#define PILOTE_RELEASE_GENERIC(...) \
  PILOTE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define PILOTE_TRY_ACQUIRE(...) \
  PILOTE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PILOTE_TRY_ACQUIRE_SHARED(...) \
  PILOTE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (for code reached both with
// and without the lock).
#define PILOTE_ASSERT_CAPABILITY(x) \
  PILOTE_THREAD_ANNOTATION(assert_capability(x))
#define PILOTE_ASSERT_SHARED_CAPABILITY(x) \
  PILOTE_THREAD_ANNOTATION(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define PILOTE_RETURN_CAPABILITY(x) PILOTE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for deliberately lock-free reads of otherwise-guarded state
// (e.g. a version counter that is itself atomic). Always pair with a
// comment explaining why the access is safe.
#define PILOTE_NO_THREAD_SAFETY_ANALYSIS \
  PILOTE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pilote {

class CondVar;

// Exclusive mutex capability over std::mutex.
class PILOTE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PILOTE_ACQUIRE() { mutex_.lock(); }
  void Unlock() PILOTE_RELEASE() { mutex_.unlock(); }
  bool TryLock() PILOTE_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

// Reader-writer capability over std::shared_mutex.
class PILOTE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PILOTE_ACQUIRE() { mutex_.lock(); }
  void Unlock() PILOTE_RELEASE() { mutex_.unlock(); }
  void LockShared() PILOTE_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void UnlockShared() PILOTE_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

// Scoped exclusive lock on a Mutex.
class PILOTE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PILOTE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PILOTE_RELEASE_GENERIC() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped exclusive (writer) lock on a SharedMutex.
class PILOTE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) PILOTE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() PILOTE_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared (reader) lock on a SharedMutex.
class PILOTE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) PILOTE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() PILOTE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable paired with Mutex. Implemented over
// std::condition_variable via the adopt/release dance so the fast futex
// path is kept; the annotated Wait* entry points are what make predicate
// loops analyzable (callers hold `mu` across the loop).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks until notified (or spuriously woken),
  // and reacquires `mu` before returning.
  void Wait(Mutex& mu) PILOTE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns false when `deadline` elapsed before a notification (the mutex
  // is reacquired either way). Spurious wakeups return true; re-check the
  // predicate in the caller's loop.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      PILOTE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pilote

#endif  // PILOTE_COMMON_THREAD_ANNOTATIONS_H_
