#include "exec/plan.h"

#include <sstream>
#include <utility>

#include "common/macros.h"

namespace pilote {
namespace exec {
namespace {

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kGemmTransB:
      return "gemm_trans_b";
    case StepKind::kElementwise:
      return "elementwise";
    case StepKind::kRowSquaredNorm:
      return "row_squared_norm";
    case StepKind::kNcmCombine:
      return "ncm_combine";
    case StepKind::kArgMinLabel:
      return "argmin_label";
  }
  return "?";
}

const char* MicroOpName(MicroOp op) {
  switch (op) {
    case MicroOp::kStandardize:
      return "standardize";
    case MicroOp::kAddRow:
      return "add_row";
    case MicroOp::kSubRow:
      return "sub_row";
    case MicroOp::kMulRow:
      return "mul_row";
    case MicroOp::kRelu:
      return "relu";
  }
  return "?";
}

}  // namespace

InferencePlan::InferencePlan(std::vector<Step> steps,
                             std::vector<Tensor> constants,
                             std::vector<ArenaSlice> value_slices,
                             std::vector<int64_t> value_cols,
                             std::vector<int> labels, int64_t input_cols,
                             int32_t output_value, int32_t output_ready_step,
                             int64_t arena_per_row, int64_t version)
    : steps_(std::move(steps)),
      constants_(std::move(constants)),
      value_slices_(std::move(value_slices)),
      value_cols_(std::move(value_cols)),
      labels_(std::move(labels)),
      input_cols_(input_cols),
      output_value_(output_value),
      output_ready_step_(output_ready_step),
      arena_per_row_(arena_per_row),
      version_(version) {
  PILOTE_CHECK(!steps_.empty());
  PILOTE_CHECK_GT(input_cols_, 0);
}

std::string InferencePlan::DebugString() const {
  std::ostringstream os;
  os << "plan v" << version_ << ": input [n, " << input_cols_
     << "], arena " << arena_per_row_ << " floats/row, " << steps_.size()
     << " steps\n";
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    os << "  #" << i << " " << StepKindName(step.kind) << " v" << step.in;
    if (step.in2 >= 0) os << " (+v" << step.in2 << ")";
    if (step.out >= 0) {
      os << " -> v" << step.out << " [n, " << step.cols << "]";
      if (step.out == step.in) os << " in-place";
    } else {
      os << " -> labels";
    }
    if (step.kind == StepKind::kElementwise) {
      os << " {";
      for (size_t m = 0; m < step.micro.size(); ++m) {
        if (m > 0) os << ", ";
        os << MicroOpName(step.micro[m].op);
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace exec
}  // namespace pilote
