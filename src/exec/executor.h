#ifndef PILOTE_EXEC_EXECUTOR_H_
#define PILOTE_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hot_path.h"
#include "common/span.h"
#include "exec/plan.h"
#include "tensor/tensor.h"

namespace pilote {
namespace exec {

// Zero-allocation replay of an InferencePlan.
//
// The executor owns one flat float arena sized plan->arena_per_row() * n
// for the largest batch n seen so far; every intermediate of a replay
// lives in its planned slice of that arena, so the steady state touches
// the allocator only when the batch size grows past the high-water mark.
// There is no shared_ptr traffic and no std::function dispatch on the
// replay path: steps are a flat vector walked with a switch, and GEMMs go
// through the serial kernel entry points.
//
// Concurrency: the arena is exclusive mutable state, but the executor is
// reachable from const inference entry points that the serving layer may
// call concurrently under a shared lock. TryRun/TryRunClassify claim the
// arena with a lock-free atomic test-and-set and return false when it is
// already claimed — the caller then falls back to the eager path. The
// single-worker serve loop therefore always replays through the plan,
// while overlapping ad-hoc readers stay correct without a mutex on the
// hot path.
class Executor {
 public:
  explicit Executor(std::shared_ptr<const InferencePlan> plan);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  const InferencePlan& plan() const { return *plan_; }

  // Replays the plan on `in` [n, input_cols] and writes the marked output
  // value into `out` (resized to [n, out_cols]; its buffer is reused when
  // the caller passes the same tensor again). Returns false without
  // running when the arena is claimed by a concurrent replay.
  PILOTE_HOT_PATH bool TryRun(const Tensor& in, Tensor* out);

  // Replays the plan through its classify tail and writes one label per
  // input row. Returns false when the arena is claimed.
  PILOTE_HOT_PATH bool TryRunClassify(const Tensor& in,
                                      std::vector<int>* labels);

  // CHECK-failing conveniences for exclusively-owned executors (tests,
  // single-threaded tools): as above but a concurrent claim is fatal.
  PILOTE_HOT_PATH void Run(const Tensor& in, Tensor* out);
  PILOTE_HOT_PATH void RunClassify(const Tensor& in,
                                   std::vector<int>* labels);

  // Current arena capacity in floats (tests: pinned across steady-state
  // replays, grows only past the batch-size high-water mark).
  int64_t arena_capacity() const {
    return static_cast<int64_t>(arena_.size());
  }

 private:
  // Walks steps [0, last_step] for a batch of n rows (TryRun stops at the
  // plan's output_ready_step; the classify tail needs the full list).
  // Requires the arena claim.
  PILOTE_HOT_PATH void ReplaySteps(const Tensor& in, int64_t n,
                                   int32_t last_step,
                                   std::vector<int>* labels);
  // Arena slice of a planned value for a batch of n rows, as a sized
  // span: pointer+size in release, bounds-checked kernels-side writes in
  // debug. Slices are re-derived per use — never stored across a resize.
  PILOTE_HOT_PATH Span<float> SliceAt(int32_t value, int64_t n);
  PILOTE_HOT_PATH ConstSpan<float> ReadAt(const Tensor& in, int32_t value,
                                          int64_t n);

  std::shared_ptr<const InferencePlan> plan_;
  std::vector<float> arena_;
  int64_t rows_high_water_ = 0;
  std::atomic<bool> busy_{false};
};

}  // namespace exec
}  // namespace pilote

#endif  // PILOTE_EXEC_EXECUTOR_H_
