#ifndef PILOTE_EXEC_MEMORY_PLANNER_H_
#define PILOTE_EXEC_MEMORY_PLANNER_H_

#include <cstdint>
#include <vector>

namespace pilote {
namespace exec {

// Lifetime-interval arena planning for a compiled inference plan (see
// DESIGN.md "Compiled inference plans").
//
// Every intermediate value of a plan is live over a contiguous range of
// step indices [def_step, last_use]. The planner assigns each value a
// [offset, offset + size) slice of a single flat arena such that slices of
// values whose live ranges overlap are disjoint, while values whose live
// ranges do not overlap may share the same bytes. Sizes and offsets are in
// *per-row float units*: every intermediate of the backbone forward is a
// [n, cols] matrix whose row count n is the batch size, so planning in
// per-row units makes one layout valid for every batch size — the executor
// scales offsets by n at run time, which preserves disjointness
// (offset_a + size_a <= offset_b implies n*(offset_a + size_a) <=
// n*offset_b) and keeps every scaled slice a contiguous row-major
// [n, cols] block.

// One value's live range. `def_step` is the step that writes the value,
// `last_use` the last step that reads it (an in-place consumer counts as a
// use). Requires def_step <= last_use and size > 0.
struct LifetimeInterval {
  int32_t def_step = 0;
  int32_t last_use = 0;
  int64_t size = 0;  // per-row floats
};

// Arena slice assigned to one value.
struct ArenaSlice {
  int64_t offset = 0;  // per-row floats
  int64_t size = 0;    // per-row floats
};

// The planned layout: one slice per input interval (same order) and the
// arena extent that covers them all.
struct ArenaLayout {
  std::vector<ArenaSlice> slices;
  int64_t total_size = 0;  // per-row floats
};

// First-fit interval allocation: intervals are processed in def_step order
// (ties broken by input position, so the layout is deterministic); at each
// definition point every slice whose owner's live range has ended is
// returned to a coalesced free list, and the first gap large enough is
// taken — the arena only grows when no expired slice fits.
ArenaLayout PlanArena(const std::vector<LifetimeInterval>& intervals);

}  // namespace exec
}  // namespace pilote

#endif  // PILOTE_EXEC_MEMORY_PLANNER_H_
