#include "exec/memory_planner.h"

#include <algorithm>

#include "common/macros.h"

namespace pilote {
namespace exec {
namespace {

// A free gap in the arena, kept sorted by offset and coalesced with its
// neighbours on release so first-fit sees maximal gaps.
struct FreeGap {
  int64_t offset = 0;
  int64_t size = 0;
};

// An interval currently holding a slice; expires after `last_use`.
struct ActiveSlice {
  int32_t last_use = 0;
  int64_t offset = 0;
  int64_t size = 0;
};

void ReleaseGap(std::vector<FreeGap>& free_list, int64_t offset,
                int64_t size) {
  const auto it = std::lower_bound(
      free_list.begin(), free_list.end(), offset,
      [](const FreeGap& gap, int64_t value) { return gap.offset < value; });
  const size_t pos = static_cast<size_t>(it - free_list.begin());
  free_list.insert(it, FreeGap{offset, size});
  // Coalesce with the right neighbour, then the left one.
  if (pos + 1 < free_list.size() &&
      free_list[pos].offset + free_list[pos].size ==
          free_list[pos + 1].offset) {
    free_list[pos].size += free_list[pos + 1].size;
    free_list.erase(free_list.begin() + static_cast<ptrdiff_t>(pos) + 1);
  }
  if (pos > 0 && free_list[pos - 1].offset + free_list[pos - 1].size ==
                     free_list[pos].offset) {
    free_list[pos - 1].size += free_list[pos].size;
    free_list.erase(free_list.begin() + static_cast<ptrdiff_t>(pos));
  }
}

}  // namespace

ArenaLayout PlanArena(const std::vector<LifetimeInterval>& intervals) {
  ArenaLayout layout;
  layout.slices.resize(intervals.size());

  // def_step order, input position as the deterministic tie-break.
  std::vector<size_t> order(intervals.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return intervals[a].def_step < intervals[b].def_step;
  });

  std::vector<FreeGap> free_list;
  std::vector<ActiveSlice> active;
  for (size_t idx : order) {
    const LifetimeInterval& interval = intervals[idx];
    PILOTE_CHECK_GT(interval.size, 0);
    PILOTE_CHECK(interval.def_step <= interval.last_use)
        << "interval defined at step " << interval.def_step
        << " but last used at step " << interval.last_use;

    // Expire every slice whose owner died strictly before this definition.
    for (size_t a = 0; a < active.size();) {
      if (active[a].last_use < interval.def_step) {
        ReleaseGap(free_list, active[a].offset, active[a].size);
        active.erase(active.begin() + static_cast<ptrdiff_t>(a));
      } else {
        ++a;
      }
    }

    // First fit: the lowest-offset gap that is large enough.
    int64_t offset = -1;
    for (size_t g = 0; g < free_list.size(); ++g) {
      if (free_list[g].size >= interval.size) {
        offset = free_list[g].offset;
        free_list[g].offset += interval.size;
        free_list[g].size -= interval.size;
        if (free_list[g].size == 0) {
          free_list.erase(free_list.begin() + static_cast<ptrdiff_t>(g));
        }
        break;
      }
    }
    if (offset < 0) {
      offset = layout.total_size;
      layout.total_size += interval.size;
    }
    layout.slices[idx] = ArenaSlice{offset, interval.size};
    active.push_back(ActiveSlice{interval.last_use, offset, interval.size});
  }
  return layout;
}

}  // namespace exec
}  // namespace pilote
