#include "exec/plan_builder.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace pilote {
namespace exec {

ValueRef PlanBuilder::NewValue(int64_t cols) {
  PILOTE_CHECK_GT(cols, 0);
  const int32_t id = static_cast<int32_t>(value_cols_.size());
  value_cols_.push_back(cols);
  return ValueRef{id, cols};
}

int32_t PlanBuilder::AddConstant(const Tensor& constant) {
  PILOTE_CHECK_GT(constant.numel(), 0);
  const int32_t id = static_cast<int32_t>(constants_.size());
  constants_.push_back(constant);  // deep copy: plans own their constants
  return id;
}

void PlanBuilder::CheckValue(ValueRef v) const {
  PILOTE_CHECK(!finished_) << "PlanBuilder reused after Finish";
  PILOTE_CHECK(v.defined());
  PILOTE_CHECK_LT(static_cast<size_t>(v.id), value_cols_.size());
  PILOTE_CHECK_EQ(value_cols_[static_cast<size_t>(v.id)], v.cols);
  PILOTE_CHECK(!has_classify_tail_)
      << "recorder op after the ArgMinLabels terminal";
}

ValueRef PlanBuilder::DeclareInput(int64_t cols) {
  PILOTE_CHECK(value_cols_.empty()) << "DeclareInput must be the first call";
  PILOTE_CHECK(!finished_);
  return NewValue(cols);
}

ValueRef PlanBuilder::RecordElementwise(ValueRef x, MicroStep micro) {
  CheckValue(x);
  // The marked output is pinned: never extend or overwrite it in place.
  const bool pinned = x.id == output_value_;
  if (!steps_.empty() && !pinned) {
    Step& last = steps_.back();
    if (last.kind == StepKind::kElementwise && last.out == x.id) {
      // x was just produced by an elementwise step and nothing else has
      // consumed it: fuse by extending that step's micro chain.
      last.micro.push_back(micro);
      return x;
    }
    if (last.out == x.id) {
      // x was just produced by a non-elementwise step (GEMM): start an
      // in-place fused step on its arena slice.
      Step step;
      step.kind = StepKind::kElementwise;
      step.in = x.id;
      step.out = x.id;
      step.cols = x.cols;
      step.micro.push_back(micro);
      steps_.push_back(std::move(step));
      return x;
    }
  }
  // x is the plan input, the pinned output, or has other consumers: map
  // into a fresh value (the first micro pass reads src and writes dst).
  ValueRef out = NewValue(x.cols);
  Step step;
  step.kind = StepKind::kElementwise;
  step.in = x.id;
  step.out = out.id;
  step.cols = out.cols;
  step.micro.push_back(micro);
  steps_.push_back(std::move(step));
  return out;
}

ValueRef PlanBuilder::Standardize(ValueRef x, const Tensor& mean,
                                  const Tensor& stddev) {
  CheckValue(x);
  PILOTE_CHECK_EQ(mean.rank(), 1);
  PILOTE_CHECK_EQ(mean.dim(0), x.cols);
  PILOTE_CHECK(mean.shape() == stddev.shape());
  MicroStep micro;
  micro.op = MicroOp::kStandardize;
  micro.a = AddConstant(mean);
  micro.b = AddConstant(stddev);
  return RecordElementwise(x, micro);
}

// hotpath-ok: capture-time recorder, cold by definition; shares the bare
// name `Gemm` with the hot tensor kernel, which the name-keyed call graph
// cannot tell apart.
ValueRef PlanBuilder::Gemm(ValueRef x, const Tensor& weight) {
  CheckValue(x);
  PILOTE_CHECK_EQ(weight.rank(), 2);
  PILOTE_CHECK_EQ(weight.cols(), x.cols)
      << "GEMM weight depth " << weight.cols() << " vs input " << x.cols;
  ValueRef out = NewValue(weight.rows());
  Step step;
  step.kind = StepKind::kGemmTransB;
  step.in = x.id;
  step.out = out.id;
  step.constant = AddConstant(weight);
  step.k = x.cols;
  step.cols = out.cols;
  steps_.push_back(std::move(step));
  return out;
}

ValueRef PlanBuilder::BiasAdd(ValueRef x, const Tensor& bias) {
  CheckValue(x);
  PILOTE_CHECK_EQ(bias.rank(), 1);
  PILOTE_CHECK_EQ(bias.dim(0), x.cols);
  MicroStep micro;
  micro.op = MicroOp::kAddRow;
  micro.a = AddConstant(bias);
  return RecordElementwise(x, micro);
}

ValueRef PlanBuilder::BatchNormInference(ValueRef x, const Tensor& gamma,
                                         const Tensor& beta,
                                         const Tensor& mean,
                                         const Tensor& var, float eps) {
  CheckValue(x);
  PILOTE_CHECK_EQ(gamma.rank(), 1);
  PILOTE_CHECK_EQ(gamma.dim(0), x.cols);
  PILOTE_CHECK(gamma.shape() == beta.shape());
  PILOTE_CHECK(gamma.shape() == mean.shape());
  PILOTE_CHECK(gamma.shape() == var.shape());
  // inv_std is a pure function of the captured running variance, computed
  // with the exact expression of the eager BatchNormInference op — the
  // precomputed constant holds the same floats the eager path rebuilds on
  // every forward.
  Tensor inv_std(Shape::Vector(x.cols));
  for (int64_t c = 0; c < x.cols; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + eps);
  }
  MicroStep sub_mean;
  sub_mean.op = MicroOp::kSubRow;
  sub_mean.a = AddConstant(mean);
  ValueRef v = RecordElementwise(x, sub_mean);
  MicroStep mul_inv;
  mul_inv.op = MicroOp::kMulRow;
  mul_inv.a = AddConstant(inv_std);
  v = RecordElementwise(v, mul_inv);
  MicroStep mul_gamma;
  mul_gamma.op = MicroOp::kMulRow;
  mul_gamma.a = AddConstant(gamma);
  v = RecordElementwise(v, mul_gamma);
  MicroStep add_beta;
  add_beta.op = MicroOp::kAddRow;
  add_beta.a = AddConstant(beta);
  return RecordElementwise(v, add_beta);
}

ValueRef PlanBuilder::Relu(ValueRef x) {
  CheckValue(x);
  MicroStep micro;
  micro.op = MicroOp::kRelu;
  return RecordElementwise(x, micro);
}

ValueRef PlanBuilder::SquaredDistances(ValueRef x, const Tensor& prototypes,
                                       const Tensor& proto_sq_norms) {
  CheckValue(x);
  PILOTE_CHECK_EQ(prototypes.rank(), 2);
  PILOTE_CHECK_EQ(prototypes.cols(), x.cols);
  PILOTE_CHECK_EQ(proto_sq_norms.numel(), prototypes.rows());
  // cross[n, k] = x * prototypes^T
  ValueRef cross = Gemm(x, prototypes);
  // na[n, 1] = per-row squared norm of x.
  ValueRef norms = NewValue(1);
  Step norm_step;
  norm_step.kind = StepKind::kRowSquaredNorm;
  norm_step.in = x.id;
  norm_step.out = norms.id;
  norm_step.k = x.cols;
  norm_step.cols = 1;
  steps_.push_back(std::move(norm_step));
  // distances = max(0, na[i] + nb[j] - 2 * cross[i, j]), in place on cross.
  Step combine;
  combine.kind = StepKind::kNcmCombine;
  combine.in = cross.id;
  combine.in2 = norms.id;
  combine.out = cross.id;
  combine.constant = AddConstant(proto_sq_norms);
  combine.cols = cross.cols;
  steps_.push_back(std::move(combine));
  return cross;
}

void PlanBuilder::ArgMinLabels(ValueRef distances, std::vector<int> labels) {
  CheckValue(distances);
  PILOTE_CHECK_EQ(static_cast<int64_t>(labels.size()), distances.cols)
      << "one label per distance column";
  Step step;
  step.kind = StepKind::kArgMinLabel;
  step.in = distances.id;
  step.cols = distances.cols;
  steps_.push_back(std::move(step));
  labels_ = std::move(labels);
  has_classify_tail_ = true;
}

void PlanBuilder::MarkOutput(ValueRef v) {
  CheckValue(v);
  PILOTE_CHECK(v.id != 0) << "the plan input cannot be the output";
  PILOTE_CHECK_EQ(output_value_, -1) << "output already marked";
  output_value_ = v.id;
}

Result<std::shared_ptr<const InferencePlan>> PlanBuilder::Finish(
    int64_t version) {
  PILOTE_CHECK(!finished_) << "PlanBuilder reused after Finish";
  finished_ = true;
  if (value_cols_.empty()) {
    return Status::FailedPrecondition("plan capture declared no input");
  }
  if (steps_.empty()) {
    return Status::FailedPrecondition("plan capture recorded no steps");
  }
  if (output_value_ < 0 && !has_classify_tail_) {
    return Status::FailedPrecondition(
        "plan has neither a marked output nor a classify tail");
  }

  // Live ranges over step indices: def = the step writing the value, last
  // use = the last step reading (or in-place rewriting) it. The marked
  // output is read after the last step (the executor copies it out), so
  // its range extends to the end.
  const int32_t last_step = static_cast<int32_t>(steps_.size()) - 1;
  std::vector<LifetimeInterval> intervals(value_cols_.size() - 1);
  std::vector<bool> defined(value_cols_.size(), false);
  defined[0] = true;  // the input is defined by the caller
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    const int32_t si = static_cast<int32_t>(s);
    for (int32_t value : {step.in, step.in2}) {
      if (value <= 0) continue;  // the input is not arena-resident
      PILOTE_CHECK(defined[static_cast<size_t>(value)])
          << "step " << s << " reads undefined value v" << value;
      intervals[static_cast<size_t>(value) - 1].last_use = si;
    }
    if (step.out > 0) {
      LifetimeInterval& interval =
          intervals[static_cast<size_t>(step.out) - 1];
      if (!defined[static_cast<size_t>(step.out)]) {
        defined[static_cast<size_t>(step.out)] = true;
        interval.def_step = si;
        interval.size = value_cols_[static_cast<size_t>(step.out)];
      }
      interval.last_use = si;
    }
  }
  for (size_t v = 1; v < value_cols_.size(); ++v) {
    if (!defined[v]) {
      return Status::Internal("plan value never defined");
    }
  }
  // The step at which the marked output is complete: the last write to it.
  // It is pinned from MarkOutput on, so everything past that step is
  // classify-tail work a tensor-only replay can skip.
  int32_t output_ready_step = -1;
  if (output_value_ > 0) {
    intervals[static_cast<size_t>(output_value_) - 1].last_use = last_step;
    for (size_t s = 0; s < steps_.size(); ++s) {
      if (steps_[s].out == output_value_) {
        output_ready_step = static_cast<int32_t>(s);
      }
    }
    PILOTE_CHECK_GE(output_ready_step, 0);
  }

  ArenaLayout layout = PlanArena(intervals);
  std::vector<ArenaSlice> value_slices(value_cols_.size());
  value_slices[0] = ArenaSlice{0, 0};
  for (size_t v = 1; v < value_cols_.size(); ++v) {
    value_slices[v] = layout.slices[v - 1];
  }

  const int64_t input_cols = value_cols_[0];
  return std::shared_ptr<const InferencePlan>(new InferencePlan(
      std::move(steps_), std::move(constants_), std::move(value_slices),
      std::move(value_cols_), std::move(labels_), input_cols, output_value_,
      output_ready_step, layout.total_size, version));
}

}  // namespace exec
}  // namespace pilote
