#include "exec/executor.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/numerics_guard.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace exec {
namespace {

// Reusable scoped claim of the executor arena: lock-free test-and-set so
// the replay path never takes a mutex.
class ArenaClaim {
 public:
  explicit ArenaClaim(std::atomic<bool>& busy) : busy_(busy) {
    claimed_ = !busy_.exchange(true, std::memory_order_acquire);
  }
  ~ArenaClaim() {
    if (claimed_) busy_.store(false, std::memory_order_release);
  }

  ArenaClaim(const ArenaClaim&) = delete;
  ArenaClaim& operator=(const ArenaClaim&) = delete;

  bool claimed() const { return claimed_; }

 private:
  std::atomic<bool>& busy_;
  bool claimed_ = false;
};

// The numerics-guard insertion point of the replay path: mirrors the
// per-op PILOTE_CHECK_NUMERICS of the eager kernels, over the arena slice
// a step just wrote. Gated on the same runtime/compile-time switch.
PILOTE_HOT_PATH void GuardStepNumerics(const char* step_name, const float* p,
                                       int64_t count) {
  if (!numerics::Enabled()) return;
  for (int64_t i = 0; i < count; ++i) {
    PILOTE_CHECK(std::isfinite(p[i]))
        << "non-finite value in compiled-plan step " << step_name
        << " at flat index " << i;
  }
}

// One elementwise micro pass over [n, cols], reading src and writing dst
// (src == dst for the in-place passes after the first). Each pass stores
// every element, reproducing the rounding sequence of the eager
// RowBroadcast / ElementwiseUnary / StandardScaler::Transform kernels.
PILOTE_HOT_PATH void ApplyMicroPass(const MicroStep& micro, const float* pa,
                                    const float* pb, const float* src,
                                    float* dst, int64_t n, int64_t cols) {
  for (int64_t r = 0; r < n; ++r) {
    const float* s = src + r * cols;
    float* d = dst + r * cols;
    switch (micro.op) {
      case MicroOp::kStandardize:
        for (int64_t c = 0; c < cols; ++c) d[c] = (s[c] - pa[c]) / pb[c];
        break;
      case MicroOp::kAddRow:
        for (int64_t c = 0; c < cols; ++c) d[c] = s[c] + pa[c];
        break;
      case MicroOp::kSubRow:
        for (int64_t c = 0; c < cols; ++c) d[c] = s[c] - pa[c];
        break;
      case MicroOp::kMulRow:
        for (int64_t c = 0; c < cols; ++c) d[c] = s[c] * pa[c];
        break;
      case MicroOp::kRelu:
        for (int64_t c = 0; c < cols; ++c)
          d[c] = s[c] > 0.0f ? s[c] : 0.0f;
        break;
    }
  }
}

}  // namespace

Executor::Executor(std::shared_ptr<const InferencePlan> plan)
    : plan_(std::move(plan)) {
  PILOTE_CHECK(plan_ != nullptr);
}

Span<float> Executor::SliceAt(int32_t value, int64_t n) {
  PILOTE_DCHECK(value > 0);
  // Per-row offsets scale by the batch size; disjoint per-row slices stay
  // disjoint after scaling (see exec/memory_planner.h).
  const ArenaSlice& s = plan_->slice(value);
  return Span<float>(arena_.data() + s.offset * n,
                     static_cast<size_t>(s.size * n));
}

ConstSpan<float> Executor::ReadAt(const Tensor& in, int32_t value,
                                  int64_t n) {
  if (value == 0) return in.span();
  return SliceAt(value, n);
}

void Executor::ReplaySteps(const Tensor& in, int64_t n, int32_t last_step,
                           std::vector<int>* labels) {
  if (n > rows_high_water_) {
    rows_high_water_ = n;
    // hotpath-ok: arena growth past the batch-size high-water mark only
    arena_.resize(static_cast<size_t>(plan_->arena_per_row() * n));
  }
  const std::vector<Step>& steps = plan_->steps();
  for (int32_t s = 0; s <= last_step; ++s) {
    const Step& step = steps[static_cast<size_t>(s)];
    switch (step.kind) {
      case StepKind::kGemmTransB: {
        const Tensor& weight = plan_->constant(step.constant);
        GemmTransBSerial(ReadAt(in, step.in, n).data(), weight.data(),
                         SliceAt(step.out, n).data(), n, step.k,
                         step.cols);
        GuardStepNumerics("gemm", SliceAt(step.out, n).data(),
                          n * step.cols);
        break;
      }
      case StepKind::kElementwise: {
        const float* src = ReadAt(in, step.in, n).data();
        float* dst = SliceAt(step.out, n).data();
        for (const MicroStep& micro : step.micro) {
          const float* pa =
              micro.a >= 0 ? plan_->constant(micro.a).data() : nullptr;
          const float* pb =
              micro.b >= 0 ? plan_->constant(micro.b).data() : nullptr;
          ApplyMicroPass(micro, pa, pb, src, dst, n, step.cols);
          src = dst;  // later passes run in place on the output slice
        }
        GuardStepNumerics("elementwise", dst, n * step.cols);
        break;
      }
      case StepKind::kRowSquaredNorm: {
        RowSquaredNormInto(ReadAt(in, step.in, n).data(), n, step.k,
                           SliceAt(step.out, n).data());
        GuardStepNumerics("row_squared_norm",
                          SliceAt(step.out, n).data(), n);
        break;
      }
      case StepKind::kNcmCombine: {
        const Tensor& proto_norms = plan_->constant(step.constant);
        SquaredDistanceCombineInto(ReadAt(in, step.in, n).data(),
                                   ReadAt(in, step.in2, n).data(),
                                   proto_norms.data(),
                                   SliceAt(step.out, n).data(), n,
                                   step.cols);
        GuardStepNumerics("ncm_combine", SliceAt(step.out, n).data(),
                          n * step.cols);
        break;
      }
      case StepKind::kArgMinLabel: {
        PILOTE_DCHECK(labels != nullptr);
        const float* distances = ReadAt(in, step.in, n).data();
        const std::vector<int>& table = plan_->labels();
        labels->resize(static_cast<size_t>(n));  // hotpath-ok: the output
        for (int64_t r = 0; r < n; ++r) {
          const float* pm = distances + r * step.cols;
          // Same first-minimum rule as the eager ArgMinPerRow.
          const int64_t nearest = std::min_element(pm, pm + step.cols) - pm;
          (*labels)[static_cast<size_t>(r)] =
              table[static_cast<size_t>(nearest)];
        }
        break;
      }
    }
  }
}

bool Executor::TryRun(const Tensor& in, Tensor* out) {
  PILOTE_CHECK(out != nullptr);
  PILOTE_CHECK_EQ(in.rank(), 2);
  PILOTE_CHECK_EQ(in.cols(), plan_->input_cols());
  const int32_t output = plan_->output_value();
  PILOTE_CHECK(output > 0) << "plan has no marked tensor output";
  ArenaClaim claim(busy_);
  if (!claim.claimed()) return false;
  const int64_t n = in.rows();
  // Stop once the marked output is complete: the classify tail (if any)
  // never feeds back into the pinned output value.
  ReplaySteps(in, n, plan_->output_ready_step(), /*labels=*/nullptr);
  const int64_t out_cols = plan_->value_cols(output);
  if (out->rank() != 2 || out->cols() != out_cols) {
    *out = Tensor(Shape::Matrix(n, out_cols));  // hotpath-ok: first call
  } else {
    out->ResizeRows(n);
  }
  std::memcpy(out->data(), SliceAt(output, n).data(),
              static_cast<size_t>(n * out_cols) * sizeof(float));
  return true;
}

bool Executor::TryRunClassify(const Tensor& in, std::vector<int>* labels) {
  PILOTE_CHECK(labels != nullptr);
  PILOTE_CHECK_EQ(in.rank(), 2);
  PILOTE_CHECK_EQ(in.cols(), plan_->input_cols());
  PILOTE_CHECK(plan_->has_classify_tail())
      << "plan was captured without a classify tail";
  ArenaClaim claim(busy_);
  if (!claim.claimed()) return false;
  ReplaySteps(in, in.rows(),
              static_cast<int32_t>(plan_->steps().size()) - 1, labels);
  return true;
}

void Executor::Run(const Tensor& in, Tensor* out) {
  PILOTE_CHECK(TryRun(in, out)) << "executor arena claimed concurrently";
}

void Executor::RunClassify(const Tensor& in, std::vector<int>* labels) {
  PILOTE_CHECK(TryRunClassify(in, labels))
      << "executor arena claimed concurrently";
}

}  // namespace exec
}  // namespace pilote
