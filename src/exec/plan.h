#ifndef PILOTE_EXEC_PLAN_H_
#define PILOTE_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/memory_planner.h"
#include "tensor/tensor.h"

namespace pilote {
namespace exec {

// A compiled inference plan: the frozen forward (+ optional NCM classify
// tail) of a module, captured once into a flat topologically-ordered step
// list over arena-resident values. The plan is immutable after capture —
// it owns copies of every constant it reads (weights, scaler statistics,
// prototypes), so the module it was captured from may be retrained or
// replaced wholesale without invalidating a concurrently-executing replay.
// Replay state (the arena) lives in exec::Executor; one plan can back any
// number of executors.
//
// See DESIGN.md "Compiled inference plans" for the capture protocol and
// the bit-identity contract with the eager path.

// Handle to a plan value during capture: a [n, cols] matrix whose row
// count is the run-time batch size. Only meaningful with the PlanBuilder
// that issued it.
struct ValueRef {
  int32_t id = -1;
  int64_t cols = 0;

  bool defined() const { return id >= 0; }
};

// Fused elementwise steps are chains of per-element micro ops, each
// executed as its own full pass over the step's buffer — exactly the pass
// structure (and therefore the per-element rounding sequence) of the eager
// RowBroadcast/ElementwiseUnary kernels they were captured from.
enum class MicroOp : uint8_t {
  kStandardize,  // (v - a[c]) / b[c]   (data::StandardScaler::Transform)
  kAddRow,       // v + a[c]
  kSubRow,       // v - a[c]
  kMulRow,       // v * a[c]
  kRelu,         // v > 0 ? v : 0
};

// One micro op; `a` and `b` index the plan's constant table ([cols]
// vectors), -1 when unused.
struct MicroStep {
  MicroOp op = MicroOp::kRelu;
  int32_t a = -1;
  int32_t b = -1;
};

enum class StepKind : uint8_t {
  // out[n, cols] = in[n, k] * W[cols, k]^T via the serial GEMM kernel.
  kGemmTransB,
  // Chain of micro passes mapping in -> out elementwise; in == out marks
  // an in-place fused step on one arena slice.
  kElementwise,
  // out[n, 1] = per-row squared norm of in[n, cols] (shared kernel with
  // the eager RowSquaredNorm).
  kRowSquaredNorm,
  // out[n, cols] = max(0, norm_in2[i] + const_norms[j] - 2 * in[i, j]):
  // the squared-distance combine over the GEMM cross term (shared kernel
  // with the eager PairwiseSquaredDistance). in == out (in place).
  kNcmCombine,
  // Terminal argmin over in[n, cols] mapped through the plan label table.
  kArgMinLabel,
};

struct Step {
  StepKind kind = StepKind::kElementwise;
  int32_t in = -1;        // primary input value
  int32_t in2 = -1;       // secondary input value (kNcmCombine row norms)
  int32_t out = -1;       // output value (-1 for kArgMinLabel)
  int32_t constant = -1;  // constant-table index (GEMM weight, NCM norms)
  int64_t k = 0;          // GEMM reduction depth
  int64_t cols = 0;       // output columns
  std::vector<MicroStep> micro;  // kElementwise chain
};

class InferencePlan {
 public:
  // Assembled by PlanBuilder::Finish.
  InferencePlan(std::vector<Step> steps, std::vector<Tensor> constants,
                std::vector<ArenaSlice> value_slices,
                std::vector<int64_t> value_cols, std::vector<int> labels,
                int64_t input_cols, int32_t output_value,
                int32_t output_ready_step, int64_t arena_per_row,
                int64_t version);

  const std::vector<Step>& steps() const { return steps_; }
  const Tensor& constant(int32_t index) const {
    return constants_[static_cast<size_t>(index)];
  }
  // Arena slice of a value, in per-row float units. The input value (id 0)
  // has no slice — it is read from the caller's tensor.
  const ArenaSlice& slice(int32_t value) const {
    return value_slices_[static_cast<size_t>(value)];
  }
  int64_t value_cols(int32_t value) const {
    return value_cols_[static_cast<size_t>(value)];
  }
  // Class labels in prototype order for the kArgMinLabel step; empty when
  // the plan was captured without a classify tail.
  const std::vector<int>& labels() const { return labels_; }

  int64_t input_cols() const { return input_cols_; }
  // Value holding the marked tensor output (the embedding), -1 if none.
  int32_t output_value() const { return output_value_; }
  // Index of the last step that writes the marked output (-1 if none).
  // Because the output is pinned (never mutated in place afterwards), a
  // tensor-only replay can stop here and skip the classify tail entirely.
  int32_t output_ready_step() const { return output_ready_step_; }
  bool has_classify_tail() const { return !labels_.empty(); }
  // Arena floats needed per batch row.
  int64_t arena_per_row() const { return arena_per_row_; }
  // The learner model_version this plan was captured at.
  int64_t version() const { return version_; }

  // One line per step, for tests and debugging.
  std::string DebugString() const;

 private:
  std::vector<Step> steps_;
  std::vector<Tensor> constants_;
  std::vector<ArenaSlice> value_slices_;
  std::vector<int64_t> value_cols_;
  std::vector<int> labels_;
  int64_t input_cols_ = 0;
  int32_t output_value_ = -1;
  int32_t output_ready_step_ = -1;
  int64_t arena_per_row_ = 0;
  int64_t version_ = 0;
};

}  // namespace exec
}  // namespace pilote

#endif  // PILOTE_EXEC_PLAN_H_
