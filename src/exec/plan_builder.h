#ifndef PILOTE_EXEC_PLAN_BUILDER_H_
#define PILOTE_EXEC_PLAN_BUILDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/plan.h"
#include "tensor/tensor.h"

namespace pilote {
namespace exec {

// Shape-propagating recorder for compiled inference plans. A capture walks
// the module graph once (nn::Module::CaptureInference), calling one
// recorder op per eager op; the builder fuses adjacent elementwise ops
// in place as they arrive and Finish() runs lifetime-interval arena
// planning over the recorded steps.
//
// Recorder ops take constants (weights, statistics) by const reference and
// copy them into the plan: the captured module can be retrained or
// replaced afterwards without invalidating the plan.
//
// Usage:
//   PlanBuilder builder;
//   ValueRef x = builder.DeclareInput(input_dim);
//   x = builder.Standardize(x, scaler.mean(), scaler.stddev());
//   ... per-layer recorder calls ...
//   builder.MarkOutput(x);                       // the embedding
//   ValueRef d = builder.SquaredDistances(x, protos, proto_norms);
//   builder.ArgMinLabels(d, labels);             // classify tail
//   auto plan = builder.Finish(model_version);
//
// A builder records exactly one plan; shape violations are CHECK-fatal
// (capture runs on the cold mutation path, mirroring the eager ops'
// contracts).
class PlanBuilder {
 public:
  PlanBuilder() = default;

  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  // The [n, cols] plan input (value 0). Must be the first call.
  ValueRef DeclareInput(int64_t cols);

  // (x - mean[c]) / stddev[c], the StandardScaler::Transform fused pass.
  ValueRef Standardize(ValueRef x, const Tensor& mean, const Tensor& stddev);

  // x[n, k] * weight[out, k]^T -> [n, out] (the Linear forward GEMM).
  ValueRef Gemm(ValueRef x, const Tensor& weight);

  // x + bias[c].
  ValueRef BiasAdd(ValueRef x, const Tensor& bias);

  // Inference batch norm with running statistics, lowered to the eager
  // pass sequence (x - mean) * inv_std * gamma + beta with
  // inv_std[c] = 1 / sqrt(var[c] + eps) precomputed at capture.
  ValueRef BatchNormInference(ValueRef x, const Tensor& gamma,
                              const Tensor& beta, const Tensor& mean,
                              const Tensor& var, float eps);

  // max(x, 0).
  ValueRef Relu(ValueRef x);

  // Squared Euclidean distances of each row of x to each row of
  // `prototypes` [k, d], lowered to GEMM cross term + row norms + combine.
  // `proto_sq_norms` must be RowSquaredNorm(prototypes) (the classifier's
  // cache — passing it keeps the plan bit-identical to the cached eager
  // path). Returns the [n, k] distance matrix value.
  ValueRef SquaredDistances(ValueRef x, const Tensor& prototypes,
                            const Tensor& proto_sq_norms);

  // Terminal classify step: per-row argmin over `distances` mapped through
  // `labels` (prototype order).
  void ArgMinLabels(ValueRef distances, std::vector<int> labels);

  // Marks `v` as the plan's tensor output (the embedding). The marked
  // value is pinned: later elementwise ops will not mutate it in place.
  void MarkOutput(ValueRef v);

  // Validates the recorded program, plans the arena and freezes the plan.
  // `version` tags the plan with the model version it was captured at.
  // The builder must not be reused afterwards.
  Result<std::shared_ptr<const InferencePlan>> Finish(int64_t version);

 private:
  ValueRef NewValue(int64_t cols);
  int32_t AddConstant(const Tensor& constant);
  // Appends `micro` over x: fused onto the producing step, in place on a
  // freshly-defined arena value, or as a copy pass into a new value.
  ValueRef RecordElementwise(ValueRef x, MicroStep micro);
  void CheckValue(ValueRef v) const;

  std::vector<Step> steps_;
  std::vector<Tensor> constants_;
  std::vector<int64_t> value_cols_;
  std::vector<int> labels_;
  int32_t output_value_ = -1;
  bool has_classify_tail_ = false;
  bool finished_ = false;
};

}  // namespace exec
}  // namespace pilote

#endif  // PILOTE_EXEC_PLAN_BUILDER_H_
