#include "autograd/ops.h"

#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "common/numerics_guard.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace autograd {
namespace {

// Shorthand for building an op node from parent Variables.
Variable MakeOp(Tensor value, std::vector<Variable> parents,
                std::function<void(Node&)> backward_fn) {
  std::vector<std::shared_ptr<Node>> parent_nodes;
  parent_nodes.reserve(parents.size());
  for (const Variable& p : parents) {
    PILOTE_CHECK(p.defined());
    parent_nodes.push_back(p.node());
  }
  return internal::FromNode(internal::MakeNode(
      std::move(value), std::move(parent_nodes), std::move(backward_fn)));
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp(pilote::Add(a.value(), b.value()), {a, b}, [](Node& node) {
    if (node.parents[0]->requires_grad) node.parents[0]->AccumulateGrad(node.grad);
    if (node.parents[1]->requires_grad) node.parents[1]->AccumulateGrad(node.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp(pilote::Sub(a.value(), b.value()), {a, b}, [](Node& node) {
    if (node.parents[0]->requires_grad) node.parents[0]->AccumulateGrad(node.grad);
    if (node.parents[1]->requires_grad) {
      node.parents[1]->AccumulateGrad(pilote::Neg(node.grad));
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp(pilote::Mul(a.value(), b.value()), {a, b}, [](Node& node) {
    if (node.parents[0]->requires_grad) {
      node.parents[0]->AccumulateGrad(
          pilote::Mul(node.grad, node.parents[1]->value));
    }
    if (node.parents[1]->requires_grad) {
      node.parents[1]->AccumulateGrad(
          pilote::Mul(node.grad, node.parents[0]->value));
    }
  });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOp(pilote::AddScalar(a.value(), s), {a}, [](Node& node) {
    node.parents[0]->AccumulateGrad(node.grad);
  });
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOp(pilote::MulScalar(a.value(), s), {a}, [s](Node& node) {
    node.parents[0]->AccumulateGrad(pilote::MulScalar(node.grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Square(const Variable& a) {
  return MakeOp(pilote::Square(a.value()), {a}, [](Node& node) {
    Tensor g = pilote::Mul(node.grad, node.parents[0]->value);
    node.parents[0]->AccumulateGrad(pilote::MulScalar(g, 2.0f));
  });
}

Variable Relu(const Variable& a) {
  return MakeOp(pilote::Relu(a.value()), {a}, [](Node& node) {
    node.parents[0]->AccumulateGrad(
        pilote::Mul(node.grad, pilote::ReluMask(node.parents[0]->value)));
  });
}

Variable Sqrt(const Variable& a, float eps) {
  Tensor value = pilote::Sqrt(pilote::AddScalar(a.value(), eps));
  auto saved = std::make_shared<Tensor>(value);
  return MakeOp(std::move(value), {a}, [saved](Node& node) {
    // d sqrt(x + eps) / dx = 0.5 / sqrt(x + eps)
    Tensor g(node.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      g[i] = node.grad[i] * 0.5f / (*saved)[i];
    }
    PILOTE_CHECK_NUMERICS("Sqrt backward", g);
    node.parents[0]->AccumulateGrad(g);
  });
}

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOp(pilote::MatMul(a.value(), b.value()), {a, b}, [](Node& node) {
    // dA = dC * B^T ; dB = A^T * dC
    if (node.parents[0]->requires_grad) {
      node.parents[0]->AccumulateGrad(
          pilote::MatMulTransB(node.grad, node.parents[1]->value));
    }
    if (node.parents[1]->requires_grad) {
      node.parents[1]->AccumulateGrad(
          pilote::MatMulTransA(node.parents[0]->value, node.grad));
    }
  });
}

Variable LinearTransform(const Variable& x, const Variable& w) {
  return MakeOp(
      pilote::MatMulTransB(x.value(), w.value()), {x, w}, [](Node& node) {
        // y = x * w^T -> dx = dy * w ; dw = dy^T * x
        if (node.parents[0]->requires_grad) {
          node.parents[0]->AccumulateGrad(
              pilote::MatMul(node.grad, node.parents[1]->value));
        }
        if (node.parents[1]->requires_grad) {
          node.parents[1]->AccumulateGrad(
              pilote::MatMulTransA(node.grad, node.parents[0]->value));
        }
      });
}

Variable AddRowVector(const Variable& m, const Variable& v) {
  return MakeOp(pilote::AddRowVector(m.value(), v.value()), {m, v},
                [](Node& node) {
                  if (node.parents[0]->requires_grad) {
                    node.parents[0]->AccumulateGrad(node.grad);
                  }
                  if (node.parents[1]->requires_grad) {
                    node.parents[1]->AccumulateGrad(
                        pilote::ColumnSum(node.grad));
                  }
                });
}

Variable MulRowVector(const Variable& m, const Variable& v) {
  return MakeOp(
      pilote::MulRowVector(m.value(), v.value()), {m, v}, [](Node& node) {
        if (node.parents[0]->requires_grad) {
          node.parents[0]->AccumulateGrad(
              pilote::MulRowVector(node.grad, node.parents[1]->value));
        }
        if (node.parents[1]->requires_grad) {
          node.parents[1]->AccumulateGrad(
              pilote::ColumnSum(pilote::Mul(node.grad, node.parents[0]->value)));
        }
      });
}

Variable RowSum(const Variable& m) {
  return MakeOp(pilote::RowSum(m.value()), {m}, [](Node& node) {
    const Tensor& src = node.parents[0]->value;
    Tensor g(src.shape());
    for (int64_t r = 0; r < src.rows(); ++r) {
      const float gr = node.grad[r];
      float* pg = g.row(r);
      for (int64_t c = 0; c < src.cols(); ++c) pg[c] = gr;
    }
    node.parents[0]->AccumulateGrad(g);
  });
}

Variable Sum(const Variable& a) {
  return MakeOp(Tensor::Scalar(pilote::Sum(a.value())), {a}, [](Node& node) {
    node.parents[0]->AccumulateGrad(
        Tensor::Full(node.parents[0]->value.shape(), node.grad[0]));
  });
}

Variable Mean(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.value().numel());
  return MakeOp(Tensor::Scalar(pilote::Mean(a.value())), {a},
                [inv_n](Node& node) {
                  node.parents[0]->AccumulateGrad(Tensor::Full(
                      node.parents[0]->value.shape(), node.grad[0] * inv_n));
                });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  PILOTE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& part : parts) values.push_back(part.value());
  std::vector<int64_t> row_counts;
  row_counts.reserve(parts.size());
  for (const Tensor& v : values) row_counts.push_back(v.rows());
  return MakeOp(pilote::ConcatRows(values), parts,
                [row_counts](Node& node) {
                  int64_t offset = 0;
                  for (size_t i = 0; i < node.parents.size(); ++i) {
                    const int64_t rows = row_counts[i];
                    if (node.parents[i]->requires_grad) {
                      node.parents[i]->AccumulateGrad(
                          pilote::SliceRows(node.grad, offset, offset + rows));
                    }
                    offset += rows;
                  }
                });
}

Variable SliceRows(const Variable& m, int64_t begin, int64_t end) {
  return MakeOp(pilote::SliceRows(m.value(), begin, end), {m},
                [begin, end](Node& node) {
                  Tensor g(node.parents[0]->value.shape());
                  std::memcpy(g.row(begin), node.grad.data(),
                              static_cast<size_t>((end - begin) * g.cols()) *
                                  sizeof(float));
                  node.parents[0]->AccumulateGrad(g);
                });
}

BatchNormOutput BatchNormTraining(const Variable& x, const Variable& gamma,
                                  const Variable& beta, float eps) {
  const Tensor& xv = x.value();
  PILOTE_CHECK_EQ(xv.rank(), 2);
  const int64_t n = xv.rows();
  const int64_t d = xv.cols();
  PILOTE_CHECK_GT(n, 0);
  PILOTE_CHECK_EQ(gamma.value().dim(0), d);
  PILOTE_CHECK_EQ(beta.value().dim(0), d);

  Tensor mean = ColumnMean(xv);
  Tensor var = ColumnVariance(xv, mean);
  Tensor inv_std(Shape::Vector(d));
  for (int64_t c = 0; c < d; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + eps);
  }
  PILOTE_CHECK_NUMERICS("BatchNormTraining inv_std", inv_std);
  // x_hat = (x - mean) * inv_std
  Tensor x_hat = MulRowVector(SubRowVector(xv, mean), inv_std);
  Tensor y = pilote::AddRowVector(
      pilote::MulRowVector(x_hat, gamma.value()), beta.value());

  // Captured by the backward closure.
  auto saved_x_hat = std::make_shared<Tensor>(x_hat);
  auto saved_inv_std = std::make_shared<Tensor>(inv_std);

  Variable out = MakeOp(
      std::move(y), {x, gamma, beta},
      [saved_x_hat, saved_inv_std, n, d](Node& node) {
        const Tensor& dy = node.grad;
        const Tensor& xh = *saved_x_hat;
        const Tensor& istd = *saved_inv_std;
        const Tensor& gamma_v = node.parents[1]->value;

        // dbeta[c] = sum_r dy ; dgamma[c] = sum_r dy * x_hat
        Tensor dbeta = pilote::ColumnSum(dy);
        Tensor dgamma = pilote::ColumnSum(pilote::Mul(dy, xh));

        if (node.parents[0]->requires_grad) {
          // dx = (gamma * inv_std / n) * (n*dy - dbeta - x_hat * dgamma)
          Tensor dx(xh.shape());
          const float inv_n = 1.0f / static_cast<float>(n);
          for (int64_t r = 0; r < n; ++r) {
            const float* pdy = dy.row(r);
            const float* pxh = xh.row(r);
            float* pdx = dx.row(r);
            for (int64_t c = 0; c < d; ++c) {
              pdx[c] = gamma_v[c] * istd[c] * inv_n *
                       (static_cast<float>(n) * pdy[c] - dbeta[c] -
                        pxh[c] * dgamma[c]);
            }
          }
          PILOTE_CHECK_NUMERICS("BatchNormTraining dx", dx);
          node.parents[0]->AccumulateGrad(dx);
        }
        if (node.parents[1]->requires_grad) {
          node.parents[1]->AccumulateGrad(dgamma);
        }
        if (node.parents[2]->requires_grad) {
          node.parents[2]->AccumulateGrad(dbeta);
        }
      });

  BatchNormOutput result;
  result.y = std::move(out);
  result.batch_mean = std::move(mean);
  result.batch_var = std::move(var);
  return result;
}

Variable BatchNormInference(const Variable& x, const Variable& gamma,
                            const Variable& beta, const Tensor& mean,
                            const Tensor& var, float eps) {
  const Tensor& xv = x.value();
  PILOTE_CHECK_EQ(xv.rank(), 2);
  const int64_t d = xv.cols();
  PILOTE_CHECK_EQ(mean.dim(0), d);
  PILOTE_CHECK_EQ(var.dim(0), d);

  Tensor inv_std(Shape::Vector(d));
  for (int64_t c = 0; c < d; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + eps);
  }
  PILOTE_CHECK_NUMERICS("BatchNormInference inv_std", inv_std);
  Tensor x_hat = MulRowVector(SubRowVector(xv, mean), inv_std);
  Tensor y = pilote::AddRowVector(
      pilote::MulRowVector(x_hat, gamma.value()), beta.value());

  auto saved_x_hat = std::make_shared<Tensor>(x_hat);
  auto saved_inv_std = std::make_shared<Tensor>(inv_std);

  // With fixed statistics the op is affine per column, so the backward is
  // the plain broadcasting chain rule (no batch-statistic terms).
  return MakeOp(
      std::move(y), {x, gamma, beta},
      [saved_x_hat, saved_inv_std](Node& node) {
        const Tensor& dy = node.grad;
        const Tensor& xh = *saved_x_hat;
        const Tensor& istd = *saved_inv_std;
        const Tensor& gamma_v = node.parents[1]->value;
        if (node.parents[0]->requires_grad) {
          Tensor scale = pilote::Mul(gamma_v, istd);
          node.parents[0]->AccumulateGrad(pilote::MulRowVector(dy, scale));
        }
        if (node.parents[1]->requires_grad) {
          node.parents[1]->AccumulateGrad(
              pilote::ColumnSum(pilote::Mul(dy, xh)));
        }
        if (node.parents[2]->requires_grad) {
          node.parents[2]->AccumulateGrad(pilote::ColumnSum(dy));
        }
      });
}

}  // namespace autograd
}  // namespace pilote
