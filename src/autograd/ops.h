#ifndef PILOTE_AUTOGRAD_OPS_H_
#define PILOTE_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace pilote {
namespace autograd {

// Differentiable operator library. Each function runs the forward kernel
// from tensor/tensor_ops.h and records a backward closure on the graph.
// Ops propagate gradients only to parents with requires_grad.

// ---- Arithmetic ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);  // elementwise
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);
Variable Square(const Variable& a);
// Elementwise sqrt(a + eps); eps > 0 keeps the gradient finite at 0.
Variable Sqrt(const Variable& a, float eps = 0.0f);
Variable Relu(const Variable& a);

// ---- Matrix products ----
// [n,k] x [k,m] -> [n,m]
Variable MatMul(const Variable& a, const Variable& b);
// x [n,in] x w [out,in]^T -> [n,out]  (the Linear-layer kernel)
Variable LinearTransform(const Variable& x, const Variable& w);

// ---- Row broadcasting ----
// m [n,d] + v [d] with column-sum gradient for v.
Variable AddRowVector(const Variable& m, const Variable& v);
// m [n,d] * v [d] elementwise per row.
Variable MulRowVector(const Variable& m, const Variable& v);

// ---- Reductions ----
// [n,d] -> [n], summing each row.
Variable RowSum(const Variable& m);
// -> [1]
Variable Sum(const Variable& a);
// -> [1]
Variable Mean(const Variable& a);

// ---- Structural ----
// Vertical concatenation of rank-2 Variables sharing a column count.
Variable ConcatRows(const std::vector<Variable>& parts);
// Rows [begin, end); gradient scatters back into the source range.
Variable SliceRows(const Variable& m, int64_t begin, int64_t end);

// ---- Batch normalization ----
struct BatchNormOutput {
  Variable y;
  // Biased batch statistics (per column), for running-stat updates.
  Tensor batch_mean;
  Tensor batch_var;
};

// Training-mode batch norm over columns of x [n,d] with learnable
// gamma [d], beta [d]. Backward implements the full batch-statistics
// chain rule.
BatchNormOutput BatchNormTraining(const Variable& x, const Variable& gamma,
                                  const Variable& beta, float eps);

// Inference-mode batch norm with fixed (running) statistics.
Variable BatchNormInference(const Variable& x, const Variable& gamma,
                            const Variable& beta, const Tensor& mean,
                            const Tensor& var, float eps);

}  // namespace autograd
}  // namespace pilote

#endif  // PILOTE_AUTOGRAD_OPS_H_
