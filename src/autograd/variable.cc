#include "autograd/variable.h"

#include <atomic>
#include <unordered_set>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace autograd {
namespace {

std::atomic<uint64_t> g_sequence{0};

}  // namespace

void Node::AccumulateGrad(const Tensor& delta) {
  PILOTE_CHECK(delta.shape() == value.shape())
      << "grad shape " << delta.shape().ToString() << " vs value "
      << value.shape().ToString();
  if (grad.numel() == 0) {
    grad = delta;
  } else {
    Axpy(1.0f, delta, grad);
  }
}

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
}

const Tensor& Variable::value() const {
  PILOTE_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  PILOTE_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  PILOTE_CHECK(defined());
  return node_->grad;
}

bool Variable::requires_grad() const {
  PILOTE_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  PILOTE_CHECK(defined());
  node_->grad = Tensor();
}

Variable internal::FromNode(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

std::shared_ptr<Node> internal::MakeNode(
    Tensor value, std::vector<std::shared_ptr<Node>> parents,
    std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  for (const auto& parent : parents) {
    PILOTE_CHECK(parent != nullptr);
    if (parent->requires_grad) node->requires_grad = true;
  }
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

void Variable::Backward() const {
  PILOTE_TRACE_SPAN("autograd/backward");
  PILOTE_CHECK(defined());
  PILOTE_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar loss";
  PILOTE_CHECK(node_->requires_grad)
      << "Backward() on a graph with no trainable inputs";

  // Iterative post-order DFS to produce a topological order (parents before
  // children in `order` after the reverse below).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  PILOTE_METRIC_COUNT("autograd/backward_calls", 1);
  PILOTE_METRIC_COUNT("autograd/backward_nodes",
                      static_cast<int64_t>(order.size()));

  node_->AccumulateGrad(Tensor::Ones(node_->value.shape()));
  // `order` is post-order (leaves first); walk it backwards so each node's
  // grad is complete before it is propagated to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad.numel() != 0) {
      node->backward_fn(*node);
    }
  }
}

}  // namespace autograd
}  // namespace pilote
