#ifndef PILOTE_AUTOGRAD_VARIABLE_H_
#define PILOTE_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pilote {
namespace autograd {

// One node in the define-by-run computation graph. Owned via shared_ptr by
// the Variables (and children) that reference it.
struct Node {
  Tensor value;
  // Gradient of the scalar loss w.r.t. `value`; allocated lazily on first
  // accumulation, empty (numel == 0) before that.
  Tensor grad;
  bool requires_grad = false;
  // Parents in the forward graph (inputs of the op that produced `value`).
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into its parents. Unset for leaves and for
  // nodes that do not require grad.
  std::function<void(Node&)> backward_fn;
  // Creation sequence number; used for a deterministic topological order.
  uint64_t sequence = 0;

  // Accumulates `delta` into grad, allocating on first use.
  void AccumulateGrad(const Tensor& delta);
};

class Variable;

namespace internal {

// Graph-construction hooks for the op library (autograd/ops.cc). These are
// deliberately NOT part of Variable's public surface: user code builds
// graphs exclusively by composing the ops in autograd/ops.h, which keeps
// every non-leaf node's backward_fn and sequence numbering consistent.
Variable FromNode(std::shared_ptr<Node> node);
std::shared_ptr<Node> MakeNode(Tensor value,
                               std::vector<std::shared_ptr<Node>> parents,
                               std::function<void(Node&)> backward_fn);

}  // namespace internal

// Handle to a graph node. Cheap to copy (shared_ptr semantics): copies alias
// the same node. The library's modules take and return Variables; calling
// Backward() on a scalar Variable runs reverse-mode differentiation over
// every reachable node that requires grad.
//
// Public surface:
//   - Construction: the leaf constructors (explicit Variable(Tensor, bool),
//     Constant, Parameter). Non-leaf Variables are only produced by the op
//     library via internal::FromNode/MakeNode.
//   - Inspection: defined(), value(), mutable_value(), grad(),
//     requires_grad(), node().
//   - Training: ZeroGrad(), Backward().
class Variable {
 public:
  // Empty handle; most APIs CHECK against using one.
  Variable() = default;

  // Wraps a value as a leaf node.
  explicit Variable(Tensor value, bool requires_grad = false);

  // A constant leaf (no gradient tracking).
  static Variable Constant(Tensor value) {
    return Variable(std::move(value), /*requires_grad=*/false);
  }
  // A trainable leaf (parameters).
  static Variable Parameter(Tensor value) {
    return Variable(std::move(value), /*requires_grad=*/true);
  }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  // Empty tensor if backward has not touched this node.
  const Tensor& grad() const;
  bool requires_grad() const;

  // Clears the accumulated gradient (keeps the allocation's shape empty).
  void ZeroGrad();

  // Runs reverse-mode autodiff from this scalar (single-element) Variable.
  // Gradients accumulate into every reachable node with requires_grad.
  void Backward() const;

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  // internal::FromNode wraps op-library nodes without exposing a public
  // "adopt arbitrary node" constructor.
  friend Variable internal::FromNode(std::shared_ptr<Node> node);

  std::shared_ptr<Node> node_;
};

}  // namespace autograd
}  // namespace pilote

#endif  // PILOTE_AUTOGRAD_VARIABLE_H_
