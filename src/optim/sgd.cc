#include "optim/sgd.h"

#include "common/numerics_guard.h"

namespace pilote {
namespace optim {

Sgd::Sgd(std::vector<autograd::Variable> params, const SgdOptions& options)
    : Optimizer(std::move(params), options.lr), options_(options) {
  velocity_.reserve(params_.size());
  for (auto& param : params_) {
    velocity_.emplace_back(Tensor::Zeros(param.value().shape()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    autograd::Variable& param = params_[i];
    const Tensor& grad = param.grad();
    if (grad.numel() == 0) continue;
    PILOTE_CHECK_NUMERICS("Sgd step grad", grad);
    Tensor& value = param.mutable_value();
    Tensor& velocity = velocity_[i];
    const int64_t n = value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = grad[j];
      if (options_.weight_decay != 0.0f) g += options_.weight_decay * value[j];
      if (options_.momentum != 0.0f) {
        velocity[j] = options_.momentum * velocity[j] + g;
        g = velocity[j];
      }
      value[j] -= lr_ * g;
    }
    PILOTE_CHECK_NUMERICS("Sgd step param", value);
  }
}

}  // namespace optim
}  // namespace pilote
