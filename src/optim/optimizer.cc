#include "optim/optimizer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace pilote {
namespace optim {

float ClipGradNorm(std::vector<autograd::Variable>& params, float max_norm) {
  double total = 0.0;
  for (auto& param : params) {
    const Tensor& g = param.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& param : params) {
      Tensor& g = param.node()->grad;
      if (g.numel() == 0) continue;
      for (int64_t i = 0; i < g.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace pilote
