#include "optim/adam.h"

#include <cmath>

#include "common/numerics_guard.h"

namespace pilote {
namespace optim {

Adam::Adam(std::vector<autograd::Variable> params, const AdamOptions& options)
    : Optimizer(std::move(params), options.lr), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& param : params_) {
    m_.emplace_back(Tensor::Zeros(param.value().shape()));
    v_.emplace_back(Tensor::Zeros(param.value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    autograd::Variable& param = params_[i];
    const Tensor& grad = param.grad();
    if (grad.numel() == 0) continue;
    PILOTE_CHECK_NUMERICS("Adam step grad", grad);
    Tensor& value = param.mutable_value();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const int64_t n = value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = grad[j];
      if (options_.weight_decay != 0.0f) g += options_.weight_decay * value[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
    PILOTE_CHECK_NUMERICS("Adam step param", value);
  }
}

}  // namespace optim
}  // namespace pilote
