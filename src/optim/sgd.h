#ifndef PILOTE_OPTIM_SGD_H_
#define PILOTE_OPTIM_SGD_H_

#include "optim/optimizer.h"

namespace pilote {
namespace optim {

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

// Stochastic gradient descent with optional classical momentum and
// decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, const SgdOptions& options);

  void Step() override;

 private:
  SgdOptions options_;
  std::vector<Tensor> velocity_;
};

}  // namespace optim
}  // namespace pilote

#endif  // PILOTE_OPTIM_SGD_H_
