#ifndef PILOTE_OPTIM_ADAM_H_
#define PILOTE_OPTIM_ADAM_H_

#include "optim/optimizer.h"

namespace pilote {
namespace optim {

struct AdamOptions {
  float lr = 0.01f;  // The paper starts Adam at 0.01 and halves per epoch.
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Adam (Kingma & Ba) with bias correction — the paper's optimizer.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, const AdamOptions& options);

  void Step() override;

  int64_t step_count() const { return step_count_; }

 private:
  AdamOptions options_;
  std::vector<Tensor> m_;  // first-moment estimate
  std::vector<Tensor> v_;  // second-moment estimate
  int64_t step_count_ = 0;
};

}  // namespace optim
}  // namespace pilote

#endif  // PILOTE_OPTIM_ADAM_H_
