#ifndef PILOTE_OPTIM_OPTIMIZER_H_
#define PILOTE_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace pilote {
namespace optim {

// Base class for first-order optimizers over a fixed parameter list.
// Parameters are Variable handles aliasing module storage, so Step()
// updates the modules in place.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the gradients currently stored on the params.
  // Parameters with empty gradients (untouched by backward) are skipped.
  virtual void Step() = 0;

  // Clears accumulated gradients; call between steps.
  void ZeroGrad() {
    for (auto& param : params_) param.ZeroGrad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
  float lr_;
};

// Scales all gradients so their global L2 norm is at most max_norm.
// Returns the pre-clipping norm.
float ClipGradNorm(std::vector<autograd::Variable>& params, float max_norm);

}  // namespace optim
}  // namespace pilote

#endif  // PILOTE_OPTIM_OPTIMIZER_H_
