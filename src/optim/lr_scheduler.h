#ifndef PILOTE_OPTIM_LR_SCHEDULER_H_
#define PILOTE_OPTIM_LR_SCHEDULER_H_

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "optim/optimizer.h"

namespace pilote {
namespace optim {

// Epoch-indexed learning-rate schedule. Call OnEpochBegin(epoch) before the
// first batch of each epoch (epoch counting from 0).
class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer) : optimizer_(optimizer) {
    PILOTE_CHECK(optimizer != nullptr);
  }
  virtual ~LrScheduler() = default;

  void OnEpochBegin(int epoch) { optimizer_->set_lr(LrForEpoch(epoch)); }

  virtual float LrForEpoch(int epoch) const = 0;

 protected:
  Optimizer* optimizer_;
};

// The paper's schedule (Sec 6.1.2): lr starts at `initial_lr` and is halved
// every epoch, with an optional floor to avoid vanishing updates on long runs.
class HalvingLr : public LrScheduler {
 public:
  HalvingLr(Optimizer* optimizer, float initial_lr = 0.01f,
            float min_lr = 1e-5f)
      : LrScheduler(optimizer), initial_lr_(initial_lr), min_lr_(min_lr) {}

  float LrForEpoch(int epoch) const override {
    return std::max(min_lr_,
                    initial_lr_ * std::pow(0.5f, static_cast<float>(epoch)));
  }

 private:
  float initial_lr_;
  float min_lr_;
};

// Multiplies the LR by `gamma` every `step_size` epochs.
class StepLr : public LrScheduler {
 public:
  StepLr(Optimizer* optimizer, float initial_lr, int step_size, float gamma)
      : LrScheduler(optimizer),
        initial_lr_(initial_lr),
        step_size_(step_size),
        gamma_(gamma) {
    PILOTE_CHECK_GT(step_size, 0);
  }

  float LrForEpoch(int epoch) const override {
    return initial_lr_ *
           std::pow(gamma_, static_cast<float>(epoch / step_size_));
  }

 private:
  float initial_lr_;
  int step_size_;
  float gamma_;
};

// Fixed learning rate.
class ConstantLr : public LrScheduler {
 public:
  ConstantLr(Optimizer* optimizer, float lr)
      : LrScheduler(optimizer), lr_(lr) {}

  float LrForEpoch(int) const override { return lr_; }

 private:
  float lr_;
};

}  // namespace optim
}  // namespace pilote

#endif  // PILOTE_OPTIM_LR_SCHEDULER_H_
