#ifndef PILOTE_TENSOR_SHAPE_H_
#define PILOTE_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"

namespace pilote {

// Dimensions of a dense row-major tensor. Rank 1 and 2 cover everything the
// library needs (feature vectors and batches); higher ranks are permitted by
// the container but unused by the ops.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  static Shape Vector(int64_t n) { return Shape({n}); }
  static Shape Matrix(int64_t rows, int64_t cols) { return Shape({rows, cols}); }

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    PILOTE_DCHECK(i >= 0 && i < rank());
    return dims_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  // In-place dimension update; lets Tensor::ResizeRows reuse a buffer
  // without reallocating the dims vector.
  void set_dim(int i, int64_t value) {
    PILOTE_DCHECK(i >= 0 && i < rank());
    PILOTE_CHECK_GE(value, 0);
    dims_[static_cast<size_t>(i)] = value;
  }

  int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), int64_t{1},
                           std::multiplies<int64_t>());
  }

  // Rows/cols of a rank-2 shape.
  int64_t rows() const {
    PILOTE_DCHECK(rank() == 2);
    return dims_[0];
  }
  int64_t cols() const {
    PILOTE_DCHECK(rank() == 2);
    return dims_[1];
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string ToString() const {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) os << ", ";
      os << dims_[i];
    }
    os << "]";
    return os.str();
  }

 private:
  void Validate() const {
    for (int64_t d : dims_) PILOTE_CHECK_GE(d, 0);
  }

  std::vector<int64_t> dims_;
};

}  // namespace pilote

#endif  // PILOTE_TENSOR_SHAPE_H_
