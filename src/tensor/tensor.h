#ifndef PILOTE_TENSOR_TENSOR_H_
#define PILOTE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace pilote {

// Dense row-major float32 tensor with value semantics (copies are deep).
// All shape violations are CHECK-fatal: a mismatched shape is a programming
// error, not a runtime condition.
class Tensor {
 public:
  // Empty rank-0 tensor with no elements.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), fill) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    PILOTE_CHECK_EQ(shape_.numel(), static_cast<int64_t>(data_.size()));
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  // Scalar (rank-1, single element) tensor.
  static Tensor Scalar(float value) { return Tensor(Shape({1}), {value}); }

  // i.i.d. N(mean, stddev^2) entries.
  static Tensor RandNormal(Shape shape, Rng& rng, float mean = 0.0f,
                           float stddev = 1.0f);
  // i.i.d. U[lo, hi) entries.
  static Tensor RandUniform(Shape shape, Rng& rng, float lo = 0.0f,
                            float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int i) const { return shape_.dim(i); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  int64_t rows() const { return shape_.rows(); }
  int64_t cols() const { return shape_.cols(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Flat element access.
  float operator[](int64_t i) const {
    PILOTE_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float& operator[](int64_t i) {
    PILOTE_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  // Rank-2 element access.
  float operator()(int64_t r, int64_t c) const {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return data_[static_cast<size_t>(r * cols() + c)];
  }
  float& operator()(int64_t r, int64_t c) {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return data_[static_cast<size_t>(r * cols() + c)];
  }

  // Pointer to the start of row r of a rank-2 tensor.
  const float* row(int64_t r) const {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return data_.data() + r * cols();
  }
  float* row(int64_t r) {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return data_.data() + r * cols();
  }

  // Reinterprets the data with a new shape of equal element count.
  Tensor Reshape(Shape new_shape) const {
    PILOTE_CHECK_EQ(new_shape.numel(), numel())
        << " reshape " << shape_.ToString() << " -> " << new_shape.ToString();
    return Tensor(std::move(new_shape), data_);
  }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  // Reuses this rank-2 tensor's buffer as a [new_rows, cols()] matrix:
  // the shape is updated in place and the data vector resized, so the
  // allocator is only hit when the element count grows past the buffer's
  // high-water mark. Contents are unspecified afterwards — callers are
  // expected to overwrite every element (serve flush assembly does).
  void ResizeRows(int64_t new_rows) {
    PILOTE_CHECK_EQ(rank(), 2);
    shape_.set_dim(0, new_rows);
    // hotpath-ok: grows only past the buffer's high-water mark
    data_.resize(static_cast<size_t>(shape_.numel()));
  }

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace pilote

#endif  // PILOTE_TENSOR_TENSOR_H_
