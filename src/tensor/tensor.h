#ifndef PILOTE_TENSOR_TENSOR_H_
#define PILOTE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/span.h"
#include "tensor/shape.h"

namespace pilote {

// Dense row-major float32 tensor with value semantics (copies are deep).
// All shape violations are CHECK-fatal: a mismatched shape is a programming
// error, not a runtime condition.
class Tensor {
 public:
  // Empty rank-0 tensor with no elements.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), fill) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    PILOTE_CHECK_EQ(shape_.numel(), static_cast<int64_t>(data_.size()));
  }

  // Copy/move construction starts a fresh generation (a new object has no
  // outstanding views); assignment replaces the buffer of an existing
  // object, so it bumps the generation to invalidate live spans.
  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      shape_ = other.shape_;
      data_ = other.data_;
      ++generation_;
    }
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      shape_ = std::move(other.shape_);
      data_ = std::move(other.data_);
      ++generation_;
    }
    return *this;
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  // Scalar (rank-1, single element) tensor.
  static Tensor Scalar(float value) { return Tensor(Shape({1}), {value}); }

  // i.i.d. N(mean, stddev^2) entries.
  static Tensor RandNormal(Shape shape, Rng& rng, float mean = 0.0f,
                           float stddev = 1.0f);
  // i.i.d. U[lo, hi) entries.
  static Tensor RandUniform(Shape shape, Rng& rng, float lo = 0.0f,
                            float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int i) const { return shape_.dim(i); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  int64_t rows() const { return shape_.rows(); }
  int64_t cols() const { return shape_.cols(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // Flat element access.
  float operator[](int64_t i) const {
    PILOTE_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float& operator[](int64_t i) {
    PILOTE_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  // Rank-2 element access.
  float operator()(int64_t r, int64_t c) const {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return data_[static_cast<size_t>(r * cols() + c)];
  }
  float& operator()(int64_t r, int64_t c) {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return data_[static_cast<size_t>(r * cols() + c)];
  }

  // Pointer to the start of row r of a rank-2 tensor.
  const float* row(int64_t r) const {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return data_.data() + r * cols();
  }
  float* row(int64_t r) {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return data_.data() + r * cols();
  }

  // Generation-tracked views (see common/span.h): pointer+size in
  // release, bounds- and staleness-checked in debug. A span taken before
  // a reallocating ResizeRows or an assignment is CHECK-fatal to
  // dereference in debug builds instead of silently reading freed memory.
  Span<float> span() {
    return Span<float>(data_.data(), data_.size(), &generation_, generation_);
  }
  ConstSpan<float> span() const {
    return ConstSpan<float>(data_.data(), data_.size(), &generation_,
                            generation_);
  }
  Span<float> row_span(int64_t r) {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return Span<float>(data_.data() + r * cols(),
                       static_cast<size_t>(cols()), &generation_,
                       generation_);
  }
  ConstSpan<float> row_span(int64_t r) const {
    PILOTE_DCHECK(rank() == 2);
    PILOTE_DCHECK(r >= 0 && r < rows());
    return ConstSpan<float>(data_.data() + r * cols(),
                            static_cast<size_t>(cols()), &generation_,
                            generation_);
  }

  // Buffer-identity introspection for checked spans and tests. The
  // counter advances whenever the backing storage may have moved.
  uint32_t generation() const { return generation_; }
  const uint32_t* generation_counter() const { return &generation_; }

  // Reinterprets the data with a new shape of equal element count.
  Tensor Reshape(Shape new_shape) const {
    PILOTE_CHECK_EQ(new_shape.numel(), numel())
        << " reshape " << shape_.ToString() << " -> " << new_shape.ToString();
    return Tensor(std::move(new_shape), data_);
  }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  // Reuses this rank-2 tensor's buffer as a [new_rows, cols()] matrix:
  // the shape is updated in place and the data vector resized, so the
  // allocator is only hit when the element count grows past the buffer's
  // high-water mark. Contents are unspecified afterwards — callers are
  // expected to overwrite every element (serve flush assembly does).
  void ResizeRows(int64_t new_rows) {
    PILOTE_CHECK_EQ(rank(), 2);
    shape_.set_dim(0, new_rows);
    const size_t new_size = static_cast<size_t>(shape_.numel());
    // A growth past capacity reallocates, so every outstanding span is
    // now dangling: advance the generation to make them check-fatal.
    if (new_size > data_.capacity()) ++generation_;
    // hotpath-ok: grows only past the buffer's high-water mark
    data_.resize(new_size);
  }

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
  // Bumped whenever data_'s storage may move (reallocating ResizeRows,
  // assignment). Unconditional — one uint32_t — so checked spans
  // (BasicSpan<T, true>) are exercisable even in NDEBUG test builds.
  uint32_t generation_ = 0;
};

}  // namespace pilote

#endif  // PILOTE_TENSOR_TENSOR_H_
