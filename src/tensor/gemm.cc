#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace pilote {
namespace {

// One counting site shared by all three kernels; the disabled cost is a
// relaxed load + branch per GEMM call (amortized over the whole kernel).
void CountGemm(int64_t m, int64_t k, int64_t n) {
  PILOTE_METRIC_COUNT("tensor/gemm_calls", 1);
  PILOTE_METRIC_COUNT("tensor/gemm_flops", 2 * m * k * n);
}

// Rough per-kernel FLOP threshold below which threading overhead dominates.
constexpr int64_t kParallelFlopThreshold = 1 << 22;

// Computes rows [row_begin, row_end) of C = A * B with an i-k-j loop order:
// the inner j loop is a contiguous SAXPY the compiler vectorizes.
void GemmRows(const float* a, const float* b, float* c, int64_t row_begin,
              int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* c_row = c + i * n;
    std::memset(c_row, 0, static_cast<size_t>(n) * sizeof(float));
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// Rows of C = A * B^T: each output element is a contiguous dot product.
void GemmTransBRows(const float* a, const float* b, float* c,
                    int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

void Dispatch(int64_t m, int64_t k, int64_t n,
              const std::function<void(int64_t, int64_t)>& rows_fn) {
  const int64_t flops = 2 * m * k * n;
  ThreadPool& pool = ThreadPool::Global();
  if (flops < kParallelFlopThreshold || pool.num_threads() <= 1) {
    rows_fn(0, m);
  } else {
    pool.ParallelForRanges(m, rows_fn);
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  CountGemm(m, k, n);
  Dispatch(m, k, n, [=](int64_t begin, int64_t end) {
    GemmRows(a, b, c, begin, end, k, n);
  });
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  CountGemm(m, k, n);
  Dispatch(m, k, n, [=](int64_t begin, int64_t end) {
    GemmTransBRows(a, b, c, begin, end, k, n);
  });
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  CountGemm(m, k, n);
  // C[m,n] = sum_p A[p,m]^T * B[p,n]. Outer-product accumulation keeps both
  // input walks contiguous; parallelizing would race on C, so compute the
  // full product serially (these shapes are small: gradient accumulations).
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

}  // namespace pilote
