#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace pilote {
namespace {

// One counting site shared by all three kernels; the disabled cost is a
// relaxed load + branch per GEMM call (amortized over the whole kernel).
void CountGemm(int64_t m, int64_t k, int64_t n) {
  PILOTE_METRIC_COUNT("tensor/gemm_calls", 1);
  PILOTE_METRIC_COUNT("tensor/gemm_flops", 2 * m * k * n);
}

// Rough per-kernel FLOP threshold below which threading overhead dominates.
constexpr int64_t kParallelFlopThreshold = 1 << 22;

// Row-tile width: B is streamed once per TILE rows of A instead of once
// per row, which is what makes batched inference cheaper per row than
// row-at-a-time (the weight matrix is the dominant memory traffic at our
// skinny shapes). Per-element accumulation order over p is unchanged, so
// tiled and untiled results are bit-identical — the serving layer relies
// on batched == unbatched predictions.
constexpr int64_t kRowTile = 4;

// Computes rows [row_begin, row_end) of C = A * B with an i-k-j loop order:
// the inner j loop is a contiguous SAXPY the compiler vectorizes.
void GemmRows(const float* a, const float* b, float* c, int64_t row_begin,
              int64_t row_end, int64_t k, int64_t n) {
  int64_t i = row_begin;
  for (; i + kRowTile <= row_end; i += kRowTile) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    std::memset(c0, 0, static_cast<size_t>(kRowTile * n) * sizeof(float));
    for (int64_t p = 0; p < k; ++p) {
      const float a0p = a0[p];
      const float a1p = a1[p];
      const float a2p = a2[p];
      const float a3p = a3[p];
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        const float b_pj = b_row[j];
        c0[j] += a0p * b_pj;
        c1[j] += a1p * b_pj;
        c2[j] += a2p * b_pj;
        c3[j] += a3p * b_pj;
      }
    }
  }
  for (; i < row_end; ++i) {
    float* c_row = c + i * n;
    std::memset(c_row, 0, static_cast<size_t>(n) * sizeof(float));
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// Rows of C = A * B^T: each output element is a contiguous dot product.
// Row-tiled like GemmRows: four independent accumulators share one
// streamed b_row, so the weight matrix is read once per tile (this is the
// Linear-layer forward kernel — the serving hot path).
void GemmTransBRows(const float* a, const float* b, float* c,
                    int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  int64_t i = row_begin;
  for (; i + kRowTile <= row_end; i += kRowTile) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float b_jp = b_row[p];
        acc0 += a0[p] * b_jp;
        acc1 += a1[p] * b_jp;
        acc2 += a2[p] * b_jp;
        acc3 += a3[p] * b_jp;
      }
      c0[j] = acc0;
      c1[j] = acc1;
      c2[j] = acc2;
      c3[j] = acc3;
    }
  }
  for (; i < row_end; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

void Dispatch(int64_t m, int64_t k, int64_t n,
              const std::function<void(int64_t, int64_t)>& rows_fn) {
  const int64_t flops = 2 * m * k * n;
  ThreadPool& pool = ThreadPool::Global();
  if (flops < kParallelFlopThreshold || pool.num_threads() <= 1) {
    rows_fn(0, m);
  } else {
    pool.ParallelForRanges(m, rows_fn);
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  CountGemm(m, k, n);
  Dispatch(m, k, n, [=](int64_t begin, int64_t end) {
    GemmRows(a, b, c, begin, end, k, n);
  });
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  CountGemm(m, k, n);
  Dispatch(m, k, n, [=](int64_t begin, int64_t end) {
    GemmTransBRows(a, b, c, begin, end, k, n);
  });
}

void GemmSerial(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  CountGemm(m, k, n);
  GemmRows(a, b, c, 0, m, k, n);
}

void GemmTransBSerial(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
  CountGemm(m, k, n);
  GemmTransBRows(a, b, c, 0, m, k, n);
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  CountGemm(m, k, n);
  // C[m,n] = sum_p A[p,m]^T * B[p,n]. Outer-product accumulation keeps both
  // input walks contiguous; parallelizing would race on C, so compute the
  // full product serially (these shapes are small: gradient accumulations).
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

}  // namespace pilote
