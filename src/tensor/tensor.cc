#include "tensor/tensor.h"

#include <sstream>

namespace pilote {

Tensor Tensor::RandNormal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& value : t.vec()) {
    value = static_cast<float>(rng.Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& value : t.vec()) {
    value = static_cast<float>(rng.UniformDouble(lo, hi));
  }
  return t;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " {";
  const int64_t n = std::min<int64_t>(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace pilote
