#ifndef PILOTE_TENSOR_GEMM_H_
#define PILOTE_TENSOR_GEMM_H_

#include <cstdint>
#include "common/hot_path.h"

namespace pilote {

// Dense single-precision matrix multiply kernels over raw row-major buffers.
// All kernels compute C = A_op * B_op (C is fully overwritten) and
// parallelize over rows of C via ThreadPool::Global() when profitable.
//
// Gemm:        C[m,n] = A[m,k] * B[k,n]
// GemmTransB:  C[m,n] = A[m,k] * B[n,k]^T
// GemmTransA:  C[m,n] = A[k,m]^T * B[k,n]
PILOTE_HOT_PATH void Gemm(const float* a, const float* b, float* c,
                          int64_t m, int64_t k, int64_t n);
PILOTE_HOT_PATH void GemmTransB(const float* a, const float* b, float* c,
                                int64_t m, int64_t k, int64_t n);
void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);

// Single-threaded variants running the same row kernels over the full row
// range with no pool dispatch. The thread-pool Dispatch captures the row
// callback in a std::function — a heap allocation per call — so the
// compiled-inference executor (src/exec/), whose replay loop must be
// allocation-free, calls these instead. Results are bit-identical to the
// parallel entry points (identical per-element accumulation order), and
// both variants tick the same tensor/gemm_calls metrics.
PILOTE_HOT_PATH void GemmSerial(const float* a, const float* b, float* c,
                                int64_t m, int64_t k, int64_t n);
PILOTE_HOT_PATH void GemmTransBSerial(const float* a, const float* b,
                                      float* c, int64_t m, int64_t k,
                                      int64_t n);

}  // namespace pilote

#endif  // PILOTE_TENSOR_GEMM_H_
