#ifndef PILOTE_TENSOR_TENSOR_OPS_H_
#define PILOTE_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "common/hot_path.h"
#include "tensor/tensor.h"

namespace pilote {

// Non-differentiable math over Tensor. The autograd layer builds its
// differentiable ops on top of these kernels. All functions return fresh
// tensors; shape mismatches are CHECK-fatal.

// ---- Elementwise binary (shapes must match exactly) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// In-place a += alpha * b (the optimizer / grad-accumulation primitive).
void Axpy(float alpha, const Tensor& b, Tensor& a);

// ---- Elementwise with scalar ----
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Elementwise unary ----
Tensor Relu(const Tensor& a);
// 1 where a > 0 else 0 (the ReLU derivative mask).
Tensor ReluMask(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Neg(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---- Matrix products ----
// [m,k] x [k,n] -> [m,n]
Tensor MatMul(const Tensor& a, const Tensor& b);
// [m,k] x [n,k]^T -> [m,n]
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// [k,m]^T x [k,n] -> [m,n]
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);

// ---- Broadcasting over rows (matrix [n,d] op row-vector [d]) ----
Tensor AddRowVector(const Tensor& m, const Tensor& v);
Tensor MulRowVector(const Tensor& m, const Tensor& v);
Tensor SubRowVector(const Tensor& m, const Tensor& v);
Tensor DivRowVector(const Tensor& m, const Tensor& v);

// ---- Reductions ----
float Sum(const Tensor& a);
float Mean(const Tensor& a);
float MaxValue(const Tensor& a);
// Sum over rows of [n,d] -> [d].
Tensor ColumnSum(const Tensor& m);
// Mean over rows of [n,d] -> [d].
Tensor ColumnMean(const Tensor& m);
// Per-column variance of [n,d] -> [d] (biased, divides by n).
Tensor ColumnVariance(const Tensor& m, const Tensor& column_mean);
// Sum over columns of [n,d] -> [n].
Tensor RowSum(const Tensor& m);
// Index of the max entry of each row of [n,d] -> n indices.
std::vector<int64_t> ArgMaxPerRow(const Tensor& m);
// Index of the min entry of each row of [n,d] -> n indices.
std::vector<int64_t> ArgMinPerRow(const Tensor& m);

// ---- Row manipulation ----
// Rows [begin, end) of m as a new [end-begin, d] tensor.
Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end);
// Rows at the given indices, in order.
Tensor GatherRows(const Tensor& m, const std::vector<int64_t>& indices);
// Vertical concatenation; all inputs share the column count.
Tensor ConcatRows(const std::vector<Tensor>& parts);
// Row r as a rank-1 tensor of length d.
Tensor RowAt(const Tensor& m, int64_t r);

// ---- Distances ----
// Squared L2 distance between every row of a [n,d] and every row of
// b [m,d] -> [n,m].
Tensor PairwiseSquaredDistance(const Tensor& a, const Tensor& b);
// Same, with the squared row norms of b supplied by the caller. Passing
// b_sq_norms == RowSquaredNorm(b) yields bit-identical results to the
// two-argument form; callers with fixed b (NCM prototypes) cache the norms
// to keep the per-predict path free of prototype-sized work.
Tensor PairwiseSquaredDistance(const Tensor& a, const Tensor& b,
                               const Tensor& b_sq_norms);
// Squared L2 norm of each row of m -> [n].
Tensor RowSquaredNorm(const Tensor& m);
float SquaredDistance(const Tensor& a, const Tensor& b);

// Raw-buffer kernels behind RowSquaredNorm and the squared-distance
// combine. The compiled-inference executor (src/exec/) replays these on
// pre-planned arena slices; sharing one definition with the eager tensor
// ops is what makes plan and eager results bit-identical — both paths run
// the same accumulation code, so FP contraction decisions (-march=native)
// cannot diverge between them.
PILOTE_HOT_PATH void RowSquaredNormInto(const float* m, int64_t rows,
                                        int64_t cols, float* out);
// out[i, j] = max(0, a_sq_norms[i] + b_sq_norms[j] - 2 * cross[i, j]);
// in-place use (out == cross) is allowed.
PILOTE_HOT_PATH void SquaredDistanceCombineInto(const float* cross,
                                                const float* a_sq_norms,
                                                const float* b_sq_norms,
                                                float* out, int64_t rows,
                                                int64_t cols);

// ---- Comparisons (testing support) ----
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace pilote

#endif  // PILOTE_TENSOR_TENSOR_OPS_H_
