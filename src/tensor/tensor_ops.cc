#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/numerics_guard.h"
#include "obs/metrics.h"
#include "tensor/gemm.h"

namespace pilote {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  PILOTE_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << a.shape().ToString() << " vs "
      << b.shape().ToString();
}

// Per-call accounting for the elementwise/broadcast kernel families; one
// relaxed load + branch when observability is off.
void CountElementwise(int64_t elements) {
  PILOTE_METRIC_COUNT("tensor/elementwise_calls", 1);
  PILOTE_METRIC_COUNT("tensor/elementwise_elems", elements);
}

template <typename Fn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, const char* op,
                         Fn fn) {
  CheckSameShape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  CountElementwise(n);
  PILOTE_CHECK_NUMERICS(op, out);
  return out;
}

template <typename Fn>
Tensor ElementwiseUnary(const Tensor& a, const char* op, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  CountElementwise(n);
  PILOTE_CHECK_NUMERICS(op, out);
  return out;
}

template <typename Fn>
Tensor RowBroadcast(const Tensor& m, const Tensor& v, const char* op, Fn fn) {
  PILOTE_CHECK_EQ(m.rank(), 2) << op;
  PILOTE_CHECK_EQ(v.rank(), 1) << op;
  PILOTE_CHECK_EQ(m.cols(), v.dim(0)) << op;
  Tensor out(m.shape());
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  const float* pv = v.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* pm = m.row(r);
    float* po = out.row(r);
    for (int64_t c = 0; c < cols; ++c) po[c] = fn(pm[c], pv[c]);
  }
  CountElementwise(m.numel());
  PILOTE_CHECK_NUMERICS(op, out);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Add", [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Sub", [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Mul", [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "Div", [](float x, float y) { return x / y; });
}

void Axpy(float alpha, const Tensor& b, Tensor& a) {
  CheckSameShape(a, b, "Axpy");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += alpha * pb[i];
  PILOTE_CHECK_NUMERICS("Axpy", a);
}

Tensor AddScalar(const Tensor& a, float s) {
  return ElementwiseUnary(a, "AddScalar", [s](float x) { return x + s; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return ElementwiseUnary(a, "MulScalar", [s](float x) { return x * s; });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(a, "Relu", [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor ReluMask(const Tensor& a) {
  return ElementwiseUnary(a, "ReluMask",
                          [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(a, "Square", [](float x) { return x * x; });
}

Tensor Sqrt(const Tensor& a) {
  return ElementwiseUnary(a, "Sqrt", [](float x) { return std::sqrt(x); });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(a, "Exp", [](float x) { return std::exp(x); });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnary(a, "Neg", [](float x) { return -x; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  return ElementwiseUnary(a, "Clamp",
                          [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PILOTE_CHECK_EQ(a.rank(), 2);
  PILOTE_CHECK_EQ(b.rank(), 2);
  PILOTE_CHECK_EQ(a.cols(), b.rows())
      << "MatMul " << a.shape().ToString() << " x " << b.shape().ToString();
  Tensor out(Shape::Matrix(a.rows(), b.cols()));
  Gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.cols());
  PILOTE_CHECK_NUMERICS("MatMul", out);
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  PILOTE_CHECK_EQ(a.rank(), 2);
  PILOTE_CHECK_EQ(b.rank(), 2);
  PILOTE_CHECK_EQ(a.cols(), b.cols())
      << "MatMulTransB " << a.shape().ToString() << " x "
      << b.shape().ToString();
  Tensor out(Shape::Matrix(a.rows(), b.rows()));  // hotpath-ok: output
  GemmTransB(a.data(), b.data(), out.data(), a.rows(), a.cols(), b.rows());
  PILOTE_CHECK_NUMERICS("MatMulTransB", out);
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  PILOTE_CHECK_EQ(a.rank(), 2);
  PILOTE_CHECK_EQ(b.rank(), 2);
  PILOTE_CHECK_EQ(a.rows(), b.rows())
      << "MatMulTransA " << a.shape().ToString() << " x "
      << b.shape().ToString();
  Tensor out(Shape::Matrix(a.cols(), b.cols()));
  GemmTransA(a.data(), b.data(), out.data(), a.cols(), a.rows(), b.cols());
  PILOTE_CHECK_NUMERICS("MatMulTransA", out);
  return out;
}

Tensor Transpose(const Tensor& a) {
  PILOTE_CHECK_EQ(a.rank(), 2);
  Tensor out(Shape::Matrix(a.cols(), a.rows()));
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out(c, r) = a(r, c);
    }
  }
  return out;
}

Tensor AddRowVector(const Tensor& m, const Tensor& v) {
  return RowBroadcast(m, v, "AddRowVector",
                      [](float x, float y) { return x + y; });
}

Tensor MulRowVector(const Tensor& m, const Tensor& v) {
  return RowBroadcast(m, v, "MulRowVector",
                      [](float x, float y) { return x * y; });
}

Tensor SubRowVector(const Tensor& m, const Tensor& v) {
  return RowBroadcast(m, v, "SubRowVector",
                      [](float x, float y) { return x - y; });
}

Tensor DivRowVector(const Tensor& m, const Tensor& v) {
  return RowBroadcast(m, v, "DivRowVector",
                      [](float x, float y) { return x / y; });
}

float Sum(const Tensor& a) {
  // Pairwise-ish accumulation in double for stability.
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  const float result = static_cast<float>(acc);
  PILOTE_CHECK_NUMERICS_SCALAR("Sum", result);
  return result;
}

float Mean(const Tensor& a) {
  PILOTE_CHECK_GT(a.numel(), 0);
  return Sum(a) / static_cast<float>(a.numel());
}

float MaxValue(const Tensor& a) {
  PILOTE_CHECK_GT(a.numel(), 0);
  return *std::max_element(a.data(), a.data() + a.numel());
}

Tensor ColumnSum(const Tensor& m) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  Tensor out(Shape::Vector(m.cols()));
  float* po = out.data();
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* pm = m.row(r);
    for (int64_t c = 0; c < m.cols(); ++c) po[c] += pm[c];
  }
  return out;
}

Tensor ColumnMean(const Tensor& m) {
  PILOTE_CHECK_GT(m.rows(), 0);
  return MulScalar(ColumnSum(m), 1.0f / static_cast<float>(m.rows()));
}

Tensor ColumnVariance(const Tensor& m, const Tensor& column_mean) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  PILOTE_CHECK_EQ(column_mean.rank(), 1);
  PILOTE_CHECK_EQ(m.cols(), column_mean.dim(0));
  PILOTE_CHECK_GT(m.rows(), 0);
  Tensor out(Shape::Vector(m.cols()));
  const float* pmean = column_mean.data();
  float* po = out.data();
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* pm = m.row(r);
    for (int64_t c = 0; c < m.cols(); ++c) {
      const float d = pm[c] - pmean[c];
      po[c] += d * d;
    }
  }
  const float inv_n = 1.0f / static_cast<float>(m.rows());
  for (int64_t c = 0; c < m.cols(); ++c) po[c] *= inv_n;
  return out;
}

Tensor RowSum(const Tensor& m) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  Tensor out(Shape::Vector(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* pm = m.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < m.cols(); ++c) acc += pm[c];
    out[r] = acc;
  }
  return out;
}

std::vector<int64_t> ArgMaxPerRow(const Tensor& m) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  PILOTE_CHECK_GT(m.cols(), 0);
  std::vector<int64_t> result(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* pm = m.row(r);
    result[static_cast<size_t>(r)] =
        std::max_element(pm, pm + m.cols()) - pm;
  }
  return result;
}

std::vector<int64_t> ArgMinPerRow(const Tensor& m) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  PILOTE_CHECK_GT(m.cols(), 0);
  // hotpath-ok: the per-call output
  std::vector<int64_t> result(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    const float* pm = m.row(r);
    result[static_cast<size_t>(r)] =
        std::min_element(pm, pm + m.cols()) - pm;
  }
  return result;
}

Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  PILOTE_CHECK(begin >= 0 && begin <= end && end <= m.rows())
      << "SliceRows [" << begin << ", " << end << ") of " << m.rows();
  Tensor out(Shape::Matrix(end - begin, m.cols()));
  std::memcpy(out.data(), m.row(begin),
              static_cast<size_t>((end - begin) * m.cols()) * sizeof(float));
  return out;
}

Tensor GatherRows(const Tensor& m, const std::vector<int64_t>& indices) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  Tensor out(Shape::Matrix(static_cast<int64_t>(indices.size()), m.cols()));
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    PILOTE_CHECK(r >= 0 && r < m.rows()) << "GatherRows index " << r;
    std::memcpy(out.row(static_cast<int64_t>(i)), m.row(r),
                static_cast<size_t>(m.cols()) * sizeof(float));
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  PILOTE_CHECK(!parts.empty());
  const int64_t cols = parts.front().cols();
  int64_t total_rows = 0;
  for (const Tensor& part : parts) {
    PILOTE_CHECK_EQ(part.rank(), 2);
    PILOTE_CHECK_EQ(part.cols(), cols);
    total_rows += part.rows();
  }
  Tensor out(Shape::Matrix(total_rows, cols));
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    std::memcpy(out.row(offset), part.data(),
                static_cast<size_t>(part.numel()) * sizeof(float));
    offset += part.rows();
  }
  return out;
}

Tensor RowAt(const Tensor& m, int64_t r) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  PILOTE_CHECK(r >= 0 && r < m.rows());
  Tensor out(Shape::Vector(m.cols()));
  std::memcpy(out.data(), m.row(r),
              static_cast<size_t>(m.cols()) * sizeof(float));
  return out;
}

Tensor PairwiseSquaredDistance(const Tensor& a, const Tensor& b) {
  return PairwiseSquaredDistance(a, b, RowSquaredNorm(b));
}

Tensor PairwiseSquaredDistance(const Tensor& a, const Tensor& b,
                               const Tensor& nb) {
  PILOTE_CHECK_EQ(a.rank(), 2);
  PILOTE_CHECK_EQ(b.rank(), 2);
  PILOTE_CHECK_EQ(a.cols(), b.cols());
  PILOTE_CHECK_EQ(nb.numel(), b.rows());
  // ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y ; the cross term is one GEMM.
  // hotpath-ok: two small temporaries buy the GEMM factorization of
  // the O(n*m*d) naive distance loop; `out` is the per-call output.
  Tensor cross = MatMulTransB(a, b);  // [n,m]
  Tensor na = RowSquaredNorm(a);      // hotpath-ok: [n] temporary
  Tensor out(Shape::Matrix(a.rows(), b.rows()));  // hotpath-ok: output
  SquaredDistanceCombineInto(cross.data(), na.data(), nb.data(), out.data(),
                             a.rows(), b.rows());
  return out;
}

Tensor RowSquaredNorm(const Tensor& m) {
  PILOTE_CHECK_EQ(m.rank(), 2);
  Tensor out(Shape::Vector(m.rows()));  // hotpath-ok: output
  RowSquaredNormInto(m.data(), m.rows(), m.cols(), out.data());
  return out;
}

void RowSquaredNormInto(const float* m, int64_t rows, int64_t cols,
                        float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* pm = m + r * cols;
    float acc = 0.0f;
    for (int64_t c = 0; c < cols; ++c) acc += pm[c] * pm[c];
    out[r] = acc;
  }
}

void SquaredDistanceCombineInto(const float* cross, const float* a_sq_norms,
                                const float* b_sq_norms, float* out,
                                int64_t rows, int64_t cols) {
  for (int64_t i = 0; i < rows; ++i) {
    float* po = out + i * cols;
    const float* pc = cross + i * cols;
    const float nai = a_sq_norms[i];
    for (int64_t j = 0; j < cols; ++j) {
      // Clamp tiny negatives from cancellation.
      po[j] = std::max(0.0f, nai + b_sq_norms[j] - 2.0f * pc[j]);
    }
  }
}

float SquaredDistance(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "SquaredDistance");
  const float* pa = a.data();
  const float* pb = b.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return static_cast<float>(acc);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    const float bound = atol + rtol * std::fabs(pb[i]);
    if (diff > bound || std::isnan(diff)) return false;
  }
  return true;
}

}  // namespace pilote
