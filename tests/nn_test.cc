#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/activation.h"
#include "nn/backbone.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

namespace ag = autograd;

TEST(LinearTest, OutputShapeAndParams) {
  Rng rng(1);
  nn::Linear layer(8, 3, rng);
  ag::Variable x = ag::Variable::Constant(
      Tensor::RandNormal(Shape::Matrix(5, 8), rng));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y.value().rows(), 5);
  EXPECT_EQ(y.value().cols(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  EXPECT_EQ(layer.NumParameters(), 8 * 3 + 3);
}

TEST(LinearTest, MatchesManualAffineMap) {
  Rng rng(2);
  nn::Linear layer(4, 2, rng);
  Tensor x = Tensor::RandNormal(Shape::Matrix(3, 4), rng);
  Tensor expected = AddRowVector(MatMulTransB(x, layer.weight().value()),
                                 layer.bias().value());
  ag::Variable y = layer.Forward(ag::Variable::Constant(x));
  EXPECT_TRUE(AllClose(y.value(), expected));
}

TEST(LinearTest, HeInitializationScale) {
  Rng rng(3);
  nn::Linear layer(1000, 50, rng);
  const Tensor& w = layer.weight().value();
  const float expected_std = std::sqrt(2.0f / 1000.0f);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) sum_sq += w[i] * w[i];
  const double observed_std = std::sqrt(sum_sq / w.numel());
  EXPECT_NEAR(observed_std, expected_std, 0.2 * expected_std);
  // Bias starts at zero.
  for (int64_t i = 0; i < layer.bias().value().numel(); ++i) {
    EXPECT_EQ(layer.bias().value()[i], 0.0f);
  }
}

TEST(LinearTest, WrongInputWidthIsFatal) {
  Rng rng(4);
  nn::Linear layer(4, 2, rng);
  ag::Variable x = ag::Variable::Constant(Tensor(Shape::Matrix(3, 5)));
  EXPECT_DEATH(layer.Forward(x), "CHECK failed");
}

TEST(BatchNormTest, TrainingNormalizesAndUpdatesRunningStats) {
  Rng rng(5);
  nn::BatchNorm1d bn(3, 1e-5f, 0.5f);
  bn.SetTraining(true);
  Tensor x = Tensor::RandNormal(Shape::Matrix(128, 3), rng, 10.0f, 2.0f);
  ag::Variable y = bn.Forward(ag::Variable::Constant(x));
  Tensor mean = ColumnMean(y.value());
  for (int64_t c = 0; c < 3; ++c) EXPECT_NEAR(mean[c], 0.0f, 1e-3f);
  // running_mean moved from 0 toward the batch mean (momentum 0.5).
  const Tensor batch_mean = ColumnMean(x);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(bn.running_mean()[c], 0.5f * batch_mean[c], 1e-3f);
  }
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  Rng rng(6);
  nn::BatchNorm1d bn(2);
  bn.SetTraining(true);
  // Several training passes to move the running stats.
  for (int i = 0; i < 20; ++i) {
    bn.Forward(ag::Variable::Constant(
        Tensor::RandNormal(Shape::Matrix(64, 2), rng, 4.0f, 2.0f)));
  }
  bn.SetTraining(false);
  // A single eval-mode row must not be normalized by its own statistics
  // (which would be degenerate); it uses the running ones.
  Tensor x(Shape::Matrix(1, 2), {4.0f, 4.0f});
  ag::Variable y = bn.Forward(ag::Variable::Constant(x));
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(y.value()[c], 0.0f, 0.5f);  // approx standardized toward 0
  }
}

TEST(BatchNormTest, EvalIsDeterministicAcrossBatchComposition) {
  Rng rng(7);
  nn::BatchNorm1d bn(3);
  bn.SetTraining(true);
  bn.Forward(ag::Variable::Constant(
      Tensor::RandNormal(Shape::Matrix(32, 3), rng)));
  bn.SetTraining(false);
  Tensor a = Tensor::RandNormal(Shape::Matrix(4, 3), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(4, 3), rng);
  // Row 0 of `a` embeds identically whether batched with `a` or alone.
  Tensor full = bn.Forward(ag::Variable::Constant(a)).value();
  Tensor solo =
      bn.Forward(ag::Variable::Constant(SliceRows(a, 0, 1))).value();
  EXPECT_TRUE(AllClose(SliceRows(full, 0, 1), solo));
  (void)b;
}

TEST(BatchNormTest, FrozenStatsNormalizeWithRunningStatistics) {
  Rng rng(20);
  nn::BatchNorm1d bn(2);
  bn.SetTraining(true);
  // Move the running stats with some training batches.
  for (int i = 0; i < 10; ++i) {
    bn.Forward(ag::Variable::Constant(
        Tensor::RandNormal(Shape::Matrix(64, 2), rng, 3.0f, 1.0f)));
  }
  const Tensor mean_before = bn.running_mean();

  bn.SetNormalizationFrozen(true);
  EXPECT_TRUE(bn.frozen_stats());
  // A wildly off-distribution batch in TRAINING mode: with frozen stats
  // the output must use the running statistics (not the batch's own) and
  // the running statistics must not move.
  Tensor shifted = Tensor::RandNormal(Shape::Matrix(32, 2), rng, 50.0f, 1.0f);
  ag::Variable out = bn.Forward(ag::Variable::Constant(shifted));
  EXPECT_TRUE(AllClose(bn.running_mean(), mean_before, 0.0f, 0.0f));
  // Output is far from zero-mean because the batch is far from the
  // running mean.
  EXPECT_GT(Mean(out.value()), 10.0f);

  bn.SetNormalizationFrozen(false);
  bn.Forward(ag::Variable::Constant(shifted));
  EXPECT_FALSE(AllClose(bn.running_mean(), mean_before, 0.0f, 0.0f));
}

TEST(BatchNormTest, FrozenStatsStillTrainGammaBeta) {
  Rng rng(21);
  nn::BatchNorm1d bn(2);
  bn.SetTraining(true);
  bn.SetNormalizationFrozen(true);
  ag::Variable x = ag::Variable::Constant(
      Tensor::RandNormal(Shape::Matrix(16, 2), rng));
  ag::Sum(ag::Square(bn.Forward(x))).Backward();
  auto params = bn.Parameters();
  EXPECT_GT(params[0].grad().numel(), 0);  // gamma still learns
  EXPECT_GT(params[1].grad().numel(), 0);  // beta still learns
}

TEST(SequentialTest, ChainsChildrenAndAggregatesState) {
  Rng rng(8);
  nn::Sequential seq;
  seq.Emplace<nn::Linear>(4, 6, rng);
  seq.Emplace<nn::BatchNorm1d>(6);
  seq.Emplace<nn::ReLU>();
  seq.Emplace<nn::Linear>(6, 2, rng);
  EXPECT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq.Parameters().size(), 2u + 2u + 0u + 2u);
  // Linear(2) + BN(gamma,beta,run_mean,run_var) + Linear(2).
  EXPECT_EQ(seq.StateTensors().size(), 2u + 4u + 2u);

  ag::Variable y = seq.Forward(
      ag::Variable::Constant(Tensor::RandNormal(Shape::Matrix(9, 4), rng)));
  EXPECT_EQ(y.value().rows(), 9);
  EXPECT_EQ(y.value().cols(), 2);
}

TEST(SequentialTest, SetTrainingPropagates) {
  Rng rng(9);
  nn::Sequential seq;
  auto* bn = seq.Emplace<nn::BatchNorm1d>(3);
  seq.SetTraining(false);
  EXPECT_FALSE(bn->training());
  seq.SetTraining(true);
  EXPECT_TRUE(bn->training());
}

TEST(BackboneTest, PaperConfigDimensions) {
  Rng rng(10);
  nn::BackboneConfig config = nn::BackboneConfig::Paper();
  EXPECT_EQ(config.input_dim, 80);
  EXPECT_EQ(config.embedding_dim, 128);
  nn::MlpBackbone model(config, rng);
  ag::Variable y = model.Forward(
      ag::Variable::Constant(Tensor::RandNormal(Shape::Matrix(2, 80), rng)));
  EXPECT_EQ(y.value().cols(), 128);
  // [80->1024->512->128->64->128] weights + biases, BN gamma/beta on the
  // four hidden layers.
  const int64_t expected =
      (80 * 1024 + 1024) + (1024 * 512 + 512) + (512 * 128 + 128) +
      (128 * 64 + 64) + (64 * 128 + 128) +
      2 * (1024 + 512 + 128 + 64);
  EXPECT_EQ(model.NumParameters(), expected);
}

TEST(BackboneTest, CloneReproducesOutputs) {
  Rng rng(11);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  // Shift the running stats off their init values.
  model.SetTraining(true);
  model.Forward(
      ag::Variable::Constant(Tensor::RandNormal(Shape::Matrix(32, 80), rng)));
  model.SetTraining(false);

  auto clone = model.Clone();
  Tensor x = Tensor::RandNormal(Shape::Matrix(5, 80), rng);
  Tensor a = model.Forward(ag::Variable::Constant(x)).value();
  Tensor b = clone->Forward(ag::Variable::Constant(x)).value();
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

TEST(BackboneTest, CloneIsIndependentOfOriginal) {
  Rng rng(12);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  auto clone = model.Clone();
  // Mutate the original's first parameter; clone must not follow.
  model.MutableStateTensors()[0]->Fill(0.0f);
  bool clone_nonzero = false;
  const Tensor* clone_w = clone->StateTensors()[0];
  for (int64_t i = 0; i < clone_w->numel(); ++i) {
    if ((*clone_w)[i] != 0.0f) clone_nonzero = true;
  }
  EXPECT_TRUE(clone_nonzero);
}

TEST(ModuleTest, CopyStateFromRejectsMismatchedStructure) {
  Rng rng(13);
  nn::Linear a(4, 2, rng);
  nn::Linear b(4, 3, rng);
  EXPECT_DEATH(a.CopyStateFrom(b), "shape mismatch");
}

TEST(ModuleTest, SetRequiresGradFreezesParameters) {
  Rng rng(14);
  nn::Linear layer(3, 2, rng);
  layer.SetRequiresGrad(false);
  ag::Variable x =
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(2, 3), rng));
  ag::Variable loss = ag::Sum(ag::Square(layer.Forward(x)));
  loss.Backward();
  EXPECT_EQ(layer.weight().grad().numel(), 0);
  EXPECT_GT(x.grad().numel(), 0);
  layer.SetRequiresGrad(true);
  EXPECT_TRUE(layer.weight().requires_grad());
}

TEST(BackboneTest, NoBatchNormVariant) {
  Rng rng(15);
  nn::BackboneConfig config = nn::BackboneConfig::Small();
  config.use_batchnorm = false;
  nn::MlpBackbone model(config, rng);
  // Only Linear weights/biases in the state.
  EXPECT_EQ(model.StateTensors().size(),
            2 * (config.hidden_dims.size() + 1));
}

}  // namespace
}  // namespace pilote
